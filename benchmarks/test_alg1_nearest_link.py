"""Algorithm 1 micro-benchmark and optimality-gap ablation.

The paper notes the nearest link objective resembles the Kuhn–Munkres
assignment problem and adopts a greedy O(MN²) approximation.  This bench
measures the greedy solver's throughput at the paper-relevant shape
(M security patches × N wild patches) and its optimality gap against the
exact Hungarian solution.
"""

import numpy as np
import pytest

from repro.core import exact_assignment, nearest_link_search
from repro.features import weighted_distance_matrix


@pytest.fixture(scope="module")
def distance_matrix(bench_world):
    """A real distance matrix: NVD seed vs a wild pool."""
    seed = bench_world.nvd_seed_shas
    pool = bench_world.wild_pool(min(1500, bench_world.scale.set23_size))
    sec = bench_world.cache.matrix(seed)
    wild = bench_world.cache.matrix(pool)
    return weighted_distance_matrix(sec, wild)


def test_alg1_greedy_throughput(benchmark, distance_matrix):
    result = benchmark(nearest_link_search, distance_matrix)
    m, n = distance_matrix.shape
    print(f"\nAlgorithm 1 on a {m}x{n} matrix: total distance {result.total_distance:.2f}")
    assert len(set(result.links.tolist())) == m


def test_alg1_optimality_gap(benchmark, distance_matrix):
    """Greedy vs exact assignment on the same matrix (ablation)."""

    def both():
        greedy = nearest_link_search(distance_matrix)
        exact = exact_assignment(distance_matrix)
        return greedy, exact

    greedy, exact = benchmark.pedantic(both, rounds=1, iterations=1, warmup_rounds=0)
    gap = (greedy.total_distance - exact.total_distance) / max(exact.total_distance, 1e-12)
    print(
        f"\ngreedy={greedy.total_distance:.3f} exact={exact.total_distance:.3f} "
        f"gap={gap:.1%}"
    )
    assert greedy.total_distance >= exact.total_distance - 1e-9
    # The greedy approximation stays close to optimal on real feature data.
    assert gap < 0.25


def test_distance_matrix_construction(benchmark, bench_world):
    """Weighted distance matrix build cost (the O(M·N·d) step)."""
    seed = bench_world.nvd_seed_shas
    pool = bench_world.wild_pool(800)
    sec = bench_world.cache.matrix(seed)
    wild = bench_world.cache.matrix(pool)
    d = benchmark(weighted_distance_matrix, sec, wild)
    assert d.shape == (len(seed), len(pool))
