"""Sharded world build vs the serial path: parity + wall-clock speedup.

World construction is the fixed cost in front of every experiment; the
sharded builder (`build_world(config, workers=N)`) fans per-repository
history generation out to a process pool and merges deterministically, so
it must be a *pure* optimization: identical `World.digest()`, identical
label order, identical merged obs counters.  This bench builds the SMALL
world both ways, asserts bit-identity, and records the measured speedup in
``BENCH_world_build.json`` for CI to archive.

The speedup assertion needs real cores: on a single-CPU runner the pool
can only time-slice, so the >= 1.8x bar is enforced only when the process
has >= 2 CPUs available (parity is asserted unconditionally).
"""

from __future__ import annotations

import json
import os
import time

from conftest import print_table

from repro.analysis.experiments import MEDIUM, SMALL, TINY
from repro.corpus.world import build_world
from repro.obs import ObsRegistry

_SCALES = {"tiny": TINY, "small": SMALL, "medium": MEDIUM}

BUILD_WORKERS = 4
SPEEDUP_BAR = 1.8


def test_sharded_build_parity_and_speedup(benchmark):
    scale = _SCALES[os.environ.get("REPRO_BENCH_SCALE", "small").lower()]
    cpus = len(os.sched_getaffinity(0))

    serial_obs = ObsRegistry()
    start = time.perf_counter()
    serial_world = build_world(scale.world_config(), workers=1, obs=serial_obs)
    serial_s = time.perf_counter() - start

    sharded_obs = ObsRegistry()
    start = time.perf_counter()
    sharded_world = build_world(scale.world_config(), workers=BUILD_WORKERS, obs=sharded_obs)
    sharded_s = time.perf_counter() - start

    speedup = serial_s / sharded_s
    stats = sharded_world.build_stats
    body = "\n".join(
        [
            f"scale:                   {scale.name} ({scale.n_commits} commits, {scale.n_repos} repos)",
            f"build workers:           {BUILD_WORKERS} ({cpus} CPUs available)",
            f"serial build:            {serial_s:8.1f} s",
            f"sharded build:           {sharded_s:8.1f} s",
            f"speedup:                 {speedup:8.2f}x",
            f"world digest:            {sharded_world.digest()}",
            f"commits:                 {stats['produced']} produced / {stats['attempted']} attempted",
            "",
            sharded_obs.report(),
        ]
    )
    print_table("Sharded world build vs serial construction", body)

    # Sharding must be a pure optimization: same world, same accounting.
    assert sharded_world.digest() == serial_world.digest()
    assert list(sharded_world.labels) == list(serial_world.labels)
    assert sharded_world.build_stats == serial_world.build_stats
    assert sharded_obs.counters == serial_obs.counters
    assert sharded_obs.calls("world.shard") == serial_obs.calls("world.shard")

    payload = {
        "bench": "world_build",
        "scale": scale.name,
        "n_commits": scale.n_commits,
        "n_repos": scale.n_repos,
        "build_workers": BUILD_WORKERS,
        "cpus_available": cpus,
        "serial_s": round(serial_s, 3),
        "sharded_s": round(sharded_s, 3),
        "speedup": round(speedup, 3),
        "world_digest": sharded_world.digest(),
        "digest_identical": sharded_world.digest() == serial_world.digest(),
        "counters_identical": sharded_obs.counters == serial_obs.counters,
        "commits_attempted": stats["attempted"],
        "commits_produced": stats["produced"],
        "commits_skipped": stats["skipped_no_c_paths"] + stats["skipped_exhausted"],
        "counters": sharded_obs.counters,
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_world_build.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # Acceptance: >= 1.8x at SMALL with 4 workers — on hardware that can
    # actually run the shards concurrently.
    if cpus >= 2:
        assert speedup >= SPEEDUP_BAR, (
            f"sharded build only {speedup:.2f}x faster "
            f"(serial {serial_s:.1f} s vs sharded {sharded_s:.1f} s on {cpus} CPUs)"
        )

    # Record the sharded build in the benchmark table.
    benchmark.pedantic(
        lambda: build_world(scale.world_config(), workers=BUILD_WORKERS),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
