"""Table II — wild-based dataset construction in five augmentation rounds.

Paper (scaled 100K/200K/200K pools, 4076-patch seed):

    Set I   round 1: candidates 4076, verified  895, ratio 22%
    Set I   round 2: candidates 4971, verified 1235, ratio 25%
    Set I   round 3: candidates 6206, verified  993, ratio 16%
    Set II  round 4: candidates 7199, verified 2088, ratio 29%
    Set III round 5: candidates 9287, verified 2786, ratio 30%

Reproduction target: five rounds whose yields sit far above the 6-10% wild
base rate, with the larger Sets II/III sustaining or raising the ratio.
"""

from conftest import print_table

from repro.analysis import run_table2


def test_table2_augmentation_rounds(benchmark, bench_world):
    outcome = benchmark.pedantic(
        lambda: run_table2(bench_world), rounds=1, iterations=1, warmup_rounds=0
    )

    print_table("Table II — security patches identified in five rounds", outcome.table())

    assert len(outcome.rounds) == 5
    candidates = sum(r.candidates for r in outcome.rounds)
    verified = sum(r.verified_security for r in outcome.rounds)
    aggregate = verified / candidates
    base_rate = 0.09  # the world's configured security fraction
    print(
        f"aggregate yield = {aggregate:.0%} vs wild base rate ~{base_rate:.0%} "
        f"({aggregate / base_rate:.1f}x)"
    )
    # The paper's headline: ~3x the brute-force base rate.
    assert aggregate > 1.5 * base_rate
    # Larger search ranges (Sets II/III) must not collapse the yield.
    late = [r.ratio for r in outcome.rounds[3:]]
    assert max(late) > 0.5 * outcome.rounds[0].ratio
