"""Parallel training engine vs the legacy serial evaluation path.

Tables IV and VI re-fit the same classifier families over overlapping
splits of the same commits.  The engine (``ml_workers=N``) routes those
independent fits through :func:`repro.ml.fit_many`, serves token sequences
from the shared :class:`~repro.core.cache.TokenSequenceCache`, and memoizes
patch synthesis per origin sha — all exact optimizations, so the rows must
match the serial path byte for byte.  This bench runs Table IV (and Table
VI for parity) both ways on one SMALL world and asserts:

* identical result rows in both modes (bit-identity, not approximation), and
* the engine completes Table IV at least 2x faster.

The engine run starts from a cold token cache so the speedup measures one
self-contained ``repro evaluate`` invocation, not cross-run cache reuse.
Results land in ``BENCH_ml_parallel.json`` next to this file for CI to
archive.
"""

from __future__ import annotations

import json
import os
import time

from conftest import print_table

from repro.core.cache import TokenSequenceCache

from repro.analysis.experiments import run_table4, run_table6

ML_WORKERS = 4
N_SEEDS = 4


def test_engine_2x_faster_than_serial_table4(benchmark, bench_world):
    ew = bench_world

    start = time.perf_counter()
    serial4 = run_table4(ew, n_seeds=N_SEEDS)
    serial_s = time.perf_counter() - start
    serial6 = run_table6(ew)

    # Cold token cache: the engine may not inherit sequences tokenized by
    # earlier benches or the serial run above.
    ew.tokens = TokenSequenceCache(ew.world, obs=ew.obs)
    ew.obs.reset()

    start = time.perf_counter()
    engine4 = run_table4(ew, n_seeds=N_SEEDS, ml_workers=ML_WORKERS)
    engine_s = time.perf_counter() - start
    engine6 = run_table6(ew, ml_workers=ML_WORKERS)

    speedup = serial_s / engine_s
    body = "\n".join(
        [
            f"scale:                   {ew.scale.name} ({ew.scale.n_commits} commits)",
            f"ml workers:              {ML_WORKERS}",
            f"table IV serial:         {serial_s:8.1f} s",
            f"table IV engine:         {engine_s:8.1f} s",
            f"speedup:                 {speedup:8.2f}x",
            "",
            engine4.table(),
            "",
            engine6.table(),
            "",
            ew.obs.report(),
        ]
    )
    print_table("Parallel training engine vs serial evaluation", body)

    # The engine must be a pure optimization: byte-for-byte the same rows.
    assert engine4.rows == serial4.rows
    assert engine6.rows == serial6.rows

    payload = {
        "bench": "ml_parallel",
        "scale": ew.scale.name,
        "n_commits": ew.scale.n_commits,
        "ml_workers": ML_WORKERS,
        "n_seeds": N_SEEDS,
        "table4_serial_s": round(serial_s, 3),
        "table4_engine_s": round(engine_s, 3),
        "speedup": round(speedup, 3),
        "rows_identical": engine4.rows == serial4.rows and engine6.rows == serial6.rows,
        "table4_rows": [list(r) for r in engine4.rows],
        "table6_rows": [list(r) for r in engine6.rows],
        "counters": ew.obs.counters,
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_ml_parallel.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # Acceptance: >= 2x on Table IV at SMALL scale.
    assert speedup >= 2.0, (
        f"engine only {speedup:.2f}x faster "
        f"(serial {serial_s:.1f} s vs engine {engine_s:.1f} s)"
    )

    # Record the engine-mode run in the benchmark table (token cache warm
    # by now; this measures the steady-state engine).
    benchmark.pedantic(
        lambda: run_table4(ew, n_seeds=N_SEEDS, ml_workers=ML_WORKERS),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
