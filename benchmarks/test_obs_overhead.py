"""Instrumentation overhead of the observability layer.

The registry sits on every hot path — per-item timers in the caches, spans
around each augmentation round, counters in the distance engine — so its
cost has to stay negligible or nobody leaves it on.  This bench runs the
same five-round augmentation schedule on a feature-warm cache two ways:
with a live :class:`~repro.obs.ObsRegistry` (spans + timers + histograms)
and with ``ObsRegistry(enabled=False)``, whose primitives are no-ops that
still execute their ``with`` bodies.

Estimator: the median of per-pair runtime ratios over ``REPS``
back-to-back (enabled, disabled) pairs, order alternating.  Shared-runner
wall clock drifts by tens of percent across seconds (CPU frequency,
neighbors), which swamps a min- or median-of-samples comparison — but the
two runs of one pair execute within the same ~100 ms window and see the
same machine state, so their ratio isolates the instrumentation cost.

Acceptance: the enabled registry costs under 3% over the disabled baseline,
and observation never changes results (identical round sequences).
Results land in ``BENCH_obs_overhead.json`` next to this file for CI to
archive.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from conftest import print_table

from repro.core.augmentation import DatasetAugmentation, SearchSet
from repro.core.cache import PatchFeatureCache
from repro.core.oracle import VerificationOracle
from repro.obs import ObsRegistry

ROUNDS = 5
WARMUP = 3
REPS = 15
ORACLE_SEED = 7
MAX_OVERHEAD = 0.03


def _schedule_once(cache, world, seed_shas, search_sets, obs):
    cache.obs = obs
    oracle = VerificationOracle(world, seed=ORACLE_SEED)
    aug = DatasetAugmentation(cache, oracle, obs=obs)
    start = time.perf_counter()
    outcome = aug.run_schedule(list(seed_shas), search_sets)
    return time.perf_counter() - start, outcome


def test_obs_overhead_under_3_percent(benchmark, bench_world):
    world = bench_world.world
    seed_shas = sorted(world.security_shas())[::2]
    pool = bench_world.wild_pool(10**9, exclude=set(seed_shas))
    cache = PatchFeatureCache(world)
    cache.matrix(seed_shas + pool)  # pre-warm: measure the loop, not extraction
    search_sets = [SearchSet("Set I", tuple(pool), rounds=ROUNDS)]

    def sample(enabled):
        obs = ObsRegistry(enabled=enabled)
        elapsed, outcome = _schedule_once(cache, world, seed_shas, search_sets, obs)
        return elapsed, outcome, obs

    for _ in range(WARMUP):
        sample(True)
        sample(False)

    ratios = []
    samples: dict[bool, list[float]] = {True: [], False: []}
    outcomes = {}
    last_enabled = None
    for rep in range(REPS):
        # Alternate which mode runs first so within-pair drift cancels too.
        order = (True, False) if rep % 2 == 0 else (False, True)
        pair = {}
        for enabled in order:
            elapsed, outcome, obs = sample(enabled)
            pair[enabled] = elapsed
            samples[enabled].append(elapsed)
            outcomes[enabled] = outcome
            if enabled:
                last_enabled = obs
        ratios.append(pair[True] / pair[False])

    overhead = statistics.median(ratios) - 1.0
    med = {mode: statistics.median(vals) for mode, vals in samples.items()}
    body = "\n".join(
        [
            f"scale:                 {bench_world.scale.name} ({bench_world.scale.n_commits} commits)",
            f"seed security (M):     {len(seed_shas)}",
            f"wild pool (N):         {len(pool)}",
            f"rounds:                {ROUNDS}",
            f"obs disabled:          {med[False] * 1e3:8.1f} ms (median of {REPS})",
            f"obs enabled:           {med[True] * 1e3:8.1f} ms (median of {REPS})",
            f"overhead:              {overhead:8.2%} (median of {REPS} paired ratios)",
            f"spans recorded:        {len(last_enabled.spans)}",
            "",
            last_enabled.report(),
        ]
    )
    print_table("Observability instrumentation overhead (augmentation loop)", body)

    # Observation must never perturb results.
    assert outcomes[True].rounds == outcomes[False].rounds
    assert outcomes[True].security_shas == outcomes[False].security_shas
    # The disabled baseline really recorded nothing.
    assert ObsRegistry(enabled=False).timers == {}

    payload = {
        "bench": "obs_overhead",
        "scale": bench_world.scale.name,
        "n_commits": bench_world.scale.n_commits,
        "rounds": ROUNDS,
        "reps": REPS,
        "disabled_s": round(med[False], 4),
        "enabled_s": round(med[True], 4),
        "overhead_pct": round(max(overhead, 0.0) * 100, 2),
        "max_overhead_pct": MAX_OVERHEAD * 100,
        "n_spans": len(last_enabled.spans),
        "timer_calls": last_enabled.timer_calls,
        "counters": last_enabled.counters,
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_obs_overhead.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # Acceptance: under 3% over the no-op baseline.
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation costs {overhead:.2%} "
        f"(enabled {med[True] * 1e3:.1f} ms vs disabled {med[False] * 1e3:.1f} ms)"
    )

    benchmark.pedantic(
        lambda: _schedule_once(cache, world, seed_shas, search_sets, ObsRegistry()),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
