#!/usr/bin/env python
"""Serve-layer load benchmark: the CI ``serve-smoke`` entry point.

A thin wrapper over ``python -m repro bench-serve`` with the bench suite's
conventions baked in: the SMALL world loaded from the shared
``benchmarks/.cache`` artifact (built on a cold run), the fitted classify
model persisted next to it, and results written to
``benchmarks/BENCH_serve.json``.  Exits non-zero on any 5xx or transport
error, so CI's zero-5xx assertion is the exit code.

Any extra arguments pass straight through to ``bench-serve``::

    python benchmarks/bench_serve.py --duration 2 --concurrency 4
"""

from __future__ import annotations

import os
import sys

from repro.cli import main

_HERE = os.path.dirname(os.path.abspath(__file__))

DEFAULTS = [
    "bench-serve",
    "--scale",
    os.environ.get("REPRO_BENCH_SCALE", "small"),
    "--workers",
    "4",
    "--world-cache",
    os.path.join(_HERE, ".cache"),
    "--model-cache",
    os.path.join(_HERE, ".cache", "serve-models.pkl"),
    "--output",
    os.path.join(_HERE, "BENCH_serve.json"),
]

if __name__ == "__main__":
    sys.exit(main(DEFAULTS + sys.argv[1:]))
