"""Fig. 6 — NVD-based vs wild-based type distributions.

Paper: the NVD-based dataset follows a long-tail distribution (3 of 12
types cover ~60%, Type 11 is the head); the wild-based dataset found by
nearest link search differs — Type 8 becomes the head class and the tail
ranks shuffle.

Reproduction target: a clearly non-zero total-variation distance between
the two distributions, a concentrated (long-tail) NVD distribution, and
different head classes.
"""

from conftest import print_table

from repro.analysis import rank_types, run_fig6


def test_fig6_source_distributions(benchmark, bench_world):
    result = benchmark.pedantic(
        lambda: run_fig6(bench_world), rounds=1, iterations=1, warmup_rounds=0
    )

    print_table("Fig. 6 — NVD-based vs wild-based distribution", result.table())

    nvd_head = rank_types(result.nvd_distribution)[0]
    wild_head = rank_types(result.wild_distribution)[0]
    gini_nvd, gini_wild = result.gini
    print(
        f"NVD head=type {nvd_head}, wild head=type {wild_head}; "
        f"gini NVD={gini_nvd:.2f} wild={gini_wild:.2f}; "
        f"NVD top-3 share={result.nvd_head_share:.0%}"
    )

    # The two sources must differ distributionally (the paper's point).
    assert result.tv_distance > 0.15
    # The NVD distribution is long-tailed: top-3 classes carry most mass.
    assert result.nvd_head_share > 0.45
