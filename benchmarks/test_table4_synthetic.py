"""Table IV — performance with and without synthetic patches.

Paper (RNN, 80/20 split, synthetic data added to training only):

    NVD       -                          precision 82.1%, recall 84.8%
    NVD       17K Sec + 20K NonSec       precision 86.0% (+3.9), recall 87.2% (+2.4)
    NVD+Wild  -                          precision 92.9%, recall 61.1%
    NVD+Wild  58K Sec + 129K NonSec      precision 93.0% (+0.1), recall 61.2% (+0.1)

Reproduction target: synthetic data helps the small (NVD-only) dataset and
gives little or no improvement on the large (NVD+Wild) dataset.
"""

from conftest import print_table

from repro.analysis import run_table4


def test_table4_synthetic_patches(benchmark, bench_world):
    result = benchmark.pedantic(
        lambda: run_table4(bench_world), rounds=1, iterations=1, warmup_rounds=0
    )

    print_table("Table IV — performance w/o and w/ synthetic patches", result.table())

    (nvd_nat, nvd_syn, big_nat, big_syn) = result.rows
    f1 = lambda p, r: 2 * p * r / (p + r) if p + r else 0.0

    nvd_gain = f1(nvd_syn[2], nvd_syn[3]) - f1(nvd_nat[2], nvd_nat[3])
    big_gain = f1(big_syn[2], big_syn[3]) - f1(big_nat[2], big_nat[3])
    print(f"F1 gain from synthetic data: NVD-only {nvd_gain:+.1%}, NVD+Wild {big_gain:+.1%}")

    # Small dataset: synthetic data must not hurt on average (paper: it
    # helps; at our 25x-reduced scale the per-split variance is large, so
    # run_table4 averages over four splits).
    assert nvd_gain >= -0.05
    # Synthetic sets are several times larger than the natural ones.
    assert "Sec" in nvd_syn[1] and "NonSec" in nvd_syn[1]
    # All rows produced usable classifiers.
    for _, _, p, r in result.rows:
        assert 0.0 <= p <= 1.0 and 0.0 <= r <= 1.0
