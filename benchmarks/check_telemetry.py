#!/usr/bin/env python
"""Telemetry well-formedness gate: the CI ``serve-smoke`` second stage.

Spins the service up in-process over the cached world (same artifact the
load benchmark uses), then asserts the observable telemetry contract:

* every response — success, 4xx, and streams — carries an
  ``X-Repro-Trace-Id`` header, and a caller-provided well-formed id is
  echoed back verbatim (lowercased);
* ``/metrics`` parses under the Prometheus text grammar
  (:func:`repro.serve.parse_exposition`), with monotone cumulative
  buckets and ``+Inf`` == ``_count`` per endpoint, and its counters are
  consistent with a ``/statsz`` read taken afterwards;
* ``/v1/traces`` parses as ``repro-run-manifest-v1``
  (:func:`repro.trace.parse_trace`) and a classify request's sampled
  trace contains the nested pipeline spans down to the batcher's
  ``model.predict``.

Exit code is the gate: non-zero on the first violated check.

::

    python benchmarks/check_telemetry.py            # SMALL world from .cache
    REPRO_BENCH_SCALE=tiny python benchmarks/check_telemetry.py
"""

from __future__ import annotations

import json
import os
import sys
import threading
import urllib.error
import urllib.request

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

from repro.serve import TRACE_HEADER, make_server, parse_exposition  # noqa: E402
from repro.trace import parse_trace  # noqa: E402

_FAILURES: list[str] = []


def check(label: str, ok: bool, detail: str = "") -> None:
    mark = "ok" if ok else "FAIL"
    print(f"  [{mark}] {label}" + (f" — {detail}" if detail and not ok else ""))
    if not ok:
        _FAILURES.append(label)


def _get(base: str, path: str, headers: dict | None = None):
    req = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


def _service():
    from repro.analysis.experiments import MEDIUM, SMALL, TINY, ExperimentWorld, build_patchdb
    from repro.ml.model_cache import FittedModelCache
    from repro.obs import ObsRegistry
    from repro.serve import PatchDBService, ServeTelemetry

    scales = {"tiny": TINY, "small": SMALL, "medium": MEDIUM}
    scale = scales[os.environ.get("REPRO_BENCH_SCALE", "small")]
    obs = ObsRegistry()
    ew = ExperimentWorld.cached(
        scale, cache_dir=os.path.join(_HERE, ".cache"), workers=4, obs=obs
    )
    db = build_patchdb(ew)
    models = FittedModelCache(
        persist_path=os.path.join(_HERE, ".cache", "serve-models.pkl"), obs=obs
    )
    service = PatchDBService(ew, db, model_cache=models, obs=obs, telemetry=ServeTelemetry())
    service.warm()
    return service, db


def main() -> int:
    service, db = _service()
    server = make_server(service, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    sample = db.records()[0]
    patch_text = db.record_mbox(sample)

    try:
        print("trace header round-trips:")
        _, headers, _ = _get(base, "/healthz")
        generated = headers.get(TRACE_HEADER, "")
        check("/healthz carries a generated trace id", len(generated) == 32, generated)
        wanted = "cafebabe-1234-5678-9abc-def012345678"
        _, headers, _ = _get(base, "/healthz", {TRACE_HEADER: wanted.upper()})
        check("well-formed caller id echoed back", headers.get(TRACE_HEADER) == wanted)
        try:
            _get(base, "/v1/definitely-not-a-route")
            check("404 carries a trace id", False, "expected HTTP 404")
        except urllib.error.HTTPError as exc:
            check(
                "404 carries a trace id",
                exc.code == 404 and bool(exc.headers.get(TRACE_HEADER)),
            )

        print("/metrics exposition:")
        _, headers, text = _get(base, "/metrics")
        check(
            "content type is text exposition",
            headers.get("Content-Type", "").startswith("text/plain"),
            headers.get("Content-Type", ""),
        )
        try:
            samples = parse_exposition(text)
            check("exposition parses", True)
        except ValueError as exc:
            samples = {}
            check("exposition parses", False, str(exc))
        if samples:
            counts = {
                l["endpoint"]: v
                for l, v in samples.get("repro_http_request_duration_seconds_count", [])
            }
            series: dict[str, list[float]] = {}
            for labels, value in samples.get(
                "repro_http_request_duration_seconds_bucket", []
            ):
                series.setdefault(labels["endpoint"], []).append(value)
            check("latency histograms present", bool(series))
            monotone = all(vs == sorted(vs) for vs in series.values())
            check("bucket counts monotone", monotone)
            inf_matches = all(vs[-1] == counts.get(ep) for ep, vs in series.items())
            check("+Inf bucket equals _count", inf_matches)
            _, _, stats_body = _get(base, "/statsz")
            stats = json.loads(stats_body)
            by_name = {l["name"]: v for l, v in samples.get("repro_counter_total", [])}
            consistent = all(
                stats["counters"].get(name, 0) >= value
                for name, value in by_name.items()
                if name.startswith("http_")
            )
            check("counters consistent with /statsz", consistent)

        print("/v1/traces export:")
        req = urllib.request.Request(
            f"{base}/v1/classify", data=patch_text.encode("utf-8"), method="POST"
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            classify_trace = resp.headers.get(TRACE_HEADER, "")
        check("classify response carries a trace id", bool(classify_trace))
        _, _, trace_body = _get(base, f"/v1/traces?trace_id={classify_trace}")
        try:
            parsed = parse_trace(trace_body, origin=f"{base}/v1/traces")
            check("trace JSONL parses as repro-run-manifest-v1", True)
        except Exception as exc:  # noqa: BLE001 - the gate reports, not raises
            parsed = None
            check("trace JSONL parses as repro-run-manifest-v1", False, str(exc))
        if parsed is not None:
            check("classify trace sampled", len(parsed.roots) == 1)

            def names(node, acc):
                acc.add(node.name)
                for child in node.children:
                    names(child, acc)
                return acc

            seen = set()
            for root in parsed.roots:
                names(root, seen)
            needed = {
                "http.classify",
                "service.classify",
                "patch.parse",
                "features.extract",
                "model.predict",
            }
            check(
                "nested pipeline spans present",
                needed <= seen,
                f"missing {sorted(needed - seen)}",
            )
    finally:
        server.shutdown()
        server.server_close()
        service.close()

    if _FAILURES:
        print(f"\ntelemetry gate FAILED: {len(_FAILURES)} check(s): {_FAILURES}")
        return 1
    print("\ntelemetry gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
