"""Incremental distance engine vs per-round full recomputation.

The augmentation schedule's cost center is the ``M×N`` weighted distance
matrix (§III-B).  ``DatasetAugmentation(incremental=True)`` maintains it
through a :class:`~repro.features.normalize.DistanceEngine` — weights fitted
once per search set, rows appended for newly verified patches, reviewed
columns masked — instead of rebuilding matrix and weights from scratch every
round.  This bench runs the same five-round schedule both ways on one wild
pool and asserts:

* identical ``RoundResult`` sequences and final sha partitions (the engine
  is an optimization, not an approximation), and
* the incremental schedule completes at least 2x faster.

Timing uses best-of-``REPS`` wall clock per mode on a pre-warmed feature
cache, so the comparison isolates distance/search work rather than feature
extraction or process noise.
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.core.augmentation import DatasetAugmentation, SearchSet
from repro.core.cache import PatchFeatureCache
from repro.core.oracle import VerificationOracle
from repro.obs import ObsRegistry

MIN_POOL = 2_000
ROUNDS = 5
REPS = 5
ORACLE_SEED = 7


def _schedule_once(cache, world, seed_shas, search_sets, incremental, obs=None):
    oracle = VerificationOracle(world, seed=ORACLE_SEED)
    aug = DatasetAugmentation(cache, oracle, incremental=incremental, obs=obs)
    start = time.perf_counter()
    outcome = aug.run_schedule(list(seed_shas), search_sets)
    return time.perf_counter() - start, outcome


def test_incremental_schedule_2x_faster_than_full(benchmark, bench_world):
    world = bench_world.world
    seed_shas = sorted(world.security_shas())[::2]
    pool = bench_world.wild_pool(10**9, exclude=set(seed_shas))
    assert len(pool) >= MIN_POOL, f"bench world too small: {len(pool)} wild patches"

    cache = PatchFeatureCache(world)
    cache.matrix(seed_shas + pool)  # pre-warm: both modes start feature-hot
    search_sets = [SearchSet("Set I", tuple(pool), rounds=ROUNDS)]

    obs = ObsRegistry()
    best = {True: float("inf"), False: float("inf")}
    outcomes = {}
    for _ in range(REPS):
        for incremental in (True, False):
            elapsed, outcome = _schedule_once(
                cache, world, seed_shas, search_sets, incremental,
                obs=obs if incremental else None,
            )
            best[incremental] = min(best[incremental], elapsed)
            outcomes[incremental] = outcome

    inc, full = outcomes[True], outcomes[False]
    speedup = best[False] / best[True]

    body = "\n".join(
        [
            f"seed security patches (M): {len(seed_shas)}",
            f"wild pool (N):             {len(pool)}",
            f"rounds:                    {ROUNDS}",
            f"full rebuild per round:    {best[False] * 1e3:8.1f} ms (best of {REPS})",
            f"incremental engine:        {best[True] * 1e3:8.1f} ms (best of {REPS})",
            f"speedup:                   {speedup:8.2f}x",
            "",
            inc.table(),
            "",
            obs.report(),
        ]
    )
    print_table("Incremental distance engine vs full per-round recompute", body)

    # The engine must be a pure optimization: byte-for-byte the same rounds.
    assert inc.rounds == full.rounds
    assert inc.security_shas == full.security_shas
    assert inc.non_security_shas == full.non_security_shas
    assert len(inc.rounds) == ROUNDS

    # Acceptance: >= 2x on a pool of >= 2,000 wild patches.
    assert speedup >= 2.0, (
        f"incremental engine only {speedup:.2f}x faster "
        f"(full {best[False] * 1e3:.1f} ms vs incremental {best[True] * 1e3:.1f} ms)"
    )

    # Record the incremental schedule in the benchmark table.
    benchmark.pedantic(
        lambda: _schedule_once(cache, world, seed_shas, search_sets, True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
