"""Posting-list query planner vs the full-scan path on the serve hot shape.

Every ``/v1/patches`` request costs one match count plus one page.  The
scan path walks all N records through ``PatchQuery.matches`` for the count
and again (up to the limit) for the page; the indexed path intersects
per-field posting lists and slices.  This bench builds the SMALL-world
PatchDB, issues the selective-filter mix the ``bench-serve --mix
selective`` load generator uses — a ``repo`` slug query, a ``sha`` point
lookup, and a ``pattern_type`` filter — both ways, and asserts:

* bit-identical results (elements and order) between scan and index, and
* >= 10x more requests/s from the index on every selective query.

Results land in ``BENCH_query_index.json`` next to this file for CI.
"""

from __future__ import annotations

import json
import os
import time

from conftest import print_table

from repro.analysis.experiments import build_patchdb
from repro.core import PatchDB, PatchQuery

MIN_SPEEDUP = 10.0
SCAN_ITERS = 30
INDEX_ITERS = 3000


def _scan_request(records: list, query: PatchQuery) -> tuple[int, list]:
    """One request served the pre-index way: count scan + page scan."""
    total = sum(1 for r in records if query.matches(r))
    return total, list(query.apply(records))


def _indexed_request(db: PatchDB, query: PatchQuery) -> tuple[int, list]:
    """One request served through the posting-list planner."""
    return db.count(query), db.records(query)


def _time(fn, iters: int) -> float:
    start = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - start) / iters


def test_index_10x_faster_than_scan_on_selective_filters(benchmark, bench_world):
    ew = bench_world
    db = build_patchdb(ew)
    records = list(db)

    # Selective targets drawn from the dataset itself, the same way the
    # selective bench mix samples a live server.
    probe = records[len(records) // 2]
    sec = next(r for r in records if r.is_security and r.pattern_type is not None)
    queries = {
        "repo": PatchQuery(repo=probe.patch.repo, limit=20),
        "sha": PatchQuery(sha=records[-1].patch.sha),
        "pattern_type": PatchQuery(is_security=True, pattern_type=sec.pattern_type, limit=20),
    }

    rows = []
    lines = [f"scale: {ew.scale.name} ({len(records)} records)", ""]
    lines.append(f"{'query':<14s} {'scan req/s':>12s} {'index req/s':>12s} {'speedup':>9s}")
    for name, query in queries.items():
        scan_total, scan_page = _scan_request(records, query)
        idx_total, idx_page = _indexed_request(db, query)
        # The index must be a pure optimization: same count, same records,
        # same order.
        assert idx_total == scan_total
        assert idx_page == scan_page
        assert scan_total > 0, f"{name} query matched nothing; bad probe"

        scan_s = _time(lambda q=query: _scan_request(records, q), SCAN_ITERS)
        index_s = _time(lambda q=query: _indexed_request(db, q), INDEX_ITERS)
        speedup = scan_s / index_s
        rows.append(
            {
                "query": name,
                "params": query.to_dict(),
                "matching": scan_total,
                "scan_req_per_s": round(1.0 / scan_s, 1),
                "index_req_per_s": round(1.0 / index_s, 1),
                "speedup": round(speedup, 1),
            }
        )
        lines.append(
            f"{name:<14s} {1.0 / scan_s:>12.1f} {1.0 / index_s:>12.1f} {speedup:>8.1f}x"
        )

    print_table("Posting-list planner vs full scan (count + page per request)", "\n".join(lines))

    payload = {
        "bench": "query_index",
        "scale": ew.scale.name,
        "n_records": len(records),
        "min_speedup_required": MIN_SPEEDUP,
        "queries": rows,
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_query_index.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    for row in rows:
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['query']} query only {row['speedup']}x faster through the index "
            f"({row['scan_req_per_s']} vs {row['index_req_per_s']} req/s)"
        )

    # Steady-state indexed request for the benchmark table.
    query = queries["repo"]
    benchmark.pedantic(
        lambda: _indexed_request(db, query),
        rounds=5,
        iterations=200,
        warmup_rounds=1,
    )
