"""Table III — comparison with other augmentation methods.

Paper (200K unlabeled pool, 1K verification samples, 95% CI):

    Brute Force Search            8 (±1.7)%
    Pseudo Labeling              13 (±1.8)%
    Uncertainty-based Labeling   12%
    Nearest Link Search (ours)   29 (±2.4)%

Reproduction target: nearest link strictly out-yields pseudo labeling and
brute force; brute force sits at the wild base rate.
"""

from conftest import print_table

from repro.analysis import run_table3


def test_table3_method_comparison(benchmark, bench_world):
    results = benchmark.pedantic(
        lambda: run_table3(bench_world), rounds=1, iterations=1, warmup_rounds=0
    )

    body = "\n".join(r.row() for r in results)
    print_table("Table III — comparison with other augmentation methods", body)

    by_method = {r.method: r for r in results}
    brute = by_method["Brute Force Search"]
    pseudo = by_method["Pseudo Labeling"]
    ours = by_method["Nearest Link Search (ours)"]

    # Brute force ~ the 6-10% base rate the paper observes.
    assert 0.03 <= brute.proportion <= 0.15
    # Our method beats both baselines (the paper's core claim).
    assert ours.proportion > pseudo.proportion
    assert ours.proportion > 2.0 * brute.proportion
    # Candidate budgets match the protocol.
    assert ours.n_candidates == len(bench_world.nvd_seed_shas)
    assert brute.n_candidates == brute.pool_size
