"""Table VI — impact of the datasets on learning-based models.

Paper:

    Train      Algo   Test   Precision  Recall
    NVD        RF     NVD       58.4%    21.7%
    NVD        RF     Wild      58.0%    19.5%
    NVD        RNN    NVD       82.8%    83.2%
    NVD        RNN    Wild      88.3%    24.2%   <- generalization collapse
    NVD+Wild   RF     NVD       90.1%    22.5%
    NVD+Wild   RF     Wild      91.8%    44.6%
    NVD+Wild   RNN    NVD       92.8%    60.2%
    NVD+Wild   RNN    Wild      92.3%    63.2%   <- stable across test sets

Reproduction target: models trained on NVD alone lose recall on the wild
test set; adding the wild-based dataset restores cross-source stability.
"""

from conftest import print_table

from repro.analysis import run_table6


def _f1(p, r):
    return 2 * p * r / (p + r) if p + r else 0.0


def test_table6_dataset_quality(benchmark, bench_world):
    result = benchmark.pedantic(
        lambda: run_table6(bench_world), rounds=1, iterations=1, warmup_rounds=0
    )

    print_table("Table VI — impact of datasets over learning-based models", result.table())

    rows = {(r[0], r[1], r[2]): (r[3], r[4]) for r in result.rows}

    # NVD-only training generalizes worse to the wild than to NVD itself
    # (compare F1 across test sets for at least one of the two models).
    collapse = []
    for algo in ("Random Forest", "RNN"):
        f1_nvd = _f1(*rows[("NVD", algo, "NVD")])
        f1_wild = _f1(*rows[("NVD", algo, "Wild")])
        collapse.append(f1_nvd - f1_wild)
        print(f"NVD-trained {algo}: F1 on NVD={f1_nvd:.1%}, F1 on wild={f1_wild:.1%}")
    assert max(collapse) > 0.10, "expected a cross-source generalization gap"

    # Training on NVD+Wild closes (most of) the gap.
    for algo in ("Random Forest", "RNN"):
        f1_wild_aug = _f1(*rows[("NVD+Wild", algo, "Wild")])
        f1_wild_nvd_only = _f1(*rows[("NVD", algo, "Wild")])
        print(f"{algo} wild-test F1: NVD-only={f1_wild_nvd_only:.1%} NVD+Wild={f1_wild_aug:.1%}")
        assert f1_wild_aug >= f1_wild_nvd_only - 0.02
