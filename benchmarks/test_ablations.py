"""Design-choice ablations.

Two studies the paper motivates but does not tabulate:

1. **Feature-group ablation** — Table I has three feature groups (basic
   text-level 1-10, language-level 11-56, affected-range 57-60).  How much
   of the nearest link search yield does each group carry?

2. **SMOTE vs source-level oversampling** — §IV-C: "We also try some
   traditional oversampling techniques like SMOTE and do not observe
   obvious performance increase."  We compare a Random Forest trained with
   SMOTE-augmented features against one trained with features of the
   source-level synthetic patches.
"""

import numpy as np
from conftest import print_table

from repro.core import VerificationOracle, nearest_link_search
from repro.features import FEATURE_NAMES, extract_features, weighted_distance_matrix
from repro.ml import RandomForestClassifier, classification_report, smote_oversample, train_test_split
from repro.synthesis import PatchSynthesizer

GROUPS = {
    "basic (1-10)": slice(0, 10),
    "language (11-56)": slice(10, 56),
    "range (57-60)": slice(56, 60),
    "all (1-60)": slice(0, 60),
}


def test_feature_group_ablation(benchmark, bench_world):
    seed = bench_world.nvd_seed_shas
    pool = bench_world.wild_pool(1200, seed=77)
    sec = bench_world.cache.matrix(seed)
    wild = bench_world.cache.matrix(pool)
    truth = np.array([bench_world.world.label(s).is_security for s in pool])

    def ablate():
        rows = []
        for name, cols in GROUPS.items():
            distance = weighted_distance_matrix(sec[:, cols], wild[:, cols])
            result = nearest_link_search(distance)
            hits = truth[result.candidate_set].mean()
            rows.append((name, float(hits)))
        return rows

    rows = benchmark.pedantic(ablate, rounds=1, iterations=1, warmup_rounds=0)
    body = "\n".join(f"{name:<18s} nearest-link yield = {hits:.0%}" for name, hits in rows)
    print_table("Ablation — Table I feature groups in nearest link search", body)

    yields = dict(rows)
    base_rate = truth.mean()
    # The full space must beat the wild base rate.
    assert yields["all (1-60)"] > base_rate
    # The language-level group is the largest and should carry real signal.
    assert yields["language (11-56)"] > base_rate


def test_smote_vs_source_level(benchmark, bench_world):
    ew = bench_world
    sec = ew.nvd_seed_shas
    non = ew.ground_truth_nonsec(2 * len(sec), seed=5)
    labeled = [(s, 1) for s in sec] + [(s, 0) for s in non]
    y = np.array([lab for _, lab in labeled])
    X = ew.cache.matrix([s for s, _ in labeled])
    tr, te = train_test_split(len(labeled), 0.2, y=y, stratify=True, seed=3)

    synthesizer = PatchSynthesizer(ew.world, max_per_patch=3, seed=0)

    def compare():
        rows = []
        # Natural features only.
        rf = RandomForestClassifier(n_estimators=40, max_depth=14, seed=0).fit(X[tr], y[tr])
        rep = classification_report(y[te], rf.predict(X[te]))
        rows.append(("natural only", rep.precision, rep.recall, rep.f1))
        # SMOTE in feature space.
        Xs, ys = smote_oversample(X[tr], y[tr], n_new=len(tr), seed=1)
        rf2 = RandomForestClassifier(n_estimators=40, max_depth=14, seed=0).fit(Xs, ys)
        rep2 = classification_report(y[te], rf2.predict(X[te]))
        rows.append(("SMOTE (feature space)", rep2.precision, rep2.recall, rep2.f1))
        # Source-level synthetic patches, featurized.
        extra_vecs, extra_y = [], []
        for i in tr:
            sha, lab = labeled[i]
            for sp in synthesizer.synthesize(sha):
                extra_vecs.append(extract_features(sp.patch))
                extra_y.append(lab)
        X3 = np.vstack([X[tr]] + [np.asarray(extra_vecs)]) if extra_vecs else X[tr]
        y3 = np.concatenate([y[tr], np.asarray(extra_y, dtype=np.int64)])
        rf3 = RandomForestClassifier(n_estimators=40, max_depth=14, seed=0).fit(X3, y3)
        rep3 = classification_report(y[te], rf3.predict(X[te]))
        rows.append((f"source-level (+{len(extra_vecs)})", rep3.precision, rep3.recall, rep3.f1))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1, warmup_rounds=0)
    body = "\n".join(
        f"{name:<24s} precision={p:.1%} recall={r:.1%} f1={f:.1%}" for name, p, r, f in rows
    )
    print_table("Ablation — SMOTE vs source-level oversampling (RF)", body)

    # Source-level synthesis is interpretable (it exists as patches); the
    # paper's claim is only that SMOTE brings no *obvious* gain.
    natural_f1 = rows[0][3]
    smote_f1 = rows[1][3]
    assert smote_f1 <= natural_f1 + 0.15
