"""Table V — security patch distribution in PatchDB.

Paper (sampled 1K patches):

    1  add or change bound checks            10.8%
    2  add or change null checks              9.1%
    3  add or change other sanity checks     18.0%
    8  add or change function calls          24.4%   <- head class
    11 add or change functions (redesign)    12.0%
    ... (types 1, 3, 8 together exceed 50%)

Reproduction target: type 8 is the head class and checks + call changes
(types 1, 3, 8) compose more than half of the dataset.
"""

from conftest import print_table

from repro.analysis import rank_types, run_table5


def test_table5_patch_distribution(benchmark, bench_world):
    result = benchmark.pedantic(
        lambda: run_table5(bench_world, sample_size=1000),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    print_table("Table V — security patch distribution in PatchDB", result.table())

    dist = result.distribution
    head = rank_types(dist)[:3]
    print(f"head classes: {head}; types 1+3+8 share = {dist[1] + dist[3] + dist[8]:.0%}")

    # Sanity checks + call changes dominate, as in the paper.
    assert dist[1] + dist[3] + dist[8] > 0.40
    # The common check/call types each clearly outweigh the rare types.
    assert min(dist[3], dist[8]) > max(dist[6], dist[9], dist[12])
    # Every type observed at least structurally (distribution covers 1..12).
    assert sorted(dist) == list(range(1, 13))
