"""Shared benchmark fixtures.

All table/figure benchmarks run against one disk-cached
:class:`ExperimentWorld` so the (expensive) world construction happens once
per machine, not once per bench.  Scale defaults to SMALL; set
``REPRO_BENCH_SCALE=medium`` (or ``tiny``) to change it.

Each bench prints the regenerated table so ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's evaluation artifacts verbatim.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import MEDIUM, SMALL, TINY, ExperimentWorld

_SCALES = {"tiny": TINY, "small": SMALL, "medium": MEDIUM}


@pytest.fixture(scope="session")
def bench_world() -> ExperimentWorld:
    """The shared experiment world for all benches.

    Cold builds use the sharded world builder (bit-identical to serial);
    CI seeds the cache directory from the shared ``expworld-small``
    artifact so bench jobs skip construction entirely.
    """
    scale = _SCALES[os.environ.get("REPRO_BENCH_SCALE", "small").lower()]
    return ExperimentWorld.cached(
        scale,
        cache_dir=os.path.join(os.path.dirname(__file__), ".cache"),
        workers=4,
    )


def print_table(title: str, body: str) -> None:
    """Emit a labeled table to the bench output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
