"""The closed-loop autofix benchmark: find/repair rates at bench scale.

Runs the find→patch→verify pipeline over the shared bench world and writes
``BENCH_autofix.json`` for CI to archive.  Asserts the acceptance floor of
the CI gate (repair rate, zero verifier crashes) plus serial/parallel
manifest parity, and reports per-checker finder precision/recall against
the planted ground truth.
"""

import json
import os
import time

from conftest import print_table

from repro.autofix import AutofixConfig, autofix_world
from repro.obs import ObsRegistry

#: The same floor the CI job enforces via ``--fail-under``.
REPAIR_RATE_BAR = 0.9
#: Files drawn from the bench world (sorted-path prefix, deterministic).
MAX_FILES = 120
LOOP_WORKERS = 4


def test_closed_loop_repair_rate(benchmark, bench_world):
    config = AutofixConfig()

    serial_obs = ObsRegistry()
    start = time.perf_counter()
    serial = autofix_world(
        bench_world.world, config, workers=1, obs=serial_obs, max_files=MAX_FILES
    )
    serial_s = time.perf_counter() - start

    pool_obs = ObsRegistry()
    start = time.perf_counter()
    pooled = autofix_world(
        bench_world.world, config, workers=LOOP_WORKERS, obs=pool_obs, max_files=MAX_FILES
    )
    pooled_s = time.perf_counter() - start

    summary = serial.summary()
    body = "\n".join(
        [
            f"scale:             {bench_world.scale.name} ({MAX_FILES} files)",
            f"plants applied:    {summary['plants_applied']}",
            f"found:             {summary['found']}",
            f"verified repairs:  {summary['accepted']} "
            f"(repair rate {summary['repair_rate']:.1%})",
            f"verifier crashes:  {summary['verifier_crashes']}",
            f"serial loop:       {serial_s:8.1f} s",
            f"{LOOP_WORKERS}-worker loop:     {pooled_s:8.1f} s",
            "",
            serial.render_text(),
        ]
    )
    print_table("Closed-loop autofix — find→patch→verify", body)

    # Parallelism must be a pure optimization: byte-identical manifest.
    assert serial.to_json() == pooled.to_json()
    for name in ("autofix_plants", "autofix_found", "autofix_accepted", "autofix_crashes"):
        assert serial_obs.count(name) == pool_obs.count(name), name

    assert summary["verifier_crashes"] == 0
    assert summary["repair_rate"] >= REPAIR_RATE_BAR, (
        f"repair rate {summary['repair_rate']:.1%} under the "
        f"{REPAIR_RATE_BAR:.0%} bar"
    )
    # The finder must hold recall on every planted checker class.
    for checker, scores in summary["finder"].items():
        assert scores["recall"] >= 0.9, (checker, scores)

    payload = {
        "bench": "autofix",
        "scale": bench_world.scale.name,
        "max_files": MAX_FILES,
        "loop_workers": LOOP_WORKERS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(pooled_s, 3),
        "manifest_identical": serial.to_json() == pooled.to_json(),
        "repair_rate_bar": REPAIR_RATE_BAR,
        **summary,
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_autofix.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    benchmark.pedantic(
        lambda: autofix_world(
            bench_world.world, config, workers=LOOP_WORKERS, max_files=MAX_FILES
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
