#!/usr/bin/env python3
"""Security patch identification: train RF + RNN classifiers on PatchDB.

Reproduces the Table VI workflow at example scale: assemble NVD-based and
wild-based datasets, train a Random Forest on the 60-dimensional Table I
features and an RNN on token sequences, and compare generalization across
test sources.  Also classifies two real patches from the paper's listings.

Usage::

    python examples/classify_patches.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import TINY, ExperimentWorld, run_table6
from repro.core import categorize_patch
from repro.corpus.vulnpatterns import PATTERN_NAMES
from repro.features import extract_features
from repro.ml import RandomForestClassifier, patch_token_sequence
from repro.patch import parse_patch

LISTING_1 = """commit b84c2cab55948a5ee70860779b2640913e3ee1ed
Author: Dev <d@example.org>
Date:   Tue Nov 5 10:00:00 2019 -0500

    prevent stack underflow in bit_write_UMC

diff --git a/src/bits.c b/src/bits.c
--- a/src/bits.c
+++ b/src/bits.c
@@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)
     if (byte[i] & 0x7f)
       break;

-  if (byte[i] & 0x40)
+  if (byte[i] & 0x40 && i > 0)
     byte[i] &= 0x7f;
   for (j = 4; j >= i; j--)
     {
"""


def main() -> None:
    print("building world + datasets...")
    ew = ExperimentWorld(TINY)

    print("\nTable VI analogue (RF + RNN x NVD/NVD+wild training):")
    print(run_table6(ew).table())

    # Train a final RF on everything and classify the paper's Listing 1.
    sec = ew.world.security_shas()
    non = ew.ground_truth_nonsec(2 * len(sec))
    X = ew.cache.matrix(sec + non)
    y = np.array([1] * len(sec) + [0] * len(non))
    rf = RandomForestClassifier(n_estimators=40, max_depth=14, seed=0).fit(X, y)

    patch = parse_patch(LISTING_1)
    proba = rf.predict_proba(extract_features(patch).reshape(1, -1))[0, 1]
    pattern = categorize_patch(patch)
    print("\npaper Listing 1 (CVE-2019-20912):")
    print(f"  P(security) = {proba:.2f}")
    print(f"  pattern type = {pattern} ({PATTERN_NAMES[pattern]})")
    print(f"  token sequence head: {patch_token_sequence(patch)[:12]}")


if __name__ == "__main__":
    main()
