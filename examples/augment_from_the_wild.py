#!/usr/bin/env python3
"""Human-in-the-loop augmentation: watch nearest link search at work.

Reproduces the §III-B workflow interactively: seed with the crawled
NVD-based dataset, run several augmentation rounds against a wild pool, and
report how much expert effort the nearest link search saves compared to
brute-force review — the paper's ~66% effort-reduction claim.

Usage::

    python examples/augment_from_the_wild.py [rounds] [pool_size]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import TINY, ExperimentWorld
from repro.core import DatasetAugmentation, SearchSet, VerificationOracle
from repro.features import weighted_distance_matrix
from repro.core.nearest_link import link_distances, nearest_link_search


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    pool_size = int(sys.argv[2]) if len(sys.argv) > 2 else 250

    print("building world + NVD seed...")
    # Seed 3 draws a TINY world whose NVD seed set is large enough for the
    # demo to land hits even with a small pool; the default seed's 6-patch
    # seed set needs SMALL-scale pools to show the effect.
    ew = ExperimentWorld(TINY, seed=3)
    seed = ew.nvd_seed_shas
    pool = ew.wild_pool(pool_size)
    print(f"  seed: {len(seed)} NVD security patches; pool: {len(pool)} wild commits")

    # Peek inside one nearest link search before running the loop.
    distance = weighted_distance_matrix(ew.cache.matrix(seed), ew.cache.matrix(pool))
    result = nearest_link_search(distance)
    dists = link_distances(distance, result)
    print("\nfirst round, closest links (security patch -> wild candidate):")
    order = np.argsort(dists)[:5]
    for m in order:
        cand = pool[int(result.links[m])]
        label = ew.world.label(cand)
        truth = "SECURITY" if label.is_security else "non-security"
        print(
            f"  seed {seed[m][:10]} -> candidate {cand[:10]} "
            f"(distance {dists[m]:.3f}) truth: {truth} [{ew.world.patch_for(cand).subject}]"
        )

    oracle = VerificationOracle(ew.world, seed=1)
    augmentation = DatasetAugmentation(ew.cache, oracle)
    outcome = augmentation.run_schedule(seed, [SearchSet("pool", tuple(pool), rounds=rounds)])

    print(f"\n{rounds} augmentation rounds:")
    print(outcome.table())

    found = outcome.wild_security_count
    reviewed = oracle.stats.candidates_reviewed
    base_rate = np.mean([ew.world.label(s).is_security for s in pool])
    print(
        f"\nexpert effort: {reviewed} candidate reviews for {found} new security patches"
        f" ({found / reviewed:.0%} yield)" if reviewed else "\nexpert effort: no reviews"
    )
    if found and base_rate:
        brute_reviews = found / base_rate
        print(
            f"brute force would need ~{brute_reviews:.0f} reviews for the same haul "
            f"(base rate {base_rate:.1%}) -> effort reduced by "
            f"{1 - reviewed / brute_reviews:.0%}"
        )
    else:
        print(
            f"no wild security patches found (base rate {base_rate:.1%}) -> "
            "effort reduced by n/a; rerun with more rounds or a larger pool"
        )


if __name__ == "__main__":
    main()
