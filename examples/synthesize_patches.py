#!/usr/bin/env python3
"""Source-level patch oversampling: the Fig. 5 variants in action.

Takes a natural security patch from the simulated world, applies each of
the eight control-flow variant templates, and prints the resulting
synthetic diffs so the §III-C mechanism is visible end to end.

Usage::

    python examples/synthesize_patches.py [how_many_variants]
"""

from __future__ import annotations

import sys

from repro.analysis import TINY, ExperimentWorld
from repro.patch import render_file_diff
from repro.synthesis import VARIANTS, PatchSynthesizer, synthesize_from_texts
from repro.diffing import diff_texts


def main() -> None:
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 3

    print("building world...")
    ew = ExperimentWorld(TINY)

    # Pick a security patch whose diff touches an if statement.
    synthesizer = PatchSynthesizer(ew.world, max_per_patch=8, seed=0)
    chosen = None
    for sha in ew.world.security_shas():
        produced = synthesizer.synthesize(sha)
        if len(produced) >= limit:
            chosen = (sha, produced)
            break
    if chosen is None:
        print("no patch with enough if-statement sites found; rerun with another seed")
        return
    sha, produced = chosen

    natural = ew.world.patch_for(sha)
    print(f"\nnatural security patch {sha[:12]} ({natural.subject!r}):")
    print(render_file_diff(natural.files[0]))

    for sp in produced[:limit]:
        variant = VARIANTS[sp.variant_id - 1]
        print(f"\n--- synthetic via variant {sp.variant_id} ({variant.description}), "
              f"{sp.side} side ---")
        print(render_file_diff(sp.patch.files[0]))

    # Also show the primitive API on a self-contained file pair.
    before = (
        "int get(int idx, int cap)\n{\n"
        "    if (idx >= cap)\n        return -1;\n    return idx;\n}\n"
    )
    after = before.replace("idx >= cap", "idx >= cap || idx < 0")
    print("\nprimitive API on a hand-written pair (variant 1):")
    new_before, new_after = synthesize_from_texts(before, after, "get.c", VARIANTS[0])
    print(render_file_diff(diff_texts(new_before, new_after, "get.c")))


if __name__ == "__main__":
    main()
