#!/usr/bin/env python3
"""Quickstart: build a PatchDB release end-to-end and inspect it.

Runs the paper's full construction methodology (Fig. 1) against the
simulated world at TINY scale:

1. build the world (repositories + commit histories + ground truth),
2. build the simulated NVD and crawl it for the NVD-based dataset,
3. augment with nearest link search + expert verification (wild-based),
4. oversample control-flow variants (synthetic dataset),
5. save everything as JSONL and print the headline numbers.

Takes a few seconds.  Usage::

    python examples/quickstart.py [output.jsonl]
"""

from __future__ import annotations

import sys
import time

from repro.analysis import TINY, ExperimentWorld, build_patchdb
from repro.core import PatchDB, PatchQuery
from repro.patch import render_patch


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "patchdb_tiny.jsonl"

    t0 = time.time()
    print("building the simulated world (repositories, commits, NVD)...")
    ew = ExperimentWorld(TINY)
    print(
        f"  {len(ew.world.repos)} repositories, {len(ew.world.all_shas())} commits, "
        f"{len(ew.nvd)} CVE records ({time.time() - t0:.1f}s)"
    )
    print(f"  crawler: {ew.crawl.summary()}")

    print("\nrunning the full PatchDB construction pipeline...")
    db = build_patchdb(ew)
    summary = db.summary()
    print("  PatchDB summary:")
    for key, value in summary.items():
        print(f"    {key:>24s}: {value}")

    print("\none NVD-based security patch, as crawled:")
    record = db.records(PatchQuery(source="nvd", is_security=True))[0]
    print("  " + "\n  ".join(render_patch(record.patch).splitlines()[:16]))

    db.save_jsonl(out_path)
    print(f"\nsaved {len(db)} records to {out_path}")

    reloaded = PatchDB.load_jsonl(out_path)
    assert reloaded.summary() == summary
    print("reload check: OK")


if __name__ == "__main__":
    main()
