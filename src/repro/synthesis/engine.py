"""The oversampling engine (Fig. 4).

For each natural patch: retrieve the BEFORE and AFTER versions of every
touched file from the repository, locate patch-related ``if`` statements in
one version, apply a Fig. 5 variant there, and re-diff.  Modifying the
AFTER version composes the extra change *onto* the patch; modifying the
BEFORE version composes its inverse *under* the patch (§III-C-3) — either
way the synthetic patch embeds the original fix plus new control-flow
scaffolding, which is exactly what the paper's oversampler produces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

from ..corpus.world import World
from ..diffing.unified_gen import diff_texts
from ..errors import SynthesisError
from ..patch.model import Patch
from .locator import locate_ifs, touched_lines
from .variants import VARIANTS, Variant, apply_variant_text

__all__ = ["SyntheticPatch", "PatchSynthesizer", "synthesize_from_texts"]


@dataclass(frozen=True, slots=True)
class SyntheticPatch:
    """A generated patch plus its provenance.

    Attributes:
        patch: the synthetic patch.
        origin_sha: the natural patch it derives from.
        variant_id: which Fig. 5 template was applied.
        side: ``"before"`` or ``"after"`` — which version was modified.
    """

    patch: Patch
    origin_sha: str
    variant_id: int
    side: str


def _synthetic_sha(origin: str, variant_id: int, side: str, site: int) -> str:
    """Deterministic 40-hex id for a synthetic patch."""
    return hashlib.sha1(f"{origin}:{variant_id}:{side}:{site}".encode()).hexdigest()


def synthesize_from_texts(
    before: str,
    after: str,
    path: str,
    variant: Variant,
    side: str = "after",
    site_index: int = 0,
) -> tuple[str, str] | None:
    """Apply one variant to one file pair; returns the new (before, after).

    Args:
        before: pre-patch file contents.
        after: post-patch file contents.
        path: file path (for diagnostics only).
        variant: the Fig. 5 template.
        side: which version to modify.
        site_index: which located if statement to transform.

    Returns:
        The new ``(before, after)`` texts, or None when no applicable
        ``if`` site exists.

    Raises:
        SynthesisError: for an invalid *side*.
    """
    if side not in ("before", "after"):
        raise SynthesisError(f"side must be 'before' or 'after', got {side!r}")
    fdiff = diff_texts(before, after, path)
    if not fdiff.hunks:
        return None
    source = before if side == "before" else after
    sites = locate_ifs(source, touched_lines(fdiff, side))
    if site_index >= len(sites):
        return None
    stmt = sites[site_index].stmt
    # Scaffold suffixes must be stable across processes (builtin hash() is
    # salted per interpreter), or repeated builds emit different releases.
    site_key = f"{path}:{stmt.start_line}:{variant.variant_id}".encode()
    suffix = f"{int.from_bytes(hashlib.sha1(site_key).digest()[:4], 'big') % 10_000:04d}"
    try:
        new_source = apply_variant_text(
            source,
            variant,
            (stmt.cond_open_line, stmt.cond_open_col),
            (stmt.cond_close_line, stmt.cond_close_col),
            stmt.start_line,
            suffix,
        )
    except SynthesisError:
        return None
    if side == "before":
        return new_source, after
    return before, new_source


class PatchSynthesizer:
    """Oversampler bound to a world (for BEFORE/AFTER retrieval).

    Variant/side choices are drawn from a generator derived from the base
    seed *and the origin sha*, so :meth:`synthesize` is a pure function of
    ``(seed, sha)`` — independent of call order.  That purity is what lets
    ``memoize=True`` reuse results bit-identically when the evaluation
    harness (Table IV) revisits the same training shas across split seeds.

    Args:
        world: the world holding the repositories.
        max_per_patch: cap on synthetic patches generated per natural patch.
        seed: base RNG seed choosing variants, sides, and sites.
        memoize: cache the synthesis result per origin sha.
    """

    def __init__(
        self,
        world: World,
        max_per_patch: int = 4,
        seed: int | np.random.Generator | None = 0,
        memoize: bool = False,
    ) -> None:
        if max_per_patch < 1:
            raise SynthesisError("max_per_patch must be >= 1")
        self._world = world
        self.max_per_patch = max_per_patch
        if isinstance(seed, np.random.Generator):
            seed = int(seed.integers(np.iinfo(np.int64).max))
        self._base_seed = int(seed) if seed is not None else 0
        self._memo: dict[str, list[SyntheticPatch]] | None = {} if memoize else None

    def _rng_for(self, sha: str) -> np.random.Generator:
        """The per-origin generator: seeded by (base seed, sha)."""
        return np.random.default_rng((self._base_seed, int(sha[:16], 16)))

    def synthesize(self, sha: str) -> list[SyntheticPatch]:
        """Generate synthetic patches for one natural commit."""
        if self._memo is not None and sha in self._memo:
            return self._memo[sha]
        label = self._world.label(sha)
        repo = self._world.repo_of(sha)
        before_tree, after_tree = repo.before_after(sha)
        natural = self._world.patch_for(sha)
        out: list[SyntheticPatch] = []
        rng = self._rng_for(sha)
        order = rng.permutation(len(VARIANTS))
        for k in range(len(VARIANTS)):
            if len(out) >= self.max_per_patch:
                break
            variant = VARIANTS[int(order[k])]
            side = "after" if rng.random() < 0.7 else "before"
            synthetic = self._synthesize_one(natural, before_tree, after_tree, variant, side, k)
            if synthetic is not None:
                out.append(synthetic)
        if self._memo is not None:
            self._memo[sha] = out
        return out

    def _synthesize_one(
        self,
        natural: Patch,
        before_tree: dict[str, str],
        after_tree: dict[str, str],
        variant: Variant,
        side: str,
        site_round: int,
    ) -> SyntheticPatch | None:
        for fdiff in natural.files:
            path = fdiff.path
            before = before_tree.get(path, "")
            after = after_tree.get(path, "")
            result = synthesize_from_texts(before, after, path, variant, side, site_index=0)
            if result is None and side == "after":
                result = synthesize_from_texts(before, after, path, variant, "before", site_index=0)
                side = "before" if result is not None else side
            if result is None:
                continue
            new_before, new_after = result
            new_fdiff = diff_texts(new_before, new_after, path)
            if not new_fdiff.hunks:
                continue
            files = tuple(new_fdiff if f.path == path else f for f in natural.files)
            sha = _synthetic_sha(natural.sha, variant.variant_id, side, site_round)
            patch = replace(natural, sha=sha, files=files)
            return SyntheticPatch(
                patch=patch, origin_sha=natural.sha, variant_id=variant.variant_id, side=side
            )
        return None

    def synthesize_many(self, shas: list[str]) -> list[SyntheticPatch]:
        """Bulk :meth:`synthesize` (flattened)."""
        out: list[SyntheticPatch] = []
        for sha in shas:
            out.extend(self.synthesize(sha))
        return out
