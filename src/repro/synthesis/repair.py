"""Inverting the Fig. 5 variants: the patcher half of the autofix loop.

:mod:`repro.synthesis.variants` scaffolds an ``if`` statement — constant
guards, hoisted conditions, flag variables set by a preceding ``if`` — and
:mod:`repro.staticcheck.equivalence` already knows how to read that
scaffolding *backwards* when comparing control-flow skeletons.  This module
turns that read-only inversion into a source rewrite: ``find_repair_sites``
locates every ``if`` whose condition matches one of the eight template
shapes, and ``repair_site`` rewrites the text — restoring the original
condition and deleting the scaffold declarations and flag-toggle ``if``s
that fed it.

The rewrite is deliberately conservative: a ``_SYS_`` identifier that does
not resolve through a known template shape is left untouched, so a
half-recognized site can never produce a mangled repair — it simply is not
a site.  ``repair_all`` applies sites one at a time, re-parsing between
rewrites, because each repair deletes lines and shifts every coordinate
below it.

Imports from :mod:`repro.staticcheck` are function-level: the staticcheck
package pulls in the validation gate, which imports the synthesis engine,
and a module-level import here would close that cycle during package init.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SynthesisError

__all__ = ["RepairSite", "find_repair_sites", "repair_site", "repair_all"]

#: Upper bound on repair_all rounds; generated corpora stay far below it.
MAX_REPAIR_ROUNDS = 256


@dataclass(frozen=True, slots=True)
class RepairSite:
    """One scaffolded ``if`` and everything needed to unscaffold it.

    Attributes:
        function: enclosing function name.
        if_line: 1-based line of the ``if`` keyword.
        cond_open: (line, col) of the condition's opening parenthesis.
        cond_close: (line, col) of its closing parenthesis.
        restored_cond: the original condition (token-normalized) that the
            template shape resolves back to.
        names: the ``_SYS_`` identifiers the shape consumed.
        decl_lines: 1-based lines of the scaffold declarations to delete.
        toggle_spans: (start, end) line spans of flag-toggle ``if``s to
            delete (empty for variants 1-4).
    """

    function: str
    if_line: int
    cond_open: tuple[int, int]
    cond_close: tuple[int, int]
    restored_cond: str
    names: tuple[str, ...]
    decl_lines: tuple[int, ...] = ()
    toggle_spans: tuple[tuple[int, int], ...] = field(default=())


def find_repair_sites(source: str, path: str = "<memory>") -> list[RepairSite]:
    """Every repairable scaffolded ``if`` in *source*, in line order.

    Walks each function body the same way the descaffolded-signature pass
    does — building the scaffold environment from declarations and
    flag-toggle ``if``s — and records a site wherever resolving an ``if``
    condition through that environment changes it.

    Raises:
        ParseError: via the parser, when *source* cannot be parsed.
    """
    from ..lang.ast_nodes import (
        BlockStmt,
        DeclStmt,
        DoWhileStmt,
        ForStmt,
        IfStmt,
        LabelStmt,
        SwitchStmt,
        WhileStmt,
    )
    from ..lang.lexer import code_tokens
    from ..lang.parser import parse_translation_unit
    from ..staticcheck.equivalence import (
        _flag_toggle,
        _norm_cond,
        _resolve_cond,
        _scan_scaffold_decl,
    )

    unit = parse_translation_unit(source, path)
    sites: list[RepairSite] = []

    def visit(stmt, env: dict, meta: dict, fn_name: str) -> None:
        if isinstance(stmt, BlockStmt):
            visit_block(stmt.stmts, env, meta, fn_name)
            return
        if isinstance(stmt, IfStmt):
            resolved = _resolve_cond(stmt.cond.text, env)
            if resolved != _norm_cond(stmt.cond.text):
                # Delete scaffolding only for identifiers the resolution
                # consumed: with stacked variants the restored condition can
                # itself be a scaffold reference (e.g. v2 wrapped around
                # v5 resolves to the inner flag), and that flag's decl and
                # toggle must survive for the next repair round.
                kept = {t.text for t in code_tokens(resolved)}
                names = tuple(
                    t.text
                    for t in code_tokens(stmt.cond.text)
                    if t.text in env and t.text in meta and t.text not in kept
                )
                decl_lines = []
                toggle_spans = []
                for name in names:
                    decl_line, toggle_span = meta[name]
                    decl_lines.append(decl_line)
                    if toggle_span is not None:
                        toggle_spans.append(toggle_span)
                sites.append(
                    RepairSite(
                        function=fn_name,
                        if_line=stmt.start_line,
                        cond_open=(stmt.cond_open_line, stmt.cond_open_col),
                        cond_close=(stmt.cond_close_line, stmt.cond_close_col),
                        restored_cond=resolved,
                        names=names,
                        decl_lines=tuple(sorted(set(decl_lines))),
                        toggle_spans=tuple(sorted(set(toggle_spans))),
                    )
                )
            visit(stmt.then, env, meta, fn_name)
            if stmt.orelse is not None:
                visit(stmt.orelse, env, meta, fn_name)
            return
        if isinstance(stmt, (WhileStmt, DoWhileStmt, ForStmt, SwitchStmt)):
            visit(stmt.body, env, meta, fn_name)
            return
        if isinstance(stmt, LabelStmt) and stmt.stmt is not None:
            visit(stmt.stmt, env, meta, fn_name)

    def visit_block(stmts, env: dict, meta: dict, fn_name: str) -> None:
        for stmt in stmts:
            if isinstance(stmt, DeclStmt):
                found = _scan_scaffold_decl(stmt.text)
                if found is not None:
                    name, scaffold = found
                    env[name] = scaffold
                    meta[name] = (stmt.start_line, None)
                    continue
            if isinstance(stmt, IfStmt):
                toggle = _flag_toggle(stmt)
                if toggle is not None:
                    name, value, cond = toggle
                    init = env.get(name)
                    if init is not None and init.kind in ("flag_init0", "flag_init1"):
                        kind = "flag_set" if value == "1" else "flag_clear"
                        env[name] = type(init)(kind, cond)
                        decl_line = meta[name][0] if name in meta else stmt.start_line
                        meta[name] = (decl_line, (stmt.start_line, stmt.end_line))
                        continue
            visit(stmt, env, meta, fn_name)

    for fn in unit.functions:
        visit_block(fn.body.stmts, {}, {}, fn.name)
    sites.sort(key=lambda s: s.if_line)
    return sites


def repair_site(source: str, site: RepairSite) -> str:
    """Rewrite *source* so *site*'s ``if`` tests its original condition.

    The condition span is collapsed onto the opening line and replaced by
    ``site.restored_cond``; the scaffold declaration lines and flag-toggle
    spans are deleted.

    Raises:
        SynthesisError: when the site's coordinates do not align with the
            text (stale site after an earlier edit).
    """
    lines = source.splitlines()
    open_line, open_col = site.cond_open
    close_line, close_col = site.cond_close
    if not (1 <= open_line <= len(lines) and 1 <= close_line <= len(lines)):
        raise SynthesisError("repair site outside the file")
    if (
        lines[open_line - 1][open_col - 1 : open_col] != "("
        or lines[close_line - 1][close_col - 1 : close_col] != ")"
    ):
        raise SynthesisError("repair site does not align with parentheses")

    head = lines[open_line - 1][:open_col]  # up to and including '('
    tail = lines[close_line - 1][close_col - 1 :]  # from ')' on
    new_if = f"{head}{site.restored_cond}{tail}"

    drop: set[int] = set(site.decl_lines)
    for start, end in site.toggle_spans:
        drop.update(range(start, end + 1))
    drop.update(range(open_line + 1, close_line + 1))  # collapsed cond span

    out: list[str] = []
    for lineno, text in enumerate(lines, start=1):
        if lineno == open_line:
            out.append(new_if)
        elif lineno not in drop:
            out.append(text)
    return "\n".join(out) + ("\n" if source.endswith("\n") else "")


def repair_all(source: str, path: str = "<memory>") -> tuple[str, int]:
    """Repair every recognizable scaffolded ``if`` in *source*.

    Applies the first site in line order, re-parses, and repeats — each
    repair deletes lines, so later sites' coordinates are only valid after
    a fresh :func:`find_repair_sites` pass.  Repairing a stacked site can
    expose a new one (the outer template resolves to the inner flag), so
    the loop runs until the site list is empty rather than until it
    shrinks, bounded by :data:`MAX_REPAIR_ROUNDS`.

    Returns:
        (repaired text, number of sites repaired).

    Raises:
        SynthesisError: when a repair leaves the text unchanged (it would
            loop forever) or the round cap is exceeded.
    """
    repaired = 0
    for _ in range(MAX_REPAIR_ROUNDS):
        sites = find_repair_sites(source, path)
        if not sites:
            return source, repaired
        rewritten = repair_site(source, sites[0])
        if rewritten == source:
            raise SynthesisError(
                f"repair did not converge at {path}:{sites[0].if_line}"
            )
        source = rewritten
        repaired += 1
    raise SynthesisError(f"more than {MAX_REPAIR_ROUNDS} repair rounds at {path}")
