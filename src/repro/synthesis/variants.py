"""The eight control-flow variants of Fig. 5.

Each variant rewrites one ``if (COND)`` statement into a semantically
equivalent form with extra control-flow scaffolding: constant guards,
hoisted condition variables, or flag variables set by a preceding ``if``.
The scaffolding identifiers carry a ``_SYS_`` prefix and a unique suffix so
several variants can stack in one function without collisions.

Equivalence assumes ``COND`` has no side effects — variants 3-8 evaluate it
(at most) twice.  :func:`apply_variant_text` enforces that assumption with
:func:`repro.lang.sideeffects.expression_side_effects` and refuses (raises
:class:`SynthesisError`) to rewrite a side-effecting condition, so the
engine simply skips such sites.  The corpus generator never emits them; the
check matters for arbitrary real-world code (the paper's tool shares the
assumption without enforcing it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SynthesisError
from ..lang.sideeffects import expression_side_effects

__all__ = ["Variant", "VARIANTS", "apply_variant_text", "N_VARIANTS"]

N_VARIANTS = 8


@dataclass(frozen=True, slots=True)
class Variant:
    """One Fig. 5 template.

    Attributes:
        variant_id: 1-8, matching the figure's reading order (left column
            top-to-bottom, then right column).
        description: what the template adds.
    """

    variant_id: int
    description: str

    def rewrite(self, cond: str, suffix: str, indent: str) -> tuple[list[str], str]:
        """Produce (pre_lines, new_condition) for a condition text.

        Args:
            cond: the original condition's source text.
            suffix: uniquifying suffix for scaffold identifiers.
            indent: indentation string of the ``if`` line.

        Raises:
            SynthesisError: for an unknown variant id.
        """
        c = f"({cond})" if _needs_parens(cond) else cond
        v = self.variant_id
        if v == 1:
            zero = f"_SYS_ZERO_{suffix}"
            return [f"{indent}const int {zero} = 0;"], f"{zero} || {c}"
        if v == 2:
            one = f"_SYS_ONE_{suffix}"
            return [f"{indent}const int {one} = 1;"], f"{one} && {c}"
        if v == 3:
            stmt = f"_SYS_STMT_{suffix}"
            return [f"{indent}int {stmt} = {c};"], f"1 == {stmt}"
        if v == 4:
            stmt = f"_SYS_STMT_{suffix}"
            # '!' binds tighter than comparison operators, so the hoisted
            # negation must parenthesize even "simple" conditions: for
            # c == 'a > 1', '!a > 1' would negate only 'a'.
            negated = f"!{c}" if c.startswith("(") else f"!({c})"
            return [f"{indent}int {stmt} = {negated};"], f"!{stmt}"
        if v == 5:
            val = f"_SYS_VAL_{suffix}"
            pre = [
                f"{indent}int {val} = 0;",
                f"{indent}if {c if c.startswith('(') else '(' + c + ')'} {{ {val} = 1; }}",
            ]
            return pre, f"{val}"
        if v == 6:
            val = f"_SYS_VAL_{suffix}"
            pre = [
                f"{indent}int {val} = 1;",
                f"{indent}if {c if c.startswith('(') else '(' + c + ')'} {{ {val} = 0; }}",
            ]
            return pre, f"!{val}"
        if v == 7:
            val = f"_SYS_VAL_{suffix}"
            pre = [
                f"{indent}int {val} = 0;",
                f"{indent}if {c if c.startswith('(') else '(' + c + ')'} {{ {val} = 1; }}",
            ]
            return pre, f"{val} && {c}"
        if v == 8:
            val = f"_SYS_VAL_{suffix}"
            pre = [
                f"{indent}int {val} = 1;",
                f"{indent}if {c if c.startswith('(') else '(' + c + ')'} {{ {val} = 0; }}",
            ]
            return pre, f"!{val} || {c}"
        raise SynthesisError(f"unknown variant id {v}")


def _needs_parens(cond: str) -> bool:
    """Wrap compound conditions so added operators bind correctly."""
    stripped = cond.strip()
    if stripped.startswith("(") and stripped.endswith(")"):
        # Already fully parenthesized only if the outer parens match.
        depth = 0
        for i, ch in enumerate(stripped):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and i < len(stripped) - 1:
                    return True
        return False
    return any(op in stripped for op in ("&&", "||", "?", ","))


VARIANTS: tuple[Variant, ...] = (
    Variant(1, "OR with a constant zero"),
    Variant(2, "AND with a constant one"),
    Variant(3, "hoist condition into a flag, compare against 1"),
    Variant(4, "hoist negated condition into a flag, negate again"),
    Variant(5, "set flag in a preceding if, branch on flag"),
    Variant(6, "clear flag in a preceding if, branch on negated flag"),
    Variant(7, "flag AND original condition"),
    Variant(8, "negated flag OR original condition"),
)


def apply_variant_text(
    source: str,
    variant: Variant,
    cond_open: tuple[int, int],
    cond_close: tuple[int, int],
    if_line: int,
    suffix: str,
) -> str:
    """Rewrite one if statement inside *source*.

    Args:
        source: full file text.
        variant: the template to apply.
        cond_open: (line, col) of the opening parenthesis (1-based).
        cond_close: (line, col) of the closing parenthesis (1-based).
        if_line: 1-based line of the ``if`` keyword.
        suffix: scaffold identifier suffix.

    Returns:
        The transformed file text.

    Raises:
        SynthesisError: if the coordinates do not resolve to parentheses, or
            if the condition has side effects (assignment, ``++``/``--``, or
            a function call) — variants 3-8 may evaluate it twice, so
            rewriting such a condition would not be behavior-preserving.
    """
    lines = source.splitlines()
    open_line, open_col = cond_open
    close_line, close_col = cond_close
    if not (1 <= open_line <= len(lines) and 1 <= close_line <= len(lines)):
        raise SynthesisError("condition span outside the file")
    if lines[open_line - 1][open_col - 1] != "(" or lines[close_line - 1][close_col - 1] != ")":
        raise SynthesisError("condition span does not align with parentheses")

    # Extract the condition text (possibly multi-line; joined with spaces).
    if open_line == close_line:
        cond = lines[open_line - 1][open_col : close_col - 1]
    else:
        parts = [lines[open_line - 1][open_col:]]
        parts.extend(lines[ln - 1] for ln in range(open_line + 1, close_line))
        parts.append(lines[close_line - 1][: close_col - 1])
        cond = " ".join(p.strip() for p in parts)

    effects = expression_side_effects(cond)
    if effects:
        raise SynthesisError(
            f"condition {cond.strip()!r} has side effects "
            f"({', '.join(e.describe() for e in effects)}); "
            "rewriting it would not be behavior-preserving"
        )

    indent = lines[if_line - 1][: len(lines[if_line - 1]) - len(lines[if_line - 1].lstrip())]
    pre_lines, new_cond = variant.rewrite(cond.strip(), suffix, indent)

    # Rebuild: collapse the if-header span onto one line with the new cond.
    head = lines[open_line - 1][:open_col]  # up to and including '('
    tail = lines[close_line - 1][close_col - 1 :]  # from ')' on
    new_if = f"{head}{new_cond}{tail}"
    out = lines[: open_line - 1] + [new_if] + lines[close_line:]
    # Insert scaffolding just above the if keyword's line.
    insert_at = if_line - 1
    out = out[:insert_at] + pre_lines + out[insert_at:]
    return "\n".join(out) + ("\n" if source.endswith("\n") else "")
