"""Locating patch-related ``if`` statements (§III-C-2).

The paper extracts ``IfStmt <line:N, line:N>`` spans from LLVM ASTs of the
BEFORE/AFTER file versions and keeps the ones "involved with code changes".
Our parser provides the same spans; a statement is *involved* when its
header-to-end span intersects the patch's touched lines in that version, and
— as a fallback that raises synthetic yield the way the paper's tool does —
when it shares a function with a touched line.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast_nodes import IfStmt, walk
from ..lang.parser import parse_translation_unit
from ..patch.model import FileDiff

__all__ = ["LocatedIf", "locate_ifs", "touched_lines"]


@dataclass(frozen=True, slots=True)
class LocatedIf:
    """An ``if`` statement eligible for variant transformation.

    Attributes:
        stmt: the parsed statement (carries condition coordinates).
        direct: True when the statement's span intersects changed lines,
            False when matched through the enclosing-function fallback.
    """

    stmt: IfStmt
    direct: bool


def touched_lines(diff: FileDiff, side: str) -> set[int]:
    """1-based line numbers the patch touches on one side.

    Args:
        diff: the file diff.
        side: ``"before"`` (removed lines in the old file) or ``"after"``
            (added lines in the new file).
    """
    out: set[int] = set()
    for hunk in diff.hunks:
        out.update(hunk.old_lines_touched() if side == "before" else hunk.new_lines_touched())
    return out


def locate_ifs(source: str, lines: set[int], allow_function_fallback: bool = True) -> list[LocatedIf]:
    """Find ``if`` statements related to the given touched lines.

    Returns direct intersections first, then (optionally) same-function
    fallbacks, each in source order.
    """
    if not lines:
        return []
    try:
        unit = parse_translation_unit(source)
    except Exception:
        return []
    direct: list[LocatedIf] = []
    fallback: list[LocatedIf] = []
    for fn in unit.functions:
        fn_touched = any(fn.span_contains(line) for line in lines)
        for node in walk(fn):
            if not isinstance(node, IfStmt):
                continue
            if any(node.start_line <= line <= node.end_line for line in lines):
                direct.append(LocatedIf(node, direct=True))
            elif allow_function_fallback and fn_touched:
                fallback.append(LocatedIf(node, direct=False))
    ordered = sorted(direct, key=lambda l: l.stmt.start_line)
    ordered.extend(sorted(fallback, key=lambda l: l.stmt.start_line))
    return ordered
