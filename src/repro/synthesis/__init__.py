"""Source-level patch oversampling (§III-C): Fig. 5 variants and engine."""

from .engine import PatchSynthesizer, SyntheticPatch, synthesize_from_texts
from .locator import LocatedIf, locate_ifs, touched_lines
from .variants import N_VARIANTS, VARIANTS, Variant, apply_variant_text

__all__ = [
    "LocatedIf",
    "N_VARIANTS",
    "PatchSynthesizer",
    "SyntheticPatch",
    "VARIANTS",
    "Variant",
    "apply_variant_text",
    "locate_ifs",
    "synthesize_from_texts",
    "touched_lines",
]
