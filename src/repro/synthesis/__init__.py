"""Source-level patch oversampling (§III-C): Fig. 5 variants and engine."""

from .engine import PatchSynthesizer, SyntheticPatch, synthesize_from_texts
from .locator import LocatedIf, locate_ifs, touched_lines
from .repair import RepairSite, find_repair_sites, repair_all, repair_site
from .variants import N_VARIANTS, VARIANTS, Variant, apply_variant_text

__all__ = [
    "LocatedIf",
    "N_VARIANTS",
    "PatchSynthesizer",
    "RepairSite",
    "SyntheticPatch",
    "VARIANTS",
    "Variant",
    "apply_variant_text",
    "find_repair_sites",
    "locate_ifs",
    "repair_all",
    "repair_site",
    "synthesize_from_texts",
    "touched_lines",
]
