"""Lightweight observability: wall-time phases and monotonic counters.

One :class:`ObsRegistry` is threaded through the hot paths — feature
extraction (:class:`~repro.core.cache.PatchFeatureCache`), tokenization
(:class:`~repro.core.cache.TokenSequenceCache`), the incremental distance
engine (:class:`~repro.features.normalize.DistanceEngine`), the augmentation
loop, and model training (:func:`~repro.ml.fit_many`,
:class:`~repro.ml.RandomForestClassifier`) — so a CLI run or benchmark can
answer "where did the time go" without a profiler.  The registry is
additive-only and cheap: a timer is one ``perf_counter`` pair, a counter is
one dict add, and an unused registry costs nothing to carry.

Phase timer names in use: ``extract``, ``extract_parallel``, ``distance``,
``search``, ``verify``, ``tokenize``, ``tokenize_parallel``, ``fit``,
``fit_parallel``, ``lint``, ``lint_parallel``, ``gate``, ``delta``.
Counter names in use: ``vectors_extracted``, ``vector_cache_hits``,
``npz_vectors_loaded``, ``distance_cells_computed``,
``distance_cells_reused``, ``distance_full_recomputes``,
``distance_incremental_updates``, ``token_cache_hits``,
``token_cache_misses``, ``token_sequences_loaded``, ``fits_serial``,
``fits_parallel``, ``rf_trees_serial``, ``rf_trees_parallel``,
``files_linted``, ``lint_findings``, ``lint_<checker>`` (one per checker
id, dashes as underscores), ``variant_equiv_checks``,
``variant_equiv_failures``, ``delta_vectors``, ``delta_blob_cache_hits``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ObsRegistry"]


class ObsRegistry:
    """Accumulates named wall-time phases and integer counters."""

    def __init__(self) -> None:
        self._timers: dict[str, float] = {}
        self._timer_calls: dict[str, int] = {}
        self._counters: dict[str, int] = {}

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._timers[name] = self._timers.get(name, 0.0) + elapsed
            self._timer_calls[name] = self._timer_calls.get(name, 0) + 1

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        self._counters[name] = self._counters.get(name, 0) + amount

    @property
    def timers(self) -> dict[str, float]:
        """Accumulated seconds per phase (a copy)."""
        return dict(self._timers)

    @property
    def counters(self) -> dict[str, int]:
        """Counter values (a copy)."""
        return dict(self._counters)

    def seconds(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never timed)."""
        return self._timers.get(name, 0.0)

    def count(self, name: str) -> int:
        """Value of one counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def reset(self) -> None:
        """Zero every timer and counter."""
        self._timers.clear()
        self._timer_calls.clear()
        self._counters.clear()

    def report(self) -> str:
        """Human-readable phase/counter table."""
        lines = []
        if self._timers:
            lines.append("phase timings:")
            for name in sorted(self._timers):
                lines.append(
                    f"  {name:>28s}: {self._timers[name]:9.3f}s"
                    f"  ({self._timer_calls[name]} calls)"
                )
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name:>28s}: {self._counters[name]}")
        return "\n".join(lines) if lines else "(no observations recorded)"
