"""Observability: spans, wall-time phases, counters, and latency histograms.

One :class:`ObsRegistry` is threaded through the hot paths — feature
extraction (:class:`~repro.core.cache.PatchFeatureCache`), tokenization
(:class:`~repro.core.cache.TokenSequenceCache`), the incremental distance
engine (:class:`~repro.features.normalize.DistanceEngine`), the augmentation
loop, model training (:func:`~repro.ml.fit_many`,
:class:`~repro.ml.RandomForestClassifier`), and the linter
(:func:`~repro.staticcheck.lint_sources`) — so a CLI run or benchmark can
answer "where did the time go" without a profiler.

Three recording primitives build on each other:

* :meth:`ObsRegistry.timer` — a flat wall-time phase.  Each ``with`` body
  adds to the phase's total seconds and call count and appends one latency
  observation to the phase's histogram, so per-item phases (``extract``,
  ``tokenize``, ``lint``, ``rf_tree``) report p50/p95/max, not just sums.
* :meth:`ObsRegistry.add` — a monotonic integer counter.
* :meth:`ObsRegistry.span` — a *hierarchical* phase.  A span nests under
  the currently active span, carries arbitrary attributes
  (``obs.span("augment.round", round=3)``), records a node in the span
  tree for trace export, and still feeds the flat timer of the same name,
  so every ``timer``-based consumer keeps working when a call site is
  upgraded to a span.

**Cross-process merge protocol.**  Process-pool workers cannot write to the
parent's registry, so every chunked pool (feature cache, token cache,
``fit_many``, the random forest, ``lint_sources``) has its workers record
into a fresh local registry and pickle a :meth:`snapshot` back with each
chunk result; the parent folds them in with :meth:`merge` in deterministic
chunk order.  Merging adds timer seconds/calls and counters, concatenates
histogram observations, and grafts any worker spans under the parent's
active span — so serial and parallel runs report *identical* counters and
timer call counts (parallel runs used to silently drop worker-side
observations).  Merge is associative and commutative on counters and on
histogram multisets (property-tested in ``tests/test_obs_merge.py``).

**Export.**  :meth:`to_dict` is the machine-readable summary behind the CLI
``--stats-json`` flag; :meth:`export_trace` writes a JSONL trace (manifest
record, one record per span, summary record) that ``python -m repro trace``
renders back into a span tree (see :mod:`repro.trace`).

Phase timer names in use: ``extract``, ``extract_parallel``, ``distance``,
``search``, ``verify``, ``tokenize``, ``tokenize_parallel``, ``fit``,
``fit_parallel``, ``rf_tree``, ``lint``, ``lint_parallel``, ``gate``,
``delta``, ``world.shard``, ``world_build_parallel``.
Counter names in use: ``world_commits_attempted``,
``world_commits_produced``, ``world_commits_skipped_no_c_paths``,
``world_commits_skipped_exhausted``, ``vectors_extracted``, ``vector_cache_hits``,
``npz_vectors_loaded``, ``distance_cells_computed``,
``distance_cells_reused``, ``distance_full_recomputes``,
``distance_incremental_updates``, ``token_cache_hits``,
``token_cache_misses``, ``token_sequences_loaded``, ``fits_serial``,
``fits_parallel``, ``rf_trees_serial``, ``rf_trees_parallel``,
``files_linted``, ``lint_findings``, ``lint_<checker>`` (one per checker
id, dashes as underscores), ``variant_equiv_checks``,
``variant_equiv_failures``, ``delta_vectors``, ``delta_blob_cache_hits``,
``index.hit``, ``index.fallback`` (PatchDB queries served by the
posting-list planner vs. the scan path), ``render_cache.hit``,
``render_cache.miss`` (memoized record serializations),
``model_cache_hits``, ``model_cache_misses``, ``models_loaded``.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = ["ObsRegistry", "ObsSnapshot", "SpanRecord", "histogram_stats"]

#: Attribute value types that survive JSON round-trips unchanged.
_ATTR_TYPES = (str, int, float, bool, type(None))


@dataclass(slots=True)
class SpanRecord:
    """One node of the span tree.

    Attributes:
        span_id: registry-local id (1-based, allocation order).
        parent_id: enclosing span's id, or ``None`` for a root span.
        name: span name (dotted-phase convention, e.g. ``augment.round``).
        attributes: caller-supplied key/value context.
        start: seconds since the registry epoch when the span opened.
        duration: wall seconds the span was open (-1.0 while still open).
    """

    span_id: int
    parent_id: int | None
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    duration: float = -1.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``span`` record of a trace file)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attributes),
            "start": self.start,
            "duration": self.duration,
        }


@dataclass(slots=True)
class ObsSnapshot:
    """A picklable, mergeable copy of a registry's observations.

    This is what pool workers ship back to the parent: plain dicts and
    lists, no locks, no clocks.  ``spans`` uses the worker registry's local
    ids; :meth:`ObsRegistry.merge` remaps them into the receiving registry.
    """

    timers: dict[str, float] = field(default_factory=dict)
    timer_calls: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, list[float]] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)


def histogram_stats(values: list[float]) -> dict[str, float]:
    """Summary stats of one latency histogram: count/total/mean/p50/p95/max.

    Percentiles use the nearest-rank method on the sorted observations, so
    every reported quantile is an actually-observed latency.
    """
    if not values:
        return {"count": 0, "total": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def rank(q: float) -> float:
        return ordered[max(0, math.ceil(q * n) - 1)]

    total = sum(ordered)
    return {
        "count": n,
        "total": total,
        "mean": total / n,
        "p50": rank(0.50),
        "p95": rank(0.95),
        "max": ordered[-1],
    }


class ObsRegistry:
    """Accumulates spans, named wall-time phases, counters, and histograms.

    Args:
        enabled: when False every recording primitive is a no-op that still
            runs its ``with`` body — the baseline the instrumentation
            overhead benchmark compares against.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._timers: dict[str, float] = {}
        self._timer_calls: dict[str, int] = {}
        self._counters: dict[str, int] = {}
        self._hists: dict[str, list[float]] = {}
        self._spans: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_span = 1
        self._epoch = time.perf_counter()

    # ---- recording --------------------------------------------------------

    def _record(self, name: str, elapsed: float) -> None:
        self._timers[name] = self._timers.get(name, 0.0) + elapsed
        self._timer_calls[name] = self._timer_calls.get(name, 0) + 1
        self._hists.setdefault(name, []).append(elapsed)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under *name*.

        Feeds the flat phase total, the call count, and the phase's latency
        histogram; does not create a span node (per-item phases would drown
        the trace — use :meth:`span` for structural phases).
        """
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self._record(name, time.perf_counter() - start)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator["SpanRecord | None"]:
        """Open a hierarchical span named *name* for the ``with`` body.

        The span nests under the currently active span (spans opened inside
        the body nest under this one), carries *attributes* into the trace,
        and on close also feeds the flat timer of the same name, so any
        existing ``timer`` consumer sees the span as a normal phase.

        Yields the open :class:`SpanRecord` (or ``None`` when disabled) so
        callers can attach attributes discovered mid-span::

            with obs.span("augment.round", round=3) as sp:
                ...
                sp.attributes["verified"] = len(verified)
        """
        if not self.enabled:
            yield None
            return
        bad = [k for k, v in attributes.items() if not isinstance(v, _ATTR_TYPES)]
        for key in bad:
            attributes[key] = repr(attributes[key])
        record = SpanRecord(
            span_id=self._next_span,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            attributes=attributes,
            start=time.perf_counter() - self._epoch,
        )
        self._next_span += 1
        self._spans.append(record)
        self._stack.append(record.span_id)
        start = time.perf_counter()
        try:
            yield record
        finally:
            elapsed = time.perf_counter() - start
            record.duration = elapsed
            self._stack.pop()
            self._record(name, elapsed)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Append one observation to histogram *name* (no timer bookkeeping)."""
        if not self.enabled:
            return
        self._hists.setdefault(name, []).append(value)

    # ---- read access ------------------------------------------------------

    @property
    def timers(self) -> dict[str, float]:
        """Accumulated seconds per phase (a copy)."""
        return dict(self._timers)

    @property
    def timer_calls(self) -> dict[str, int]:
        """Completed ``timer``/``span`` bodies per phase (a copy)."""
        return dict(self._timer_calls)

    @property
    def counters(self) -> dict[str, int]:
        """Counter values (a copy)."""
        return dict(self._counters)

    @property
    def histograms(self) -> dict[str, list[float]]:
        """Raw latency observations per phase (a copy)."""
        return {name: list(values) for name, values in self._hists.items()}

    @property
    def spans(self) -> list[SpanRecord]:
        """Recorded spans in allocation order (a shallow copy)."""
        return list(self._spans)

    def seconds(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never timed)."""
        return self._timers.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Completed timer/span bodies for one phase (0 if never timed)."""
        return self._timer_calls.get(name, 0)

    def count(self, name: str) -> int:
        """Value of one counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def hist_stats(self) -> dict[str, dict[str, float]]:
        """Summary stats (count/total/mean/p50/p95/max) per histogram."""
        return {name: histogram_stats(values) for name, values in self._hists.items()}

    def reset(self) -> None:
        """Zero every timer, counter, histogram, and span."""
        self._timers.clear()
        self._timer_calls.clear()
        self._counters.clear()
        self._hists.clear()
        self._spans.clear()
        self._stack.clear()
        self._next_span = 1
        self._epoch = time.perf_counter()

    # ---- merge protocol ---------------------------------------------------

    def snapshot(self) -> ObsSnapshot:
        """A picklable copy of every observation (see :class:`ObsSnapshot`)."""
        return ObsSnapshot(
            timers=dict(self._timers),
            timer_calls=dict(self._timer_calls),
            counters=dict(self._counters),
            histograms={name: list(values) for name, values in self._hists.items()},
            spans=[
                SpanRecord(
                    span_id=s.span_id,
                    parent_id=s.parent_id,
                    name=s.name,
                    attributes=dict(s.attributes),
                    start=s.start,
                    duration=s.duration,
                )
                for s in self._spans
            ],
        )

    def merge(self, other: "ObsSnapshot | ObsRegistry") -> None:
        """Fold another registry's observations into this one.

        Timer seconds and counters add, call counts add, histograms
        concatenate (associative and commutative as multisets), and the
        other side's spans are appended with fresh ids — root spans of
        *other* are grafted under this registry's currently active span.
        Pool parents call this once per worker chunk, in ``pool.map``
        order, so repeated runs merge identically.
        """
        snap = other.snapshot() if isinstance(other, ObsRegistry) else other
        if not self.enabled:
            return
        for name, secs in snap.timers.items():
            self._timers[name] = self._timers.get(name, 0.0) + secs
        for name, calls in snap.timer_calls.items():
            self._timer_calls[name] = self._timer_calls.get(name, 0) + calls
        for name, value in snap.counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, values in snap.histograms.items():
            self._hists.setdefault(name, []).extend(values)
        if snap.spans:
            offset = self._next_span - 1
            graft_parent = self._stack[-1] if self._stack else None
            for s in snap.spans:
                self._spans.append(
                    SpanRecord(
                        span_id=s.span_id + offset,
                        parent_id=s.parent_id + offset if s.parent_id is not None else graft_parent,
                        name=s.name,
                        attributes=dict(s.attributes),
                        start=s.start,
                        duration=s.duration,
                    )
                )
            self._next_span += len(snap.spans)

    # ---- export -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary: timers, call counts, counters, histograms.

        This is the payload behind the CLI ``--stats-json`` flag; histogram
        stats carry per-item latency quantiles, and ``timer_calls`` makes
        call counts machine-readable (they used to live only in
        :meth:`report`'s text).
        """
        return {
            "format": "repro-obs-stats-v1",
            "timers": dict(sorted(self._timers.items())),
            "timer_calls": dict(sorted(self._timer_calls.items())),
            "counters": dict(sorted(self._counters.items())),
            "histograms": {name: histogram_stats(v) for name, v in sorted(self._hists.items())},
            "n_spans": len(self._spans),
        }

    def export_trace(self, path: str | Path, manifest: dict[str, Any] | None = None) -> Path:
        """Write the run as a JSONL trace file; returns the path.

        Line 1 is the ``manifest`` record (caller-supplied run identity:
        seed, scale, world digest, wall clock — see
        :meth:`~repro.analysis.experiments.ExperimentWorld.manifest`), then
        one ``span`` record per span in allocation order, then a single
        ``summary`` record with the flat timers/calls/counters/histogram
        stats.  ``python -m repro trace <file>`` renders it back.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({"type": "manifest", **(manifest or {})}, sort_keys=True)]
        lines.extend(json.dumps(s.to_dict(), sort_keys=True) for s in self._spans)
        summary = self.to_dict()
        lines.append(json.dumps({"type": "summary", **summary}, sort_keys=True))
        target.write_text("\n".join(lines) + "\n")
        return target

    def report(self) -> str:
        """Human-readable phase/counter table (histogram quantiles included)."""
        lines = []
        if self._timers:
            lines.append("phase timings:")
            for name in sorted(self._timers):
                line = (
                    f"  {name:>28s}: {self._timers[name]:9.3f}s"
                    f"  ({self._timer_calls[name]} calls)"
                )
                values = self._hists.get(name)
                if values and len(values) > 1:
                    stats = histogram_stats(values)
                    line += (
                        f"  p50={stats['p50'] * 1e3:.2f}ms"
                        f" p95={stats['p95'] * 1e3:.2f}ms"
                        f" max={stats['max'] * 1e3:.2f}ms"
                    )
                lines.append(line)
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name:>28s}: {self._counters[name]}")
        return "\n".join(lines) if lines else "(no observations recorded)"
