"""Observability: spans, wall-time phases, counters, and latency histograms.

One :class:`ObsRegistry` is threaded through the hot paths — feature
extraction (:class:`~repro.core.cache.PatchFeatureCache`), tokenization
(:class:`~repro.core.cache.TokenSequenceCache`), the incremental distance
engine (:class:`~repro.features.normalize.DistanceEngine`), the augmentation
loop, model training (:func:`~repro.ml.fit_many`,
:class:`~repro.ml.RandomForestClassifier`), and the linter
(:func:`~repro.staticcheck.lint_sources`) — so a CLI run or benchmark can
answer "where did the time go" without a profiler.

Three recording primitives build on each other:

* :meth:`ObsRegistry.timer` — a flat wall-time phase.  Each ``with`` body
  adds to the phase's total seconds and call count and appends one latency
  observation to the phase's histogram, so per-item phases (``extract``,
  ``tokenize``, ``lint``, ``rf_tree``) report p50/p95/max, not just sums.
* :meth:`ObsRegistry.add` — a monotonic integer counter.
* :meth:`ObsRegistry.span` — a *hierarchical* phase.  A span nests under
  the currently active span, carries arbitrary attributes
  (``obs.span("augment.round", round=3)``), records a node in the span
  tree for trace export, and still feeds the flat timer of the same name,
  so every ``timer``-based consumer keeps working when a call site is
  upgraded to a span.

**Cross-process merge protocol.**  Process-pool workers cannot write to the
parent's registry, so every chunked pool (feature cache, token cache,
``fit_many``, the random forest, ``lint_sources``) has its workers record
into a fresh local registry and pickle a :meth:`snapshot` back with each
chunk result; the parent folds them in with :meth:`merge` in deterministic
chunk order.  Merging adds timer seconds/calls and counters, concatenates
histogram observations, and grafts any worker spans under the parent's
active span — so serial and parallel runs report *identical* counters and
timer call counts (parallel runs used to silently drop worker-side
observations).  Merge is associative and commutative on counters and on
histogram multisets (property-tested in ``tests/test_obs_merge.py``).

**Export.**  :meth:`to_dict` is the machine-readable summary behind the CLI
``--stats-json`` flag; :meth:`export_trace` writes a JSONL trace (manifest
record, one record per span, summary record) that ``python -m repro trace``
renders back into a span tree (see :mod:`repro.trace`).

Phase timer names in use: ``extract``, ``extract_parallel``, ``distance``,
``search``, ``verify``, ``tokenize``, ``tokenize_parallel``, ``fit``,
``fit_parallel``, ``rf_tree``, ``lint``, ``lint_parallel``, ``gate``,
``delta``, ``world.shard``, ``world_build_parallel``.
Counter names in use: ``world_commits_attempted``,
``world_commits_produced``, ``world_commits_skipped_no_c_paths``,
``world_commits_skipped_exhausted``, ``vectors_extracted``, ``vector_cache_hits``,
``npz_vectors_loaded``, ``distance_cells_computed``,
``distance_cells_reused``, ``distance_full_recomputes``,
``distance_incremental_updates``, ``token_cache_hits``,
``token_cache_misses``, ``token_sequences_loaded``, ``fits_serial``,
``fits_parallel``, ``rf_trees_serial``, ``rf_trees_parallel``,
``files_linted``, ``lint_findings``, ``lint_<checker>`` (one per checker
id, dashes as underscores), ``variant_equiv_checks``,
``variant_equiv_failures``, ``delta_vectors``, ``delta_blob_cache_hits``,
``index.hit``, ``index.fallback`` (PatchDB queries served by the
posting-list planner vs. the scan path), ``render_cache.hit``,
``render_cache.miss`` (memoized record serializations),
``model_cache_hits``, ``model_cache_misses``, ``models_loaded``.
"""

from __future__ import annotations

import json
import math
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "ObsRegistry",
    "ObsSnapshot",
    "SpanRecord",
    "TraceContext",
    "activate_trace",
    "current_trace",
    "current_trace_site",
    "deactivate_trace",
    "histogram_stats",
    "new_trace_id",
    "trace_span",
]

#: Attribute value types that survive JSON round-trips unchanged.
_ATTR_TYPES = (str, int, float, bool, type(None))


def _clean_attributes(attributes: dict[str, Any]) -> dict[str, Any]:
    """Coerce non-JSON-safe attribute values to their ``repr`` in place."""
    for key, value in attributes.items():
        if not isinstance(value, _ATTR_TYPES):
            attributes[key] = repr(value)
    return attributes


@dataclass(slots=True)
class SpanRecord:
    """One node of the span tree.

    Attributes:
        span_id: registry-local id (1-based, allocation order).
        parent_id: enclosing span's id, or ``None`` for a root span.
        name: span name (dotted-phase convention, e.g. ``augment.round``).
        attributes: caller-supplied key/value context.
        start: seconds since the registry epoch when the span opened.
        duration: wall seconds the span was open (-1.0 while still open).
    """

    span_id: int
    parent_id: int | None
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    duration: float = -1.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``span`` record of a trace file)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attributes),
            "start": self.start,
            "duration": self.duration,
        }


@dataclass(slots=True)
class ObsSnapshot:
    """A picklable, mergeable copy of a registry's observations.

    This is what pool workers ship back to the parent: plain dicts and
    lists, no locks, no clocks.  ``spans`` uses the worker registry's local
    ids; :meth:`ObsRegistry.merge` remaps them into the receiving registry.
    """

    timers: dict[str, float] = field(default_factory=dict)
    timer_calls: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, list[float]] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    #: Exact per-histogram observation counts/sums.  Empty for unbounded
    #: registries (there ``len``/``sum`` of the raw values are already
    #: exact); bounded (windowed) registries ship these so merges preserve
    #: true ``count``/``total`` even though old observations were evicted.
    hist_counts: dict[str, int] = field(default_factory=dict)
    hist_totals: dict[str, float] = field(default_factory=dict)
    spans_dropped: int = 0

    def exact_hist_count(self, name: str) -> int:
        """True observation count for one histogram (eviction-proof)."""
        n = self.hist_counts.get(name)
        return n if n is not None else len(self.histograms.get(name, ()))

    def exact_hist_total(self, name: str) -> float:
        """True observation sum for one histogram (eviction-proof)."""
        t = self.hist_totals.get(name)
        return t if t is not None else sum(self.histograms.get(name, ()))


def histogram_stats(values: list[float]) -> dict[str, float]:
    """Summary stats of one latency histogram: count/total/mean/p50/p95/max.

    Percentiles use the nearest-rank method on the sorted observations, so
    every reported quantile is an actually-observed latency.
    """
    if not values:
        return {"count": 0, "total": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def rank(q: float) -> float:
        return ordered[max(0, math.ceil(q * n) - 1)]

    total = sum(ordered)
    return {
        "count": n,
        "total": total,
        "mean": total / n,
        "p50": rank(0.50),
        "p95": rank(0.95),
        "max": ordered[-1],
    }


class ObsRegistry:
    """Accumulates spans, named wall-time phases, counters, and histograms.

    Args:
        enabled: when False every recording primitive is a no-op that still
            runs its ``with`` body — the baseline the instrumentation
            overhead benchmark compares against.
        hist_window: when set, each histogram keeps only the most recent
            *hist_window* raw observations (a ring window for quantiles)
            while exact running ``count``/``total`` are preserved — the
            serve-mode bound that keeps week-long servers from leaking.
            ``None`` (the default, batch-run mode) keeps every observation,
            byte-identical to the pre-windowing behavior.
        span_cap: when set, at most *span_cap* span nodes are retained;
            further spans still time their bodies (the flat timer keeps
            counting) but record no tree node, counted in
            ``spans_dropped``.  ``None`` keeps every span.
    """

    def __init__(
        self,
        enabled: bool = True,
        hist_window: int | None = None,
        span_cap: int | None = None,
    ) -> None:
        self.enabled = enabled
        self._hist_window = hist_window
        self._span_cap = span_cap
        self._timers: dict[str, float] = {}
        self._timer_calls: dict[str, int] = {}
        self._counters: dict[str, int] = {}
        self._hists: dict[str, list[float]] = {}
        self._hist_counts: dict[str, int] = {}
        self._hist_totals: dict[str, float] = {}
        self._spans: list[SpanRecord] = []
        self._spans_dropped = 0
        self._stack: list[int] = []
        self._next_span = 1
        self._epoch = time.perf_counter()

    # ---- recording --------------------------------------------------------

    def _observe_hist(self, name: str, value: float) -> None:
        values = self._hists.setdefault(name, [])
        values.append(value)
        window = self._hist_window
        if window is not None:
            self._hist_counts[name] = self._hist_counts.get(name, 0) + 1
            self._hist_totals[name] = self._hist_totals.get(name, 0.0) + value
            if len(values) > window:
                del values[: len(values) - window]

    def _record(self, name: str, elapsed: float) -> None:
        self._timers[name] = self._timers.get(name, 0.0) + elapsed
        self._timer_calls[name] = self._timer_calls.get(name, 0) + 1
        self._observe_hist(name, elapsed)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under *name*.

        Feeds the flat phase total, the call count, and the phase's latency
        histogram; does not create a span node (per-item phases would drown
        the trace — use :meth:`span` for structural phases).
        """
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self._record(name, time.perf_counter() - start)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator["SpanRecord | None"]:
        """Open a hierarchical span named *name* for the ``with`` body.

        The span nests under the currently active span (spans opened inside
        the body nest under this one), carries *attributes* into the trace,
        and on close also feeds the flat timer of the same name, so any
        existing ``timer`` consumer sees the span as a normal phase.

        Yields the open :class:`SpanRecord` (or ``None`` when disabled) so
        callers can attach attributes discovered mid-span::

            with obs.span("augment.round", round=3) as sp:
                ...
                sp.attributes["verified"] = len(verified)
        """
        if not self.enabled:
            yield None
            return
        if self._span_cap is not None and len(self._spans) >= self._span_cap:
            # Span budget exhausted (serve mode): keep the flat timing,
            # drop the tree node so a long-running server stays bounded.
            self._spans_dropped += 1
            start = time.perf_counter()
            try:
                yield None
            finally:
                self._record(name, time.perf_counter() - start)
            return
        _clean_attributes(attributes)
        record = SpanRecord(
            span_id=self._next_span,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            attributes=attributes,
            start=time.perf_counter() - self._epoch,
        )
        self._next_span += 1
        self._spans.append(record)
        self._stack.append(record.span_id)
        start = time.perf_counter()
        try:
            yield record
        finally:
            elapsed = time.perf_counter() - start
            record.duration = elapsed
            self._stack.pop()
            self._record(name, elapsed)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Append one observation to histogram *name* (no timer bookkeeping)."""
        if not self.enabled:
            return
        self._observe_hist(name, value)

    # ---- read access ------------------------------------------------------

    @property
    def timers(self) -> dict[str, float]:
        """Accumulated seconds per phase (a copy)."""
        return dict(self._timers)

    @property
    def timer_calls(self) -> dict[str, int]:
        """Completed ``timer``/``span`` bodies per phase (a copy)."""
        return dict(self._timer_calls)

    @property
    def counters(self) -> dict[str, int]:
        """Counter values (a copy)."""
        return dict(self._counters)

    @property
    def histograms(self) -> dict[str, list[float]]:
        """Raw latency observations per phase (a copy)."""
        return {name: list(values) for name, values in self._hists.items()}

    @property
    def spans(self) -> list[SpanRecord]:
        """Recorded spans in allocation order (a shallow copy)."""
        return list(self._spans)

    def seconds(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never timed)."""
        return self._timers.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Completed timer/span bodies for one phase (0 if never timed)."""
        return self._timer_calls.get(name, 0)

    def count(self, name: str) -> int:
        """Value of one counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def hist_count(self, name: str) -> int:
        """Exact observation count of one histogram, eviction-proof."""
        n = self._hist_counts.get(name)
        return n if n is not None else len(self._hists.get(name, ()))

    def hist_total(self, name: str) -> float:
        """Exact observation sum of one histogram, eviction-proof."""
        t = self._hist_totals.get(name)
        return t if t is not None else sum(self._hists.get(name, ()))

    @property
    def spans_dropped(self) -> int:
        """Spans discarded by the ``span_cap`` bound (0 when uncapped)."""
        return self._spans_dropped

    def _one_hist_stats(self, name: str, values: list[float]) -> dict[str, float]:
        stats = histogram_stats(values)
        if self._hist_window is not None and name in self._hist_counts:
            # Quantiles come from the window; count/total/mean stay exact.
            n = self._hist_counts[name]
            total = self._hist_totals.get(name, 0.0)
            stats["count"] = n
            stats["total"] = total
            stats["mean"] = total / n if n else 0.0
        return stats

    def hist_stats(self) -> dict[str, dict[str, float]]:
        """Summary stats (count/total/mean/p50/p95/max) per histogram.

        For windowed registries the quantiles describe the retained window
        while ``count``/``total``/``mean`` stay exact over every
        observation ever made.
        """
        return {name: self._one_hist_stats(name, values) for name, values in self._hists.items()}

    def reset(self) -> None:
        """Zero every timer, counter, histogram, and span."""
        self._timers.clear()
        self._timer_calls.clear()
        self._counters.clear()
        self._hists.clear()
        self._hist_counts.clear()
        self._hist_totals.clear()
        self._spans.clear()
        self._spans_dropped = 0
        self._stack.clear()
        self._next_span = 1
        self._epoch = time.perf_counter()

    # ---- merge protocol ---------------------------------------------------

    def snapshot(self) -> ObsSnapshot:
        """A picklable copy of every observation (see :class:`ObsSnapshot`)."""
        return ObsSnapshot(
            timers=dict(self._timers),
            timer_calls=dict(self._timer_calls),
            counters=dict(self._counters),
            histograms={name: list(values) for name, values in self._hists.items()},
            spans=[
                SpanRecord(
                    span_id=s.span_id,
                    parent_id=s.parent_id,
                    name=s.name,
                    attributes=dict(s.attributes),
                    start=s.start,
                    duration=s.duration,
                )
                for s in self._spans
            ],
            hist_counts=dict(self._hist_counts),
            hist_totals=dict(self._hist_totals),
            spans_dropped=self._spans_dropped,
        )

    def merge(self, other: "ObsSnapshot | ObsRegistry") -> None:
        """Fold another registry's observations into this one.

        Timer seconds and counters add, call counts add, histograms
        concatenate (associative and commutative as multisets), and the
        other side's spans are appended with fresh ids — root spans of
        *other* are grafted under this registry's currently active span.
        Pool parents call this once per worker chunk, in ``pool.map``
        order, so repeated runs merge identically.
        """
        snap = other.snapshot() if isinstance(other, ObsRegistry) else other
        if not self.enabled:
            return
        for name, secs in snap.timers.items():
            self._timers[name] = self._timers.get(name, 0.0) + secs
        for name, calls in snap.timer_calls.items():
            self._timer_calls[name] = self._timer_calls.get(name, 0) + calls
        for name, value in snap.counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        window = self._hist_window
        for name, values in snap.histograms.items():
            target = self._hists.setdefault(name, [])
            target.extend(values)
            if window is not None:
                self._hist_counts[name] = (
                    self._hist_counts.get(name, 0) + snap.exact_hist_count(name)
                )
                self._hist_totals[name] = (
                    self._hist_totals.get(name, 0.0) + snap.exact_hist_total(name)
                )
                if len(target) > window:
                    del target[: len(target) - window]
        self._spans_dropped += snap.spans_dropped
        if snap.spans:
            offset = self._next_span - 1
            graft_parent = self._stack[-1] if self._stack else None
            for s in snap.spans:
                if self._span_cap is not None and len(self._spans) >= self._span_cap:
                    self._spans_dropped += 1
                    continue
                self._spans.append(
                    SpanRecord(
                        span_id=s.span_id + offset,
                        parent_id=s.parent_id + offset if s.parent_id is not None else graft_parent,
                        name=s.name,
                        attributes=dict(s.attributes),
                        start=s.start,
                        duration=s.duration,
                    )
                )
            self._next_span += len(snap.spans)

    # ---- export -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary: timers, call counts, counters, histograms.

        This is the payload behind the CLI ``--stats-json`` flag; histogram
        stats carry per-item latency quantiles, and ``timer_calls`` makes
        call counts machine-readable (they used to live only in
        :meth:`report`'s text).
        """
        out = {
            "format": "repro-obs-stats-v1",
            "timers": dict(sorted(self._timers.items())),
            "timer_calls": dict(sorted(self._timer_calls.items())),
            "counters": dict(sorted(self._counters.items())),
            "histograms": {
                name: self._one_hist_stats(name, v) for name, v in sorted(self._hists.items())
            },
            "n_spans": len(self._spans),
        }
        if self._span_cap is not None or self._hist_window is not None:
            # Only bounded (serve-mode) registries carry the drop counter;
            # batch-run payloads stay byte-identical to the unbounded era.
            out["spans_dropped"] = self._spans_dropped
        return out

    def export_trace(self, path: str | Path, manifest: dict[str, Any] | None = None) -> Path:
        """Write the run as a JSONL trace file; returns the path.

        Line 1 is the ``manifest`` record (caller-supplied run identity:
        seed, scale, world digest, wall clock — see
        :meth:`~repro.analysis.experiments.ExperimentWorld.manifest`), then
        one ``span`` record per span in allocation order, then a single
        ``summary`` record with the flat timers/calls/counters/histogram
        stats.  ``python -m repro trace <file>`` renders it back.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({"type": "manifest", **(manifest or {})}, sort_keys=True)]
        lines.extend(json.dumps(s.to_dict(), sort_keys=True) for s in self._spans)
        summary = self.to_dict()
        lines.append(json.dumps({"type": "summary", **summary}, sort_keys=True))
        target.write_text("\n".join(lines) + "\n")
        return target

    def report(self) -> str:
        """Human-readable phase/counter table (histogram quantiles included)."""
        lines = []
        if self._timers:
            lines.append("phase timings:")
            for name in sorted(self._timers):
                line = (
                    f"  {name:>28s}: {self._timers[name]:9.3f}s"
                    f"  ({self._timer_calls[name]} calls)"
                )
                values = self._hists.get(name)
                if values and len(values) > 1:
                    stats = histogram_stats(values)
                    line += (
                        f"  p50={stats['p50'] * 1e3:.2f}ms"
                        f" p95={stats['p95'] * 1e3:.2f}ms"
                        f" max={stats['max'] * 1e3:.2f}ms"
                    )
                lines.append(line)
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name:>28s}: {self._counters[name]}")
        return "\n".join(lines) if lines else "(no observations recorded)"


# ---------------------------------------------------------------------------
# Request-scoped tracing.
#
# A TraceContext is one request's private span tree: the HTTP layer creates
# (or adopts, via the X-Repro-Trace-Id header) one per request, activates it
# on the handler thread, and every instrumented layer underneath — the
# service methods, the posting-list index, the render cache, the model
# cache, the classify micro-batcher — attaches spans through the
# module-level ``trace_span`` helper without any plumbing through call
# signatures.  Propagation uses a ContextVar, so concurrent requests on
# different handler threads never see each other's traces; the batcher
# thread, which serves many traces at once, attaches spans explicitly via
# ``TraceContext.add_span`` using the site captured at submit time.
# ---------------------------------------------------------------------------


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4, no dashes)."""
    return uuid.uuid4().hex


class TraceContext:
    """One request's span tree, safe for cross-thread span attachment.

    Unlike :class:`ObsRegistry` spans (one global tree per run), a
    TraceContext is created per request, carries a ``trace_id``, and bounds
    itself: at most *max_spans* spans are kept, further ones are counted in
    :attr:`dropped`.  All mutation goes through one small lock, so a worker
    thread (the classify batcher) can attach spans to a trace owned by a
    handler thread.

    Args:
        trace_id: adopt this id (an ``X-Repro-Trace-Id`` header value);
            ``None`` generates one.
        max_spans: per-request span budget.
    """

    __slots__ = (
        "trace_id",
        "max_spans",
        "dropped",
        "started_unix",
        "_spans",
        "_lock",
        "_next",
        "_epoch",
    )

    def __init__(self, trace_id: str | None = None, max_spans: int = 128) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.max_spans = max_spans
        self.dropped = 0
        self.started_unix = time.time()
        self._spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._next = 1
        self._epoch = time.perf_counter()

    # ---- recording --------------------------------------------------------

    def start_span(
        self, name: str, parent_id: int | None = None, **attributes: Any
    ) -> SpanRecord | None:
        """Open a span; returns ``None`` when the span budget is exhausted."""
        start = time.perf_counter() - self._epoch
        _clean_attributes(attributes)
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return None
            record = SpanRecord(
                span_id=self._next,
                parent_id=parent_id,
                name=name,
                attributes=attributes,
                start=start,
            )
            self._next += 1
            self._spans.append(record)
        return record

    def end_span(self, record: SpanRecord) -> None:
        """Close an open span (sets its duration)."""
        record.duration = time.perf_counter() - self._epoch - record.start

    def add_span(
        self,
        name: str,
        parent_id: int | None,
        start_perf: float,
        duration: float,
        **attributes: Any,
    ) -> SpanRecord | None:
        """Attach an externally timed span (another thread's work).

        *start_perf* is an absolute ``time.perf_counter()`` reading; it is
        rebased onto this trace's epoch so the span lines up with the ones
        the request thread recorded.
        """
        _clean_attributes(attributes)
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return None
            record = SpanRecord(
                span_id=self._next,
                parent_id=parent_id,
                name=name,
                attributes=attributes,
                start=start_perf - self._epoch,
                duration=duration,
            )
            self._next += 1
            self._spans.append(record)
        return record

    # ---- read access ------------------------------------------------------

    @property
    def spans(self) -> list[SpanRecord]:
        """Recorded spans in allocation order (a shallow copy)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def duration_s(self) -> float:
        """Wall seconds from the trace epoch to the latest closed span end."""
        with self._lock:
            ends = [s.start + s.duration for s in self._spans if s.duration >= 0]
        return max(ends) if ends else 0.0

    def span_dicts(self, id_offset: int = 0) -> list[dict[str, Any]]:
        """JSON-ready span records, ids shifted by *id_offset* and every
        span stamped with this trace's id (the multi-trace export shape)."""
        out = []
        for s in self.spans:
            d = s.to_dict()
            d["id"] += id_offset
            if d["parent"] is not None:
                d["parent"] += id_offset
            d["trace_id"] = self.trace_id
            out.append(d)
        return out


#: The active (trace, parent span id) of the current execution context.
_TRACE_STATE: ContextVar = ContextVar("repro_trace_state", default=None)


def activate_trace(trace: TraceContext, parent_id: int | None = None):
    """Make *trace* the ambient trace of this context; returns a token for
    :func:`deactivate_trace`."""
    return _TRACE_STATE.set((trace, parent_id))


def deactivate_trace(token) -> None:
    """Restore the trace state captured by :func:`activate_trace`."""
    _TRACE_STATE.reset(token)


def current_trace() -> TraceContext | None:
    """The ambient trace of this execution context, if any."""
    state = _TRACE_STATE.get()
    return state[0] if state is not None else None


def current_trace_site() -> "tuple[TraceContext, int | None] | None":
    """The ambient ``(trace, active span id)`` pair — what a cross-thread
    handoff (e.g. the classify batcher) captures at submit time."""
    return _TRACE_STATE.get()


@contextmanager
def trace_span(name: str, **attributes: Any) -> Iterator[SpanRecord | None]:
    """Open a span on the ambient trace for the ``with`` body.

    A no-op (yielding ``None``) when no trace is active — hot paths like
    the posting-list index call this unconditionally and only pay a
    ContextVar read outside of traced requests — or when the trace's span
    budget is spent.
    """
    state = _TRACE_STATE.get()
    if state is None:
        yield None
        return
    trace, parent = state
    record = trace.start_span(name, parent, **attributes)
    if record is None:
        yield None
        return
    token = _TRACE_STATE.set((trace, record.span_id))
    try:
        yield record
    finally:
        _TRACE_STATE.reset(token)
        trace.end_span(record)
