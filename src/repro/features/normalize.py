"""Per-dimension max-abs weighting (§III-B-2).

The paper normalizes feature *j* of patch *i* as::

    a'_ij = a_ij * w_j,   w_j = 1 / max|a_j|

so every dimension lands in [-1, 1] while preserving the sign of net-value
features.  The maxima are computed over the *union* of the security and wild
sets so distances between the two sides are comparable.
"""

from __future__ import annotations

import numpy as np

from ..errors import FeatureError

__all__ = ["MaxAbsWeighter", "weighted_distance_matrix"]


class MaxAbsWeighter:
    """Fit per-column ``1/max|a_j|`` weights; apply them to matrices."""

    def __init__(self) -> None:
        self._weights: np.ndarray | None = None

    @property
    def weights(self) -> np.ndarray:
        """The fitted weight vector.

        Raises:
            FeatureError: if the weighter has not been fitted.
        """
        if self._weights is None:
            raise FeatureError("MaxAbsWeighter is not fitted")
        return self._weights

    def fit(self, *matrices: np.ndarray) -> "MaxAbsWeighter":
        """Fit weights over the row-union of the given matrices."""
        stack = [np.asarray(m, dtype=np.float64) for m in matrices if m is not None and len(m)]
        if not stack:
            raise FeatureError("cannot fit weighter on empty input")
        combined = np.vstack(stack)
        maxima = np.max(np.abs(combined), axis=0)
        # Constant-zero columns carry no information; weight 0 removes them
        # from the distance rather than dividing by zero.  Subnormal maxima
        # are treated the same — 1/subnormal overflows to inf and poisons
        # the distance matrix with NaNs.
        floor = np.finfo(np.float64).tiny
        usable = maxima > floor
        with np.errstate(divide="ignore"):
            weights = np.where(usable, 1.0 / np.where(usable, maxima, 1.0), 0.0)
        self._weights = weights
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply fitted weights to an ``(N, d)`` matrix."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.weights.shape[0]:
            raise FeatureError(
                f"matrix shape {matrix.shape} incompatible with {self.weights.shape[0]} weights"
            )
        return matrix * self.weights

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit on *matrix* alone and transform it."""
        return self.fit(matrix).transform(matrix)


def weighted_distance_matrix(security: np.ndarray, wild: np.ndarray) -> np.ndarray:
    """Build the paper's ``M×N`` weighted Euclidean distance matrix.

    Args:
        security: ``(M, d)`` feature matrix of verified security patches.
        wild: ``(N, d)`` feature matrix of unlabeled wild patches.

    Returns:
        ``D`` with ``D[m, n] = ||w ⊙ (security_m - wild_n)||₂``.
    """
    weighter = MaxAbsWeighter().fit(security, wild)
    s = weighter.transform(security)
    w = weighter.transform(wild)
    # ||a-b||² = ||a||² + ||b||² - 2 a·b, computed blockwise for memory.
    s_sq = np.sum(s * s, axis=1)[:, None]
    w_sq = np.sum(w * w, axis=1)[None, :]
    d_sq = s_sq + w_sq - 2.0 * (s @ w.T)
    np.maximum(d_sq, 0.0, out=d_sq)
    return np.sqrt(d_sq)
