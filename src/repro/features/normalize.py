"""Per-dimension max-abs weighting (§III-B-2).

The paper normalizes feature *j* of patch *i* as::

    a'_ij = a_ij * w_j,   w_j = 1 / max|a_j|

so every dimension lands in [-1, 1] while preserving the sign of net-value
features.  The maxima are computed over the *union* of the security and wild
sets so distances between the two sides are comparable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import FeatureError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..obs import ObsRegistry

__all__ = ["MaxAbsWeighter", "weighted_distance_matrix", "DistanceEngine"]


class MaxAbsWeighter:
    """Fit per-column ``1/max|a_j|`` weights; apply them to matrices."""

    def __init__(self) -> None:
        self._weights: np.ndarray | None = None

    @property
    def weights(self) -> np.ndarray:
        """The fitted weight vector.

        Raises:
            FeatureError: if the weighter has not been fitted.
        """
        if self._weights is None:
            raise FeatureError("MaxAbsWeighter is not fitted")
        return self._weights

    def fit(self, *matrices: np.ndarray) -> "MaxAbsWeighter":
        """Fit weights over the row-union of the given matrices."""
        stack = [np.asarray(m, dtype=np.float64) for m in matrices if m is not None and len(m)]
        if not stack:
            raise FeatureError("cannot fit weighter on empty input")
        combined = np.vstack(stack)
        return self.fit_maxima(np.max(np.abs(combined), axis=0))

    def fit_maxima(self, maxima: np.ndarray) -> "MaxAbsWeighter":
        """Fit from precomputed per-column max-abs values.

        ``max`` is exact in floating point, so callers that already track
        the union maxima (e.g. :class:`DistanceEngine`) get weights bitwise
        identical to :meth:`fit` over the underlying rows.
        """
        maxima = np.asarray(maxima, dtype=np.float64)
        # Constant-zero columns carry no information; weight 0 removes them
        # from the distance rather than dividing by zero.  Subnormal maxima
        # are treated the same — 1/subnormal overflows to inf and poisons
        # the distance matrix with NaNs.
        floor = np.finfo(np.float64).tiny
        usable = maxima > floor
        with np.errstate(divide="ignore"):
            weights = np.where(usable, 1.0 / np.where(usable, maxima, 1.0), 0.0)
        self._weights = weights
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply fitted weights to an ``(N, d)`` matrix."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.weights.shape[0]:
            raise FeatureError(
                f"matrix shape {matrix.shape} incompatible with {self.weights.shape[0]} weights"
            )
        return matrix * self.weights

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit on *matrix* alone and transform it."""
        return self.fit(matrix).transform(matrix)


def weighted_distance_matrix(security: np.ndarray, wild: np.ndarray) -> np.ndarray:
    """Build the paper's ``M×N`` weighted Euclidean distance matrix.

    Args:
        security: ``(M, d)`` feature matrix of verified security patches.
        wild: ``(N, d)`` feature matrix of unlabeled wild patches.

    Returns:
        ``D`` with ``D[m, n] = ||w ⊙ (security_m - wild_n)||₂``.
    """
    weighter = MaxAbsWeighter().fit(security, wild)
    s = weighter.transform(security)
    w = weighter.transform(wild)
    # ||a-b||² = ||a||² + ||b||² - 2 a·b, computed blockwise for memory.
    s_sq = np.sum(s * s, axis=1)[:, None]
    w_sq = np.sum(w * w, axis=1)[None, :]
    d_sq = s_sq + w_sq - 2.0 * (s @ w.T)
    np.maximum(d_sq, 0.0, out=d_sq)
    return np.sqrt(d_sq)


def _abs_maxima(*matrices: np.ndarray) -> np.ndarray:
    """Per-column max-abs over the row-union of non-empty matrices."""
    stack = [m for m in matrices if len(m)]
    if not stack:
        raise FeatureError("cannot compute maxima of empty input")
    return np.max(np.abs(np.vstack(stack)), axis=0)


class DistanceEngine:
    """Incrementally maintained weighted distance matrix for one search set.

    The augmentation loop (§III-B) reruns nearest link search over the same
    wild pool for several rounds; between rounds the security side only
    *gains* rows (newly verified patches) and the wild side only *loses*
    columns (reviewed candidates).  Rebuilding the full ``M×N`` matrix with
    :func:`weighted_distance_matrix` every round therefore redoes almost all
    of its work.  This engine fits the max-abs weights once per search set,
    then per round *appends* distance rows for the new security patches into
    a preallocated buffer and *masks* reviewed columns to ``+inf`` — no
    reallocation, no recomputation of surviving cells.

    Masking instead of deleting keeps column indices stable across rounds
    (callers map them straight back to the original pool) and is exactly
    equivalent for nearest link search: an all-``inf`` column is never the
    argmin while any live column remains, which the loop's ``M ≤ N_alive``
    precondition guarantees.

    Numerical equivalence to per-round full recomputes: the weights depend
    only on the per-column max-abs of the security ∪ live-wild union.  Every
    appended security row was previously a live wild column, so the union can
    only shrink — the maxima either stay put (all cached cells remain exact)
    or drop because a reviewed candidate held a column's maximum.  Each
    :meth:`update` keeps the live-union maxima exact with per-side running
    maxima (``O((k + |dropped|)·d)`` per round, plus a partial column rescan
    only when a dropped candidate attained some column's maximum) and, when
    any column's maximum moved by more than ``tolerance`` (relative), falls
    back to a full refit + recompute over the live columns.  With the default
    ``tolerance=0.0`` the live entries always match what a from-scratch
    :func:`weighted_distance_matrix` over the live pool would produce (up to
    float associativity, well below 1e-9); a positive tolerance trades that
    exactness for fewer full recomputes.
    """

    def __init__(self, tolerance: float = 0.0, obs: "ObsRegistry | None" = None) -> None:
        if tolerance < 0.0:
            raise FeatureError("tolerance must be >= 0")
        self.tolerance = tolerance
        self._obs = obs
        self._weighter: MaxAbsWeighter | None = None
        self._maxima: np.ndarray | None = None
        self._raw_security: np.ndarray | None = None  # (M, d), grows
        self._raw_wild: np.ndarray | None = None      # (N, d), fixed width
        self._weighted_wild: np.ndarray | None = None
        self._wild_sq: np.ndarray | None = None
        self._alive: np.ndarray | None = None         # (N,) bool column mask
        self._buffer: np.ndarray | None = None        # (capacity, N) distances
        self._scratch: np.ndarray | None = None       # (capacity, N) work area
        self._m = 0                                   # live rows in _buffer
        # Running per-column max-abs of each side, kept exact incrementally:
        # the security side only appends rows (its max only grows), the wild
        # side only loses rows.  ``_wild_att`` counts the live wild rows
        # attaining each column's max; a column rescans only when that count
        # hits zero (every holder was reviewed), not on every drop.
        self._sec_max: np.ndarray | None = None
        self._wild_max: np.ndarray | None = None
        self._wild_att: np.ndarray | None = None

    # ---- bookkeeping ------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self._obs is not None:
            self._obs.add(name, amount)

    @property
    def matrix(self) -> np.ndarray:
        """The current ``M×N`` distance matrix (masked columns are ``inf``).

        A view into the engine's buffer — treat it as read-only.

        Raises:
            FeatureError: before the first :meth:`reset`.
        """
        if self._buffer is None:
            raise FeatureError("DistanceEngine has no matrix yet; call reset()")
        return self._buffer[: self._m]

    @property
    def alive_columns(self) -> int:
        """Number of not-yet-masked wild columns."""
        if self._alive is None:
            raise FeatureError("DistanceEngine has no matrix yet; call reset()")
        return int(self._alive.sum())

    @property
    def shape(self) -> tuple[int, int]:
        """``(M, N)`` of the current matrix (N counts masked columns)."""
        return self.matrix.shape

    # ---- internals --------------------------------------------------------

    def _set_live_maxima(self) -> None:
        """Recompute both running maxima from scratch (reset/fallback path)."""
        assert self._raw_security is not None and self._raw_wild is not None
        assert self._alive is not None
        self._sec_max = np.max(np.abs(self._raw_security), axis=0)
        live = self._raw_wild if self._alive.all() else self._raw_wild[self._alive]
        live_abs = np.abs(live)
        self._wild_max = np.max(live_abs, axis=0)
        self._wild_att = np.count_nonzero(live_abs == self._wild_max, axis=0)
        self._maxima = np.maximum(self._sec_max, self._wild_max)

    def _distance_rows(self, security_rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Weighted distances from *security_rows* to every wild column.

        Written into *out* (a ``(k, N)`` buffer slice) with the same
        floating-point evaluation order as :func:`weighted_distance_matrix` —
        ``(s² + w²) - 2·(s·w)`` — so cached rows are bitwise identical to a
        from-scratch rebuild and exact ties (duplicate patches) break the
        same way in nearest link search.
        """
        assert self._weighter is not None
        assert self._weighted_wild is not None and self._wild_sq is not None
        assert self._scratch is not None
        s = self._weighter.transform(security_rows)
        s_sq = np.sum(s * s, axis=1)[:, None]
        norms = self._scratch[: len(s)]
        np.add(s_sq, self._wild_sq, out=norms)
        np.matmul(s, self._weighted_wild.T, out=out)
        out *= 2.0
        np.subtract(norms, out, out=out)
        np.maximum(out, 0.0, out=out)
        np.sqrt(out, out=out)
        return out

    def _ensure_capacity(self, rows: int) -> None:
        assert self._buffer is not None
        if rows <= self._buffer.shape[0]:
            return
        grown = np.empty((max(rows, 2 * self._buffer.shape[0]), self._buffer.shape[1]))
        grown[: self._m] = self._buffer[: self._m]
        self._buffer = grown
        self._scratch = np.empty_like(grown)

    def _recompute(self) -> np.ndarray:
        """Refit on the live union and rebuild every live cell."""
        assert self._raw_security is not None and self._raw_wild is not None
        assert self._alive is not None
        self._set_live_maxima()
        self._weighter = MaxAbsWeighter().fit_maxima(self._maxima)
        self._weighted_wild = self._weighter.transform(self._raw_wild)
        self._wild_sq = np.sum(self._weighted_wild * self._weighted_wild, axis=1)
        m = len(self._raw_security)
        if self._buffer is None:
            # Spare row capacity so appended rounds write in place; the
            # security side rarely more than doubles within one search set.
            capacity = 2 * m + 8
            self._buffer = np.empty((capacity, len(self._raw_wild)))
            self._scratch = np.empty_like(self._buffer)
        else:
            self._ensure_capacity(m)
        self._distance_rows(self._raw_security, out=self._buffer[:m])
        self._buffer[:m, ~self._alive] = np.inf
        self._m = m
        self._count("distance_full_recomputes")
        self._count("distance_cells_computed", m * self.alive_columns)
        return self.matrix

    # ---- the public API ---------------------------------------------------

    def reset(self, security: np.ndarray, wild: np.ndarray) -> np.ndarray:
        """Fit weights on ``security ∪ wild`` and compute the full matrix."""
        security = np.asarray(security, dtype=np.float64)
        wild = np.asarray(wild, dtype=np.float64)
        if not len(security) or not len(wild):
            raise FeatureError(
                f"DistanceEngine.reset needs non-empty sides, got {security.shape} x {wild.shape}"
            )
        self._raw_security = security.copy()
        self._raw_wild = wild.copy()
        self._alive = np.ones(len(wild), dtype=bool)
        self._buffer = None
        return self._recompute()

    def update(
        self,
        new_security: np.ndarray | None = None,
        drop_wild: Sequence[int] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply one round's delta and return the new matrix.

        Args:
            new_security: ``(k, d)`` rows to append to the security side
                (the round's newly verified patches), or ``None``/empty.
            drop_wild: column indices — in the *original* wild pool's
                indexing, which never shifts — to mask out (the round's
                reviewed candidates).

        Returns:
            The matrix over all security rows so far, with every reviewed
            column at ``inf``; live cells are numerically equivalent to a
            from-scratch rebuild against the live pool (see class docstring).
        """
        if self._buffer is None or self._weighter is None:
            raise FeatureError("DistanceEngine.update called before reset()")
        assert self._raw_security is not None and self._raw_wild is not None
        assert self._alive is not None and self._maxima is not None
        assert self._sec_max is not None and self._wild_max is not None

        if drop_wild is not None and len(drop_wild):
            drop = np.asarray(drop_wild, dtype=np.int64)
            self._alive[drop] = False
            self._buffer[: self._m, drop] = np.inf
            if not self.alive_columns:
                raise FeatureError("DistanceEngine.update masked out every wild column")
            # A dropped row can only lower a column's live maximum if it was
            # that column's *last* attainer; track attainer counts and rescan
            # only the columns whose count reaches zero.
            assert self._wild_att is not None
            abs_dropped = np.abs(self._raw_wild[drop])
            self._wild_att -= np.count_nonzero(abs_dropped == self._wild_max, axis=0)
            stale = np.flatnonzero(self._wild_att <= 0)
            if len(stale):
                alive_idx = np.flatnonzero(self._alive)
                live_abs = np.abs(self._raw_wild[np.ix_(alive_idx, stale)])
                self._wild_max[stale] = np.max(live_abs, axis=0)
                self._wild_att[stale] = np.count_nonzero(
                    live_abs == self._wild_max[stale], axis=0
                )
        if new_security is not None and len(new_security):
            new_rows = np.asarray(new_security, dtype=np.float64)
            self._raw_security = np.vstack([self._raw_security, new_rows])
            self._sec_max = np.maximum(self._sec_max, np.max(np.abs(new_rows), axis=0))
        else:
            new_rows = None

        maxima = np.maximum(self._sec_max, self._wild_max)
        floor = np.finfo(np.float64).tiny
        drifted = np.abs(maxima - self._maxima) > self.tolerance * np.maximum(
            self._maxima, floor
        )
        if np.any(drifted):
            # A reviewed candidate held some column's max-abs: the fitted
            # weights are stale, and every cached cell would come out
            # different under a per-round refit — rebuild from scratch.
            return self._recompute()

        reused = self._m * self.alive_columns
        if new_rows is not None:
            self._ensure_capacity(self._m + len(new_rows))
            block = self._buffer[self._m : self._m + len(new_rows)]
            self._distance_rows(new_rows, out=block)
            block[:, ~self._alive] = np.inf
            self._m += len(new_rows)
            self._count("distance_cells_computed", len(new_rows) * self.alive_columns)
        self._count("distance_cells_reused", reused)
        self._count("distance_incremental_updates")
        return self.matrix
