"""The 60-dimensional syntactic feature space of Table I.

Extraction (:func:`extract_features`), per-dimension max-abs weighting
(:class:`MaxAbsWeighter`), the weighted Euclidean distance matrix used by
nearest link search, and the Levenshtein primitives for features 49-54.
"""

from .extractor import FeatureExtractor, RepoContext, extract_feature_matrix, extract_features
from .levenshtein import levenshtein, normalized_levenshtein
from .normalize import DistanceEngine, MaxAbsWeighter, weighted_distance_matrix
from .vector import FEATURE_COUNT, FEATURE_NAMES, as_matrix, feature_index

__all__ = [
    "DistanceEngine",
    "FEATURE_COUNT",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "MaxAbsWeighter",
    "RepoContext",
    "as_matrix",
    "extract_feature_matrix",
    "extract_features",
    "feature_index",
    "levenshtein",
    "normalized_levenshtein",
    "weighted_distance_matrix",
]
