"""The 60-dimensional syntactic feature extractor (Table I).

``extract_features`` maps a :class:`~repro.patch.model.Patch` to a NumPy
vector laid out per :data:`~repro.features.vector.FEATURE_NAMES`.  The
affected-range percentages (features 58/60) need repository context — how
many files and functions the repository has — supplied via
:class:`RepoContext`; without context they fall back to percentages within
the patch itself, which keeps the features well-defined for stand-alone
``.patch`` files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lang.abstraction import abstract_token_texts
from ..lang.metrics import FragmentCounts, count_lines
from ..patch.model import Hunk, Patch
from .levenshtein import levenshtein
from .vector import FEATURE_COUNT, feature_index
from typing import Iterable, Sequence

__all__ = ["RepoContext", "extract_features", "extract_feature_matrix", "FeatureExtractor"]


@dataclass(frozen=True, slots=True)
class RepoContext:
    """Repository-level denominators for the affected-range features.

    Attributes:
        total_files: number of files in the repository snapshot.
        total_functions: number of function definitions in the repository.
    """

    total_files: int
    total_functions: int


def extract_features(patch: Patch, context: RepoContext | None = None) -> np.ndarray:
    """Extract the Table I feature vector for one patch."""
    return FeatureExtractor(context).extract(patch)


def extract_feature_matrix(
    patches: Sequence[Patch], context: RepoContext | None = None
) -> np.ndarray:
    """Extract features for many patches into an ``(N, 60)`` matrix."""
    extractor = FeatureExtractor(context)
    if not patches:
        return np.zeros((0, FEATURE_COUNT), dtype=np.float64)
    return np.vstack([extractor.extract(p) for p in patches])


class FeatureExtractor:
    """Reusable extractor bound to optional repository context."""

    def __init__(self, context: RepoContext | None = None) -> None:
        self._context = context

    def extract(self, patch: Patch) -> np.ndarray:
        """Compute the 60-dimensional vector for *patch*."""
        vec = np.zeros(FEATURE_COUNT, dtype=np.float64)
        hunks = patch.hunks
        added_lines = patch.added_lines()
        removed_lines = patch.removed_lines()

        set_ = self._set(vec)
        set_("changed_lines", len(added_lines) + len(removed_lines))
        set_("hunks", len(hunks))
        self._quad(vec, "lines", len(added_lines), len(removed_lines))
        self._quad(
            vec,
            "characters",
            sum(len(t) for t in added_lines),
            sum(len(t) for t in removed_lines),
        )

        add_counts = count_lines(added_lines)
        rem_counts = count_lines(removed_lines)
        for prefix, attr in (
            ("if_statements", "if_statements"),
            ("loops", "loops"),
            ("function_calls", "function_calls"),
            ("arithmetic_operators", "arithmetic_operators"),
            ("relational_operators", "relational_operators"),
            ("logical_operators", "logical_operators"),
            ("bitwise_operators", "bitwise_operators"),
            ("memory_operators", "memory_operators"),
        ):
            self._quad(vec, prefix, getattr(add_counts, attr), getattr(rem_counts, attr))
        self._quad(vec, "variables", add_counts.variable_count, rem_counts.variable_count)

        functions = self._modified_functions(patch, add_counts, rem_counts)
        set_("total_modified_functions", len(functions))
        set_(
            "net_modified_functions",
            self._count_defs(added_lines) - self._count_defs(removed_lines),
        )

        self._hunk_distances(vec, hunks)

        affected_files = len(patch.files)
        affected_functions = len(functions)
        set_("affected_files", affected_files)
        set_("affected_functions", affected_functions)
        if self._context is not None and self._context.total_files > 0:
            set_("affected_files_pct", affected_files / self._context.total_files)
        else:
            set_("affected_files_pct", 1.0 if affected_files else 0.0)
        if self._context is not None and self._context.total_functions > 0:
            set_("affected_functions_pct", affected_functions / self._context.total_functions)
        else:
            # Fallback: functions touched per touched file.
            set_("affected_functions_pct", affected_functions / affected_files if affected_files else 0.0)
        return vec

    # ---- helpers ---------------------------------------------------------

    @staticmethod
    def _set(vec: np.ndarray):
        def setter(name: str, value: float) -> None:
            vec[feature_index(name)] = float(value)

        return setter

    @staticmethod
    def _quad(vec: np.ndarray, prefix: str, added: float, removed: float) -> None:
        """Fill an added/removed/total/net quadruple."""
        vec[feature_index(f"added_{prefix}")] = float(added)
        vec[feature_index(f"removed_{prefix}")] = float(removed)
        vec[feature_index(f"total_{prefix}")] = float(added + removed)
        vec[feature_index(f"net_{prefix}")] = float(added - removed)

    @staticmethod
    def _modified_functions(
        patch: Patch, add_counts: FragmentCounts, rem_counts: FragmentCounts
    ) -> set[str]:
        """Distinct functions a patch modifies.

        The hunk section heading (``@@ ... @@ int foo(...)``) identifies the
        enclosing function the way ``git diff`` reports it; hunks without a
        heading fall back to a per-file anonymous bucket.
        """
        names: set[str] = set()
        for fdiff in patch.files:
            for hunk in fdiff.hunks:
                if hunk.section:
                    names.add(f"{fdiff.path}:{_heading_name(hunk.section)}")
                else:
                    names.add(f"{fdiff.path}:@{hunk.old_start // 200}")
        return names

    @staticmethod
    def _count_defs(lines: list[str]) -> int:
        """Count function-definition-looking lines in a fragment."""
        count = 0
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith(("//", "/*", "*", "#")):
                continue
            if (
                "(" in stripped
                and not stripped.endswith(";")
                and not stripped[0].isspace()
                and line
                and not line[0].isspace()
                and ("{" in stripped or stripped.endswith(")"))
                and not stripped.startswith(("if", "for", "while", "switch", "return", "else"))
            ):
                count += 1
        return count

    def _hunk_distances(self, vec: np.ndarray, hunks: tuple[Hunk, ...]) -> None:
        """Features 49-56: per-hunk Levenshtein stats and same-hunk counts."""
        raw: list[float] = []
        abstracted: list[float] = []
        same_raw = same_abs = 0
        for hunk in hunks:
            rem_text = "\n".join(hunk.removed)
            add_text = "\n".join(hunk.added)
            raw.append(float(levenshtein(rem_text, add_text)))
            rem_abs = abstract_token_texts(rem_text)
            add_abs = abstract_token_texts(add_text)
            abstracted.append(float(levenshtein(rem_abs, add_abs)))
            if _normalized_lines(hunk.removed) == _normalized_lines(hunk.added):
                same_raw += 1
            if rem_abs == add_abs:
                same_abs += 1
        set_ = self._set(vec)
        for prefix, values in (("raw", raw), ("abs", abstracted)):
            if values:
                set_(f"lev_mean_{prefix}", float(np.mean(values)))
                set_(f"lev_min_{prefix}", float(np.min(values)))
                set_(f"lev_max_{prefix}", float(np.max(values)))
        set_("same_hunks_raw", same_raw)
        set_("same_hunks_abs", same_abs)


def _heading_name(section: str) -> str:
    """Extract the function name from a hunk section heading."""
    head = section.split("(", 1)[0].strip()
    return head.rsplit(" ", 1)[-1].lstrip("*") if head else section


def _normalized_lines(lines: Iterable[str]) -> list[str]:
    """Whitespace-normalized line texts for same-hunk comparison."""
    return [" ".join(t.split()) for t in lines if t.strip()]
