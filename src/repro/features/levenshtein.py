"""Levenshtein edit distance over characters or token sequences.

Used by features 49-54 of Table I: per-hunk edit distance between the
removed and added sides, before and after token abstraction.  The DP is the
classic two-row formulation; inputs may be strings (character distance) or
lists of token strings (token distance).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["levenshtein", "normalized_levenshtein"]

#: Inputs longer than this are truncated — enormous hunks (vendored files,
#: generated code) would otherwise dominate extraction time while adding no
#: discriminative signal beyond "very large".
_MAX_LEN = 2000


def levenshtein(a: Sequence, b: Sequence, max_len: int = _MAX_LEN) -> int:
    """Edit distance between sequences *a* and *b*.

    Equal inputs return 0 immediately, and a shared prefix/suffix is
    stripped before the DP — both standard identities that leave every
    distance unchanged while skipping most of the quadratic work on the
    near-identical hunk sides that dominate real diffs.

    Args:
        a, b: strings or sequences of hashable items.
        max_len: truncation bound applied to both inputs.

    Returns:
        The minimum number of insertions, deletions, and substitutions.
    """
    a = a[:max_len]
    b = b[:max_len]
    if a == b:
        return 0
    # Strip the common prefix and suffix: neither contributes edits.
    lo, hi_a, hi_b = 0, len(a), len(b)
    while lo < hi_a and lo < hi_b and a[lo] == b[lo]:
        lo += 1
    while hi_a > lo and hi_b > lo and a[hi_a - 1] == b[hi_b - 1]:
        hi_a -= 1
        hi_b -= 1
    a = a[lo:hi_a]
    b = b[lo:hi_b]
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # keep the inner row short
    prev = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        curr = [i] + [0] * len(b)
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            curr[j] = min(prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost)
        prev = curr
    return prev[-1]


def normalized_levenshtein(a: Sequence, b: Sequence) -> float:
    """Edit distance scaled to [0, 1] by the longer input's length."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / min(longest, _MAX_LEN)
