"""Names and layout of the 60-dimensional feature space (Table I).

The order below is the canonical column order of every feature matrix in
this package.  Groups:

* 1-10   basic text-level patch features,
* 11-56  language-dependent features,
* 57-60  affected-range features.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FEATURE_NAMES", "FEATURE_COUNT", "feature_index", "as_matrix"]


def _adds(prefix: str) -> tuple[str, ...]:
    """The added/removed/total/net quadruple for one construct."""
    return (
        f"added_{prefix}",
        f"removed_{prefix}",
        f"total_{prefix}",
        f"net_{prefix}",
    )


FEATURE_NAMES: tuple[str, ...] = (
    # 1-2
    "changed_lines",
    "hunks",
    # 3-6
    *_adds("lines"),
    # 7-10
    *_adds("characters"),
    # 11-14
    *_adds("if_statements"),
    # 15-18
    *_adds("loops"),
    # 19-22
    *_adds("function_calls"),
    # 23-26
    *_adds("arithmetic_operators"),
    # 27-30
    *_adds("relational_operators"),
    # 31-34
    *_adds("logical_operators"),
    # 35-38
    *_adds("bitwise_operators"),
    # 39-42
    *_adds("memory_operators"),
    # 43-46
    *_adds("variables"),
    # 47-48
    "total_modified_functions",
    "net_modified_functions",
    # 49-51 (before token abstraction)
    "lev_mean_raw",
    "lev_min_raw",
    "lev_max_raw",
    # 52-54 (after token abstraction)
    "lev_mean_abs",
    "lev_min_abs",
    "lev_max_abs",
    # 55-56
    "same_hunks_raw",
    "same_hunks_abs",
    # 57-60
    "affected_files",
    "affected_files_pct",
    "affected_functions",
    "affected_functions_pct",
)

FEATURE_COUNT: int = len(FEATURE_NAMES)
assert FEATURE_COUNT == 60, f"Table I defines 60 features, got {FEATURE_COUNT}"

_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


def feature_index(name: str) -> int:
    """Column index of a feature by name.

    Raises:
        KeyError: if *name* is not one of :data:`FEATURE_NAMES`.
    """
    return _INDEX[name]


def as_matrix(rows: list[np.ndarray]) -> np.ndarray:
    """Stack per-patch feature vectors into an ``(N, 60)`` float matrix."""
    if not rows:
        return np.zeros((0, FEATURE_COUNT), dtype=np.float64)
    return np.vstack([np.asarray(r, dtype=np.float64) for r in rows])
