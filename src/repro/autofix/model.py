"""Data model of the find→patch→verify loop: plants, outcomes, the report.

Everything is flat and JSON-friendly, mirroring the lint report: the CI job
consumes the manifest as an artifact, the CLI renders the same object as
text, and tests compare serial and parallel runs by their serialized form.
Per-outcome wall times (``elapsed_ms``) deliberately stay OUT of the
manifest — they are the one nondeterministic field, and excluding them
makes a serial run and a ``--workers N`` run byte-identical.  Timings ride
in the per-patch artifact files instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import AutofixError

__all__ = [
    "MANIFEST_FORMAT",
    "GATE_NAMES",
    "FlawPlant",
    "RepairOutcome",
    "AutofixReport",
]

#: Manifest format tag; bumped when the JSON layout changes.
MANIFEST_FORMAT = "repro-autofix-manifest-v1"

#: Verifier gates in evaluation order; a candidate is accepted only when
#: every gate holds.
GATE_NAMES = ("parse", "cfg", "lint", "dead_stores", "oracle")


@dataclass(frozen=True, slots=True)
class FlawPlant:
    """One flaw deliberately introduced into one corpus file.

    Attributes:
        path: world-namespaced file path (``slug/path``).
        kind: plant kind — a checker id (payload plant) or ``variant:N``
            (Fig. 5 scaffold plant).
        checker: the checker expected to find the plant.
        insert_line: 1-based line just above the inserted block.
        n_lines: inserted line count.
        span_start/span_end: 1-based inclusive line range attributable to
            the plant in the mutated text (for variant plants this includes
            the rewritten ``if`` header below the inserted scaffolding).
        marker: token whose absence is the oracle's ground truth for
            "flaw removed".
    """

    path: str
    kind: str
    checker: str
    insert_line: int
    n_lines: int
    span_start: int
    span_end: int
    marker: str

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "kind": self.kind,
            "checker": self.checker,
            "insert_line": self.insert_line,
            "n_lines": self.n_lines,
            "span_start": self.span_start,
            "span_end": self.span_end,
            "marker": self.marker,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlawPlant":
        """Inverse of :meth:`to_dict`."""
        return cls(**{k: data[k] for k in cls.__dataclass_fields__})


@dataclass(frozen=True, slots=True)
class RepairOutcome:
    """The full find→patch→verify trajectory of one plant.

    Attributes:
        plant: what was planted where.
        planted: the plant applied (False when the file had no viable
            host site; such files contribute to no statistic).
        found: the expected checker fired inside the plant span.
        finding_id: stable id of the matched finding ('' when not found).
        false_positives: baseline-subtracted findings OUTSIDE the plant
            span, as (checker, line) pairs — the finder's FP side (new
            findings inside the span are attributed to the plant itself).
        n_candidates: candidate repairs the patcher proposed.
        accepted: a candidate passed every verifier gate.
        candidate_index: which candidate was accepted (-1 when none).
        gates: per-gate verdicts of the accepted (or last-tried) candidate.
        crashed: the verifier raised on some candidate (counts toward the
            CI zero-crash gate; never counts as accepted).
        diff: unified diff of planted → accepted text ('' when rejected).
        elapsed_ms: wall time for this plant (artifact-only; excluded from
            the manifest for byte-identical serial/parallel reports).
    """

    plant: FlawPlant
    planted: bool = True
    found: bool = False
    finding_id: str = ""
    false_positives: tuple[tuple[str, int], ...] = ()
    n_candidates: int = 0
    accepted: bool = False
    candidate_index: int = -1
    gates: dict = field(default_factory=dict)
    crashed: bool = False
    diff: str = ""
    elapsed_ms: float = 0.0

    def to_dict(self, include_timings: bool = False) -> dict:
        """JSON-ready representation (timings only on request)."""
        out = {
            "plant": self.plant.to_dict(),
            "planted": self.planted,
            "found": self.found,
            "finding_id": self.finding_id,
            "false_positives": [[c, line] for c, line in self.false_positives],
            "n_candidates": self.n_candidates,
            "accepted": self.accepted,
            "candidate_index": self.candidate_index,
            "gates": dict(self.gates),
            "crashed": self.crashed,
            "diff": self.diff,
        }
        if include_timings:
            out["elapsed_ms"] = self.elapsed_ms
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RepairOutcome":
        """Inverse of :meth:`to_dict`."""
        return cls(
            plant=FlawPlant.from_dict(data["plant"]),
            planted=bool(data.get("planted", True)),
            found=bool(data["found"]),
            finding_id=data.get("finding_id", ""),
            false_positives=tuple(
                (c, int(line)) for c, line in data.get("false_positives", [])
            ),
            n_candidates=int(data.get("n_candidates", 0)),
            accepted=bool(data["accepted"]),
            candidate_index=int(data.get("candidate_index", -1)),
            gates=dict(data.get("gates", {})),
            crashed=bool(data.get("crashed", False)),
            diff=data.get("diff", ""),
            elapsed_ms=float(data.get("elapsed_ms", 0.0)),
        )


@dataclass(slots=True)
class AutofixReport:
    """The aggregate result of one autofix run."""

    outcomes: list[RepairOutcome] = field(default_factory=list)
    config: dict = field(default_factory=dict)

    # ---- views --------------------------------------------------------

    @property
    def plants_applied(self) -> int:
        """Files where a flaw was actually planted."""
        return sum(1 for o in self.outcomes if o.planted)

    @property
    def found(self) -> int:
        """Plants the finder detected."""
        return sum(1 for o in self.outcomes if o.found)

    @property
    def accepted(self) -> int:
        """Plants whose repair passed every verifier gate."""
        return sum(1 for o in self.outcomes if o.accepted)

    @property
    def verifier_crashes(self) -> int:
        """Plants where verifying some candidate raised."""
        return sum(1 for o in self.outcomes if o.crashed)

    @property
    def repair_rate(self) -> float:
        """Verified repairs per applied plant (0.0 when nothing planted)."""
        applied = self.plants_applied
        return self.accepted / applied if applied else 0.0

    def finder_scores(self) -> dict[str, dict]:
        """Per-checker find precision/recall against the planted flaws.

        TP: the plant's checker fired inside the plant span.  FN: it did
        not.  FP: any baseline-subtracted finding outside its plant's
        attribution, charged to the checker that produced it.
        """
        tp: dict[str, int] = {}
        fp: dict[str, int] = {}
        fn: dict[str, int] = {}
        for o in self.outcomes:
            if not o.planted:
                continue
            bucket = tp if o.found else fn
            bucket[o.plant.checker] = bucket.get(o.plant.checker, 0) + 1
            for checker, _line in o.false_positives:
                fp[checker] = fp.get(checker, 0) + 1
        out: dict[str, dict] = {}
        for checker in sorted(set(tp) | set(fp) | set(fn)):
            t, f, n = tp.get(checker, 0), fp.get(checker, 0), fn.get(checker, 0)
            out[checker] = {
                "tp": t,
                "fp": f,
                "fn": n,
                "precision": t / (t + f) if (t + f) else 1.0,
                "recall": t / (t + n) if (t + n) else 1.0,
            }
        return out

    def summary(self) -> dict:
        """Headline numbers (also embedded in the manifest)."""
        return {
            "files_considered": len(self.outcomes),
            "plants_applied": self.plants_applied,
            "found": self.found,
            "accepted": self.accepted,
            "repair_rate": round(self.repair_rate, 6),
            "verifier_crashes": self.verifier_crashes,
            "finder": self.finder_scores(),
        }

    # ---- rendering ----------------------------------------------------

    def render_text(self) -> str:
        """Human-readable run summary: per-checker table + headline."""
        s = self.summary()
        lines = ["per-checker find precision/recall (vs planted flaws):"]
        for checker, sc in s["finder"].items():
            lines.append(
                f"  {checker:>18s}: P={sc['precision']:.2f} R={sc['recall']:.2f} "
                f"(tp={sc['tp']} fp={sc['fp']} fn={sc['fn']})"
            )
        lines.append(
            f"{s['plants_applied']} plants ({s['files_considered']} files), "
            f"{s['found']} found, {s['accepted']} verified repairs "
            f"(repair rate {s['repair_rate']:.1%}), "
            f"{s['verifier_crashes']} verifier crashes"
        )
        return "\n".join(lines)

    # ---- persistence --------------------------------------------------

    def to_json(self) -> str:
        """Serialize the manifest (config + summary + timing-free outcomes)."""
        return json.dumps(
            {
                "format": MANIFEST_FORMAT,
                "config": dict(self.config),
                "summary": self.summary(),
                "outcomes": [o.to_dict() for o in self.outcomes],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "AutofixReport":
        """Parse a manifest produced by :meth:`to_json`.

        Raises:
            AutofixError: when the payload is not an autofix manifest.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AutofixError(f"invalid autofix manifest JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
            raise AutofixError("not a repro autofix manifest")
        return cls(
            outcomes=[RepairOutcome.from_dict(o) for o in data["outcomes"]],
            config=dict(data.get("config", {})),
        )
