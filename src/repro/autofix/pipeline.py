"""The closed loop: plant a flaw, find it, patch it, verify the patch.

Per file the pipeline (1) **plants** one deterministic flaw — a checker
payload from :mod:`repro.staticcheck.seeding` or a Fig. 5 scaffold from
:mod:`repro.synthesis.variants` — so ground truth is known exactly;
(2) **finds** it with the checker suite, scoring per-checker precision and
recall by subtracting the file's shift-adjusted pre-plant baseline;
(3) **patches** it by inverting what the finding describes — descaffolding
via :func:`repro.synthesis.repair.repair_all` for scaffold findings, line
deletion around the finding for payload findings; (4) **verifies** each
candidate behind five gates (parse, CFG-signature equality with the
pre-plant original, no new lint findings, no new dead stores, oracle panel
re-labels non-vulnerable) and accepts the first candidate passing all five.

The loop is *finder-driven*: a plant the finder misses is never repaired,
so the verified repair rate compounds finder recall with patcher/verifier
soundness — exactly the quantity the CI gate bounds.

Everything is deterministic per (path, kind): scaffold suffixes and oracle
draws are derived from hashes of the path, so a serial run and a
``--workers N`` run produce byte-identical manifests (the chunked pool
mirrors :func:`repro.staticcheck.analyzer.lint_sources` — worker-local obs
snapshots merged in chunk order, outcomes re-sorted by path).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import time
from dataclasses import dataclass

from ..errors import AutofixError, ReproError
from ..lang.ast_nodes import IfStmt, walk
from ..lang.parser import parse_translation_unit
from ..obs import ObsRegistry
from ..staticcheck.analyzer import CODE_SUFFIXES, analyze_source
from ..staticcheck.checkers import Checker, make_checkers
from ..staticcheck.dataflow import FunctionFlow
from ..staticcheck.equivalence import cfg_signature
from ..staticcheck.model import LintReport, shifted_finding_ids
from ..staticcheck.seeding import PAYLOAD_MARKERS, SEEDABLE_CHECKERS, plant_violation
from ..synthesis.repair import repair_all
from ..synthesis.variants import VARIANTS, apply_variant_text
from .model import GATE_NAMES, AutofixReport, FlawPlant, RepairOutcome

__all__ = ["DEFAULT_KINDS", "AutofixConfig", "AutofixOracle", "run_autofix", "autofix_world"]

#: Plant kinds cycled over the files of a run: every seedable checker
#: payload plus every Fig. 5 variant.
DEFAULT_KINDS: tuple[str, ...] = tuple(SEEDABLE_CHECKERS) + tuple(
    f"variant:{v.variant_id}" for v in VARIANTS
)


@dataclass(frozen=True, slots=True)
class AutofixConfig:
    """Knobs of one autofix run (picklable: rides to pool workers whole).

    Attributes:
        kinds: plant kinds cycled across files in sorted-path order.
        dataflow: run the finder's checkers in dataflow mode.
        n_annotators: oracle panel size (odd).
        annotator_error_rate: per-annotator label-flip probability.
        seed: stream seed for oracle draws (per-plant streams are derived
            from it and the plant's path, so worker order cannot matter).
    """

    kinds: tuple[str, ...] = DEFAULT_KINDS
    dataflow: bool = True
    n_annotators: int = 3
    annotator_error_rate: float = 0.0
    seed: int = 2021

    def validate(self) -> None:
        """Sanity-check the configuration.

        Raises:
            AutofixError: on out-of-range values or unknown plant kinds.
        """
        if not self.kinds:
            raise AutofixError("at least one plant kind is required")
        for kind in self.kinds:
            if kind in SEEDABLE_CHECKERS:
                continue
            if kind.startswith("variant:"):
                tail = kind.split(":", 1)[1]
                if tail.isdigit() and 1 <= int(tail) <= len(VARIANTS):
                    continue
            raise AutofixError(
                f"unknown plant kind {kind!r} (checker ids: "
                f"{', '.join(SEEDABLE_CHECKERS)}; variants: variant:1..variant:{len(VARIANTS)})"
            )
        if self.n_annotators < 1 or self.n_annotators % 2 == 0:
            raise AutofixError("n_annotators must be odd and >= 1")
        if not 0.0 <= self.annotator_error_rate < 0.5:
            raise AutofixError("annotator_error_rate must be in [0, 0.5)")

    def to_dict(self) -> dict:
        """JSON-ready form for the manifest."""
        return {
            "kinds": list(self.kinds),
            "dataflow": self.dataflow,
            "n_annotators": self.n_annotators,
            "annotator_error_rate": self.annotator_error_rate,
            "seed": self.seed,
        }


class AutofixOracle:
    """Simulated expert panel over *planted* ground truth.

    The corpus oracle (:class:`repro.core.oracle.VerificationOracle`)
    consults commit labels; here the ground truth is the plant itself — a
    candidate is still vulnerable exactly when the plant's marker token
    survives in its text.  Each plant gets its own hash-derived RNG stream,
    so verdicts do not depend on the order plants are verified in (the
    property that makes chunk-parallel runs bit-identical).
    """

    def __init__(
        self, n_annotators: int = 3, annotator_error_rate: float = 0.0, seed: int = 2021
    ) -> None:
        self.n_annotators = n_annotators
        self.annotator_error_rate = annotator_error_rate
        self.seed = seed

    def is_vulnerable(self, text: str, plant: FlawPlant) -> bool:
        """Panel-label one candidate: True = the flaw is still present."""
        truth = plant.marker in text
        if self.annotator_error_rate == 0.0:
            return truth
        import numpy as np

        digest = hashlib.sha1(f"{self.seed}:{plant.path}:{plant.kind}".encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        votes = sum(
            int(truth ^ (rng.random() < self.annotator_error_rate))
            for _ in range(self.n_annotators)
        )
        return votes * 2 > self.n_annotators


# ---- plant ------------------------------------------------------------


def _plant(path: str, text: str, kind: str) -> tuple[str, FlawPlant] | None:
    """Apply one flaw of *kind* to *text*; None when the file can't host it."""
    if kind in SEEDABLE_CHECKERS:
        try:
            planted, insert_line, n_lines = plant_violation(text, kind, path)
        except ReproError:
            return None
        return planted, FlawPlant(
            path=path,
            kind=kind,
            checker=kind,
            insert_line=insert_line,
            n_lines=n_lines,
            span_start=insert_line + 1,
            span_end=insert_line + n_lines,
            marker=PAYLOAD_MARKERS[kind],
        )
    variant = VARIANTS[int(kind.split(":", 1)[1]) - 1]
    try:
        unit = parse_translation_unit(text, path)
    except Exception:
        return None
    for fn in unit.functions:
        for node in walk(fn):
            if not isinstance(node, IfStmt):
                continue
            # Single-line headers keep the rewrite a pure insertion (no
            # collapsed lines), so baseline shifting stays exact.
            if not (node.cond_open_line == node.cond_close_line == node.start_line):
                continue
            suffix = hashlib.sha1(f"{path}:{variant.variant_id}".encode()).hexdigest()[:8]
            try:
                planted = apply_variant_text(
                    text,
                    variant,
                    (node.cond_open_line, node.cond_open_col),
                    (node.cond_close_line, node.cond_close_col),
                    node.start_line,
                    suffix,
                )
            except ReproError:  # side-effecting condition: try the next if
                continue
            n_lines = 1 if variant.variant_id <= 4 else 2
            return planted, FlawPlant(
                path=path,
                kind=kind,
                checker="scaffold-leak",
                insert_line=node.start_line - 1,
                n_lines=n_lines,
                # The rewritten if header sits just below the inserted
                # scaffolding and references the flag, so it belongs to
                # the plant's attribution span too.
                span_start=node.start_line,
                span_end=node.start_line + n_lines,
                marker="_SYS_",
            )
    return None


# ---- patch ------------------------------------------------------------


def _candidates(planted: str, plant: FlawPlant, finding_line: int) -> list[str]:
    """Candidate repairs for one found plant, in trial order.

    Scaffold findings invert the Fig. 5 templates; payload findings try
    deleting the flagged line, then the two-line windows below and above
    it (payloads are 1-2 lines and the finding anchors to the first).
    """
    if plant.kind.startswith("variant:"):
        try:
            repaired, _n = repair_all(planted, plant.path)
        except ReproError:
            return []
        return [repaired]
    out = []
    for start, end in ((finding_line, finding_line), (finding_line, finding_line + 1), (finding_line - 1, finding_line)):
        lines = planted.splitlines()
        if not (1 <= start and end <= len(lines)):
            continue
        kept = lines[: start - 1] + lines[end:]
        out.append("\n".join(kept) + ("\n" if planted.endswith("\n") else ""))
    return out


# ---- verify -----------------------------------------------------------


def _dead_store_keys(source: str, path: str) -> set[tuple[str, str]]:
    """(function, variable) pairs with at least one dead store."""
    unit = parse_translation_unit(source, path)
    keys: set[tuple[str, str]] = set()
    for fn in unit.functions:
        flow = FunctionFlow(fn)
        for d in flow.dead_stores():
            keys.add((fn.name, d.var))
    return keys


def _verify(
    candidate: str,
    plant: FlawPlant,
    checkers: list[Checker],
    original_sig: tuple,
    baseline_ids: frozenset[str],
    original_dead: set[tuple[str, str]],
    oracle: AutofixOracle,
) -> dict:
    """Evaluate the five gates in order, short-circuiting on failure."""
    gates = {g: False for g in GATE_NAMES}
    try:
        sig = cfg_signature(candidate, plant.path)
    except Exception:
        return gates
    gates["parse"] = True
    gates["cfg"] = sig == original_sig
    if not gates["cfg"]:
        return gates
    report = analyze_source(plant.path, candidate, checkers)
    gates["lint"] = all(f.stable_id in baseline_ids for f in report.findings)
    if not gates["lint"]:
        return gates
    gates["dead_stores"] = _dead_store_keys(candidate, plant.path) <= original_dead
    if not gates["dead_stores"]:
        return gates
    gates["oracle"] = not oracle.is_vulnerable(candidate, plant)
    return gates


# ---- one file through the whole loop ----------------------------------


def _process_item(
    path: str, text: str, kind: str, config: AutofixConfig, checkers: list[Checker]
) -> RepairOutcome:
    """Run plant→find→patch→verify for one file."""
    started = time.perf_counter()
    oracle = AutofixOracle(config.n_annotators, config.annotator_error_rate, config.seed)
    planted_pair = _plant(path, text, kind)
    if planted_pair is None:
        plant = FlawPlant(path, kind, "", 0, 0, 0, 0, "")
        return RepairOutcome(plant=plant, planted=False)
    planted, plant = planted_pair

    baseline = analyze_source(path, text, checkers)
    baseline_report = LintReport(files=[baseline])
    shifted_ids = shifted_finding_ids(baseline_report, plant.insert_line, plant.n_lines)
    new = [
        f
        for f in analyze_source(path, planted, checkers).findings
        if f.stable_id not in shifted_ids
    ]
    hits = [
        f
        for f in new
        if f.checker == plant.checker and plant.span_start <= f.line <= plant.span_end
    ]
    # Any new finding inside the plant span is attributable to the plant —
    # the inserted text (e.g. a hoisted condition) legitimately trips other
    # checkers on those lines.  Only out-of-span findings charge the finder.
    fps = tuple(
        (f.checker, f.line)
        for f in new
        if not (plant.span_start <= f.line <= plant.span_end)
    )
    if not hits:
        return RepairOutcome(
            plant=plant,
            found=False,
            false_positives=fps,
            elapsed_ms=(time.perf_counter() - started) * 1e3,
        )

    candidates = _candidates(planted, plant, hits[0].line)
    original_sig = cfg_signature(text, path)
    baseline_ids = baseline_report.finding_ids()
    original_dead = _dead_store_keys(text, path)
    accepted_at = -1
    gates: dict = {g: False for g in GATE_NAMES}
    crashed = False
    diff = ""
    for i, candidate in enumerate(candidates):
        try:
            gates = _verify(
                candidate, plant, checkers, original_sig, baseline_ids, original_dead, oracle
            )
        except Exception:
            crashed = True
            continue
        if all(gates.values()):
            accepted_at = i
            diff = _render_diff(planted, candidate, path)
            break
    return RepairOutcome(
        plant=plant,
        found=True,
        finding_id=hits[0].stable_id,
        false_positives=fps,
        n_candidates=len(candidates),
        accepted=accepted_at >= 0,
        candidate_index=accepted_at,
        gates=gates,
        crashed=crashed,
        diff=diff,
        elapsed_ms=(time.perf_counter() - started) * 1e3,
    )


def _render_diff(before: str, after: str, path: str) -> str:
    """Unified diff of one accepted repair (the per-patch artifact body)."""
    from ..diffing.unified_gen import diff_texts
    from ..patch.unified import render_file_diff

    return render_file_diff(diff_texts(before, after, path))


# ---- chunked pool (same shape as lint_sources) ------------------------

_AUTOFIX_WORKER_STATE: tuple[AutofixConfig, list[Checker]] | None = None


def _init_autofix_worker(config: AutofixConfig) -> None:
    global _AUTOFIX_WORKER_STATE
    _AUTOFIX_WORKER_STATE = (config, make_checkers(dataflow=config.dataflow))


def _autofix_chunk(items: list[tuple[str, str, str]]) -> tuple[list[RepairOutcome], "ObsSnapshot"]:
    """Process one chunk in a worker, timing each file into a local
    registry whose snapshot rides back with the outcomes."""
    assert _AUTOFIX_WORKER_STATE is not None
    config, checkers = _AUTOFIX_WORKER_STATE
    local = ObsRegistry()
    outcomes = []
    for path, text, kind in items:
        with local.timer("autofix.file"):
            outcomes.append(_process_item(path, text, kind, config, checkers))
    _count_outcomes(local, outcomes)
    return outcomes, local.snapshot()


def _count_outcomes(obs: ObsRegistry, outcomes: list[RepairOutcome]) -> None:
    obs.add("autofix_plants", sum(1 for o in outcomes if o.planted))
    obs.add("autofix_found", sum(1 for o in outcomes if o.found))
    obs.add("autofix_accepted", sum(1 for o in outcomes if o.accepted))
    obs.add("autofix_crashes", sum(1 for o in outcomes if o.crashed))


# ---- entry points -----------------------------------------------------


def run_autofix(
    items: list[tuple[str, str]],
    config: AutofixConfig | None = None,
    workers: int | None = None,
    obs: ObsRegistry | None = None,
) -> AutofixReport:
    """Run the closed loop over many (path, text) files.

    Args:
        items: (path, text) pairs; plant kinds cycle over
            ``config.kinds`` in sorted-path order.
        config: run configuration (validated here).
        workers: >1 processes files in a chunked pool.  The report is
            byte-identical to a serial run; pool failures fall back to
            serial.
        obs: registry for the ``autofix.file`` timer and the
            ``autofix_plants``/``autofix_found``/``autofix_accepted``/
            ``autofix_crashes`` counters.
    """
    config = config if config is not None else AutofixConfig()
    config.validate()
    obs = obs if obs is not None else ObsRegistry()
    ordered = sorted(items, key=lambda item: item[0])
    tagged = [
        (path, text, config.kinds[i % len(config.kinds)])
        for i, (path, text) in enumerate(ordered)
    ]
    outcomes: list[RepairOutcome] | None = None
    with obs.span("autofix.run", files=len(tagged), workers=workers or 1):
        if workers is not None and workers > 1 and len(tagged) >= 2 * workers:
            with obs.timer("autofix_parallel"):
                outcomes = _autofix_parallel(tagged, config, workers, obs)
        if outcomes is None:
            checkers = make_checkers(dataflow=config.dataflow)
            outcomes = []
            for path, text, kind in tagged:
                with obs.timer("autofix.file"):
                    outcomes.append(_process_item(path, text, kind, config, checkers))
            _count_outcomes(obs, outcomes)
    outcomes.sort(key=lambda o: o.plant.path)
    return AutofixReport(outcomes=outcomes, config=config.to_dict())


def _autofix_parallel(
    tagged: list[tuple[str, str, str]],
    config: AutofixConfig,
    workers: int,
    obs: ObsRegistry,
) -> list[RepairOutcome] | None:
    """Process *tagged* items in a process pool; None on any pool failure."""
    n_chunks = min(len(tagged), workers * 4)
    chunks: list[list[tuple[str, str, str]]] = [[] for _ in range(n_chunks)]
    for i, item in enumerate(tagged):
        chunks[i % n_chunks].append(item)
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_autofix_worker,
            initargs=(config,),
        ) as pool:
            outcomes = []
            snapshots = []
            for part, snap in pool.map(_autofix_chunk, chunks):
                outcomes.extend(part)
                snapshots.append(snap)
    except Exception:
        return None
    for snap in snapshots:
        obs.merge(snap)
    return outcomes


def autofix_world(
    world,
    config: AutofixConfig | None = None,
    workers: int | None = None,
    obs: ObsRegistry | None = None,
    max_files: int | None = None,
) -> AutofixReport:
    """Run the closed loop over every code file at a world's repo heads.

    Paths are namespaced ``slug/path`` like :func:`lint_world`; *max_files*
    caps the run after sorting, so a capped run is a prefix of the full one.
    """
    items: list[tuple[str, str]] = []
    for slug in sorted(world.repos):
        repo = world.repos[slug]
        tree = repo.checkout(repo.head)
        for path in sorted(tree):
            if path.endswith(CODE_SUFFIXES):
                items.append((f"{slug}/{path}", tree[path]))
    items.sort(key=lambda item: item[0])
    if max_files is not None:
        items = items[:max_files]
    return run_autofix(items, config=config, workers=workers, obs=obs)
