"""Closed-loop find→patch→verify: deterministic auto-repair, no LLM.

The staticcheck analyzers find planted flaws, inverted Fig. 5 templates
(and finding-anchored deletions) propose repairs, and a five-gate verifier
(parse, CFG equivalence, lint, dead stores, oracle panel) accepts only
behavior-preserving fixes.  See :mod:`repro.autofix.pipeline` for the loop
and :mod:`repro.autofix.model` for the manifest shapes.
"""

from .model import GATE_NAMES, MANIFEST_FORMAT, AutofixReport, FlawPlant, RepairOutcome
from .pipeline import (
    DEFAULT_KINDS,
    AutofixConfig,
    AutofixOracle,
    autofix_world,
    run_autofix,
)

__all__ = [
    "AutofixConfig",
    "AutofixOracle",
    "AutofixReport",
    "DEFAULT_KINDS",
    "FlawPlant",
    "GATE_NAMES",
    "MANIFEST_FORMAT",
    "RepairOutcome",
    "autofix_world",
    "run_autofix",
]
