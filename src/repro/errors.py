"""Exception hierarchy for the PatchDB reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to discriminate failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PatchFormatError",
    "PatchApplyError",
    "LexError",
    "ParseError",
    "FeatureError",
    "ModelError",
    "NotFittedError",
    "VcsError",
    "ObjectNotFoundError",
    "CorpusError",
    "NvdError",
    "AugmentationError",
    "SynthesisError",
    "StaticCheckError",
    "AutofixError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class PatchFormatError(ReproError):
    """A patch or diff could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class PatchApplyError(ReproError):
    """A patch could not be applied to (or reversed from) file contents."""


class LexError(ReproError):
    """The C/C++ lexer encountered unrecoverable input."""


class ParseError(ReproError):
    """The lightweight C parser could not build an AST."""


class FeatureError(ReproError):
    """Feature extraction failed or produced an inconsistent vector."""


class ModelError(ReproError):
    """An ML model was misused (bad shapes, bad hyperparameters)."""


class NotFittedError(ModelError):
    """``predict`` was called before ``fit``."""


class VcsError(ReproError):
    """A version-control operation failed."""


class ObjectNotFoundError(VcsError):
    """A blob/snapshot/commit hash is not present in the object store."""


class CorpusError(ReproError):
    """The synthetic corpus generator was configured inconsistently."""


class NvdError(ReproError):
    """The NVD simulator or crawler failed."""


class AugmentationError(ReproError):
    """The dataset augmentation loop was configured or driven incorrectly."""


class SynthesisError(ReproError):
    """Patch oversampling could not transform a patch."""


class StaticCheckError(ReproError):
    """The static-analysis pass was misconfigured or given bad input."""


class AutofixError(ReproError):
    """The find→patch→verify pipeline was misconfigured or given bad input."""
