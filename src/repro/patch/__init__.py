"""Patch data model, parsing, rendering, and application.

This subpackage implements the patch substrate the whole pipeline rests on:
the :class:`Patch`/:class:`FileDiff`/:class:`Hunk` value objects, parsers for
both GitHub ``.patch`` downloads and ``git show`` output, renderers that
round-trip them, strict patch application, and the paper's C/C++ file filter.
"""

from .apply import apply_file_diff, invert_file_diff, invert_hunk, reverse_file_diff
from .gitformat import diffstat, parse_patch, render_mbox_patch, render_patch
from .model import C_CPP_EXTENSIONS, FileDiff, Hunk, Line, LineKind, Patch, is_c_cpp_path
from .unified import parse_file_diffs, parse_hunk_header, render_file_diff, render_file_diffs

__all__ = [
    "C_CPP_EXTENSIONS",
    "FileDiff",
    "Hunk",
    "Line",
    "LineKind",
    "Patch",
    "apply_file_diff",
    "diffstat",
    "invert_file_diff",
    "invert_hunk",
    "is_c_cpp_path",
    "parse_file_diffs",
    "parse_hunk_header",
    "parse_patch",
    "render_file_diff",
    "render_file_diffs",
    "render_mbox_patch",
    "render_patch",
    "reverse_file_diff",
]
