"""Parsing and rendering of git ``.patch`` commit format.

The NVD crawler (§III-A) downloads commits by appending ``.patch`` to GitHub
commit URLs, which yields the mbox-style format of ``git format-patch``::

    From b84c2cab55948a5ee70860779b2640913e3ee1ed Mon Sep 17 00:00:00 2001
    From: Jane Dev <jane@example.org>
    Date: Tue, 5 Nov 2019 10:00:00 -0500
    Subject: [PATCH] bits: prevent stack underflow in bit_write_UMC

    body text...
    ---
     src/bits.c | 2 +-
     1 file changed, 1 insertion(+), 1 deletion(-)

    diff --git a/src/bits.c b/src/bits.c
    ...

We also accept the ``git show`` / ``git log -p`` style (``commit <sha>``
header) used in the paper's listings.
"""

from __future__ import annotations

import re

from ..errors import PatchFormatError
from .model import FileDiff, Patch
from .unified import parse_file_diffs, render_file_diffs

__all__ = ["parse_patch", "render_patch", "render_mbox_patch", "diffstat"]

_FROM_RE = re.compile(r"^From (?P<sha>[0-9a-f]{40}) ")
_COMMIT_RE = re.compile(r"^commit (?P<sha>[0-9a-f]{40})\b")
_SUBJECT_PREFIX_RE = re.compile(r"^\[PATCH[^\]]*\]\s*")


def parse_patch(text: str, repo: str = "") -> Patch:
    """Parse a ``.patch`` / ``git show`` text into a :class:`Patch`.

    Args:
        text: raw patch text in either mbox (``git format-patch``) or
            log (``git show``) style.
        repo: optional ``owner/repo`` slug to record on the patch.

    Raises:
        PatchFormatError: if no commit header can be found.
    """
    lines = text.splitlines()
    if not lines:
        raise PatchFormatError("empty patch text")

    head = lines[0]
    mbox = _FROM_RE.match(head)
    logstyle = _COMMIT_RE.match(head)
    if mbox:
        sha = mbox.group("sha")
        author, date, message, body_start = _parse_mbox_headers(lines)
    elif logstyle:
        sha = logstyle.group("sha")
        author, date, message, body_start = _parse_log_headers(lines)
    else:
        raise PatchFormatError(f"unrecognized patch header: {head!r}")

    diff_text = "\n".join(lines[body_start:])
    files = parse_file_diffs(diff_text)
    return Patch(sha=sha, message=message, files=files, author=author, date=date, repo=repo)


def _parse_mbox_headers(lines: list[str]) -> tuple[str, str, str, int]:
    """Parse ``git format-patch`` headers; return (author, date, message, diff_start)."""
    author = date = ""
    subject_parts: list[str] = []
    i = 1
    while i < len(lines) and lines[i]:
        line = lines[i]
        if line.startswith("From: "):
            author = line[len("From: ") :].strip()
        elif line.startswith("Date: "):
            date = line[len("Date: ") :].strip()
        elif line.startswith("Subject: "):
            subject_parts.append(line[len("Subject: ") :])
            # RFC 2822 folded continuation lines start with whitespace.
            while i + 1 < len(lines) and lines[i + 1].startswith((" ", "\t")):
                i += 1
                subject_parts.append(lines[i].strip())
        i += 1
    subject = _SUBJECT_PREFIX_RE.sub("", " ".join(subject_parts).strip())

    # Body runs until the "---" separator before the diffstat, or "diff --git".
    body: list[str] = []
    i += 1  # skip blank line after headers
    while i < len(lines):
        line = lines[i]
        if line == "---" or line.startswith("diff --git "):
            break
        body.append(line)
        i += 1
    message = subject
    body_text = "\n".join(body).strip()
    if body_text:
        message = f"{subject}\n\n{body_text}"
    # Advance to the first diff section (diffstat lines are skipped by the
    # unified parser anyway, but we keep body_start meaningful).
    while i < len(lines) and not lines[i].startswith("diff --git "):
        i += 1
    return author, date, message, i


def _parse_log_headers(lines: list[str]) -> tuple[str, str, str, int]:
    """Parse ``git show``-style headers; return (author, date, message, diff_start)."""
    author = date = ""
    i = 1
    while i < len(lines) and lines[i]:
        line = lines[i]
        if line.startswith("Author:"):
            author = line[len("Author:") :].strip()
        elif line.startswith("Date:"):
            date = line[len("Date:") :].strip()
        i += 1
    i += 1  # blank line
    body: list[str] = []
    while i < len(lines) and not lines[i].startswith("diff --git "):
        # git show indents the message by four spaces.
        body.append(lines[i][4:] if lines[i].startswith("    ") else lines[i])
        i += 1
    message = "\n".join(body).strip()
    return author, date, message, i


def diffstat(files: tuple[FileDiff, ...]) -> str:
    """Render a minimal ``git format-patch`` diffstat block."""
    out: list[str] = []
    total_add = total_del = 0
    width = max((len(f.path) for f in files), default=0)
    for f in files:
        add, rem = f.added_line_count(), f.removed_line_count()
        total_add += add
        total_del += rem
        bar = "+" * min(add, 30) + "-" * min(rem, 30)
        out.append(f" {f.path.ljust(width)} | {add + rem:>4} {bar}")
    changed = len(files)
    out.append(
        f" {changed} file{'s' if changed != 1 else ''} changed,"
        f" {total_add} insertion{'s' if total_add != 1 else ''}(+),"
        f" {total_del} deletion{'s' if total_del != 1 else ''}(-)"
    )
    return "\n".join(out)


def render_patch(patch: Patch) -> str:
    """Render a patch in ``git show`` style (as in the paper's listings)."""
    out = [f"commit {patch.sha}"]
    if patch.author:
        out.append(f"Author: {patch.author}")
    if patch.date:
        out.append(f"Date:   {patch.date}")
    out.append("")
    out.extend(f"    {line}" if line else "" for line in patch.message.splitlines())
    out.append("")
    out.append(render_file_diffs(patch.files))
    return "\n".join(out)


def render_mbox_patch(patch: Patch) -> str:
    """Render a patch in ``git format-patch`` (``.patch`` download) style."""
    subject, _, body = patch.message.partition("\n\n")
    out = [f"From {patch.sha} Mon Sep 17 00:00:00 2001"]
    if patch.author:
        out.append(f"From: {patch.author}")
    if patch.date:
        out.append(f"Date: {patch.date}")
    out.append(f"Subject: [PATCH] {subject}")
    out.append("")
    if body:
        out.append(body)
    out.append("---")
    out.append(diffstat(patch.files))
    out.append("")
    out.append(render_file_diffs(patch.files))
    out.append("--")
    out.append("2.25.1")
    return "\n".join(out)
