"""Unified-diff parsing and rendering.

Parses the diff body format produced by ``git diff`` / ``git show``::

    diff --git a/src/bits.c b/src/bits.c
    index 014b04fe4..a3692bdc6 100644
    --- a/src/bits.c
    +++ b/src/bits.c
    @@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, ...
         context
    -    removed
    +    added

and renders the same format back out.  Round-tripping is loss-free for the
fields the data model captures.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from ..errors import PatchFormatError
from .model import FileDiff, Hunk, Line, LineKind

__all__ = [
    "parse_file_diffs",
    "parse_hunk_header",
    "render_file_diff",
    "render_file_diffs",
]

_DIFF_GIT_RE = re.compile(r'^diff --git (?:"?a/(?P<old>.*?)"?) (?:"?b/(?P<new>.*?)"?)$')
_INDEX_RE = re.compile(r"^index (?P<old>[0-9a-f]+)\.\.(?P<new>[0-9a-f]+)(?: (?P<mode>\d+))?$")
_HUNK_RE = re.compile(
    r"^@@ -(?P<ostart>\d+)(?:,(?P<ocount>\d+))? \+(?P<nstart>\d+)(?:,(?P<ncount>\d+))? @@(?: (?P<section>.*))?$"
)
_DEV_NULL = "/dev/null"


def parse_hunk_header(line: str) -> tuple[int, int, int, int, str]:
    """Parse an ``@@ -a,b +c,d @@ section`` header.

    Returns:
        ``(old_start, old_count, new_start, new_count, section)``.

    Raises:
        PatchFormatError: if *line* is not a hunk header.
    """
    m = _HUNK_RE.match(line)
    if not m:
        raise PatchFormatError(f"malformed hunk header: {line!r}")
    return (
        int(m.group("ostart")),
        int(m.group("ocount") or "1"),
        int(m.group("nstart")),
        int(m.group("ncount") or "1"),
        m.group("section") or "",
    )


def _strip_prefix(path: str) -> str:
    """Drop the ``a/`` / ``b/`` prefix from a diff path; map /dev/null to ''."""
    if path == _DEV_NULL:
        return ""
    if path.startswith(("a/", "b/")):
        return path[2:]
    return path


class _LineReader:
    """Peekable line cursor with 1-based position for error messages."""

    def __init__(self, lines: list[str]) -> None:
        self._lines = lines
        self.pos = 0

    def peek(self) -> str | None:
        if self.pos >= len(self._lines):
            return None
        return self._lines[self.pos]

    def next(self) -> str:
        line = self._lines[self.pos]
        self.pos += 1
        return line

    @property
    def line_no(self) -> int:
        return self.pos + 1


def parse_file_diffs(text: str) -> tuple[FileDiff, ...]:
    """Parse a diff body (one or more ``diff --git`` sections) into file diffs.

    Tolerates extended headers (``new file mode``, ``deleted file mode``,
    ``old mode``/``new mode``, ``similarity index``, rename lines) and binary
    placeholders (``Binary files ... differ``), which produce a hunk-less
    :class:`FileDiff`.

    Raises:
        PatchFormatError: on structurally invalid input.
    """
    reader = _LineReader(text.splitlines())
    diffs: list[FileDiff] = []
    while True:
        line = reader.peek()
        if line is None:
            break
        if line.startswith("diff --git "):
            diffs.append(_parse_one_file(reader))
        else:
            # Skip prologue noise (commit messages embedded in raw text, etc.).
            reader.next()
    return tuple(diffs)


def _parse_one_file(reader: _LineReader) -> FileDiff:
    """Parse one ``diff --git`` section positioned at its first line."""
    header = reader.next()
    m = _DIFF_GIT_RE.match(header)
    if not m:
        raise PatchFormatError(f"malformed diff header: {header!r}", reader.line_no - 1)
    old_path = m.group("old")
    new_path = m.group("new")
    old_blob = new_blob = ""
    mode = "100644"
    new_file = deleted_file = False

    # Extended header lines until ---/+++ or the next diff/EOF.
    while True:
        line = reader.peek()
        if line is None or line.startswith(("diff --git ", "--- ", "@@ ")):
            break
        reader.next()
        if line.startswith("index "):
            im = _INDEX_RE.match(line)
            if im:
                old_blob, new_blob = im.group("old"), im.group("new")
                if im.group("mode"):
                    mode = im.group("mode")
        elif line.startswith("new file mode "):
            new_file = True
            mode = line.rsplit(" ", 1)[1]
        elif line.startswith("deleted file mode "):
            deleted_file = True
            mode = line.rsplit(" ", 1)[1]
        elif line.startswith("Binary files "):
            return FileDiff(
                old_path="" if new_file else old_path,
                new_path="" if deleted_file else new_path,
                hunks=(),
                old_blob=old_blob,
                new_blob=new_blob,
                mode=mode,
            )

    # ---/+++ lines (absent for pure mode changes / renames without hunks).
    if reader.peek() is not None and reader.peek().startswith("--- "):
        old_path = _strip_prefix(reader.next()[4:].strip())
        plus = reader.peek()
        if plus is None or not plus.startswith("+++ "):
            raise PatchFormatError("expected '+++' after '---'", reader.line_no)
        new_path = _strip_prefix(reader.next()[4:].strip())
    else:
        old_path = "" if new_file else old_path
        new_path = "" if deleted_file else new_path

    hunks: list[Hunk] = []
    while True:
        line = reader.peek()
        if line is None or not line.startswith("@@ "):
            break
        hunks.append(_parse_hunk(reader))
    return FileDiff(
        old_path=old_path,
        new_path=new_path,
        hunks=tuple(hunks),
        old_blob=old_blob,
        new_blob=new_blob,
        mode=mode,
    )


def _parse_hunk(reader: _LineReader) -> Hunk:
    """Parse one hunk positioned at its ``@@`` header."""
    ostart, ocount, nstart, ncount, section = parse_hunk_header(reader.next())
    lines: list[Line] = []
    old_seen = new_seen = 0
    while old_seen < ocount or new_seen < ncount:
        raw = reader.peek()
        if raw is None:
            raise PatchFormatError("unexpected EOF inside hunk", reader.line_no)
        if raw.startswith("\\"):  # "\ No newline at end of file"
            reader.next()
            continue
        marker, text = (raw[0], raw[1:]) if raw else (" ", "")
        if marker == "+":
            lines.append(Line(LineKind.ADDED, text))
            new_seen += 1
        elif marker == "-":
            lines.append(Line(LineKind.REMOVED, text))
            old_seen += 1
        elif marker == " " or raw == "":
            lines.append(Line(LineKind.CONTEXT, text))
            old_seen += 1
            new_seen += 1
        else:
            raise PatchFormatError(f"unexpected line inside hunk: {raw!r}", reader.line_no)
        reader.next()
    # Trailing "\ No newline" marker after the final body line.
    tail = reader.peek()
    if tail is not None and tail.startswith("\\"):
        reader.next()
    hunk = Hunk(ostart, ocount, nstart, ncount, tuple(lines), section)
    hunk.validate()
    return hunk


def render_file_diff(diff: FileDiff) -> str:
    """Render one file diff back to unified-diff text."""
    out: list[str] = []
    a = f"a/{diff.old_path}" if diff.old_path else f"a/{diff.new_path}"
    b = f"b/{diff.new_path}" if diff.new_path else f"b/{diff.old_path}"
    out.append(f"diff --git {a} {b}")
    if diff.is_new_file:
        out.append(f"new file mode {diff.mode}")
    elif diff.is_deleted_file:
        out.append(f"deleted file mode {diff.mode}")
    if diff.old_blob or diff.new_blob:
        suffix = f" {diff.mode}" if not diff.is_new_file and not diff.is_deleted_file else ""
        out.append(f"index {diff.old_blob or '0' * 9}..{diff.new_blob or '0' * 9}{suffix}")
    out.append(f"--- {a if diff.old_path else _DEV_NULL}")
    out.append(f"+++ {b if diff.new_path else _DEV_NULL}")
    for hunk in diff.hunks:
        out.append(hunk.header())
        out.extend(ln.render() for ln in hunk.lines)
    return "\n".join(out)


def render_file_diffs(diffs: Iterable[FileDiff]) -> str:
    """Render several file diffs, newline separated."""
    return "\n".join(render_file_diff(d) for d in diffs)
