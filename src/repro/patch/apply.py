"""Applying and reverse-applying patches to file contents.

The oversampler (§III-C-1) needs the BEFORE and AFTER versions of every
patch-related file; given one version and the patch we can reconstruct the
other.  Application is strict: context and removed lines must match the
pre-image exactly, otherwise :class:`~repro.errors.PatchApplyError` is raised
(there is no fuzz, by design — our substrate controls both sides).
"""

from __future__ import annotations

from ..errors import PatchApplyError
from .model import FileDiff, Hunk, Line, LineKind

__all__ = ["apply_file_diff", "reverse_file_diff", "invert_file_diff", "invert_hunk"]


def apply_file_diff(old_text: str, diff: FileDiff) -> str:
    """Apply *diff* to *old_text*, returning the new file contents.

    Args:
        old_text: the pre-image file contents.
        diff: hunks to apply.

    Raises:
        PatchApplyError: if any hunk's context/removed lines do not match.
    """
    old_lines = old_text.splitlines()
    out: list[str] = []
    cursor = 0  # 0-based index into old_lines
    for hunk in diff.hunks:
        start = hunk.old_start - 1
        if hunk.old_count == 0:
            # Pure insertion: old_start is the line *after* which to insert.
            start = hunk.old_start
        if start < cursor or start > len(old_lines):
            raise PatchApplyError(
                f"hunk at old line {hunk.old_start} overlaps previous hunk or file end"
            )
        out.extend(old_lines[cursor:start])
        cursor = start
        for ln in hunk.lines:
            if ln.kind is LineKind.ADDED:
                out.append(ln.text)
                continue
            if cursor >= len(old_lines):
                raise PatchApplyError(f"hunk at old line {hunk.old_start} runs past EOF")
            if old_lines[cursor] != ln.text:
                raise PatchApplyError(
                    f"mismatch at old line {cursor + 1}: expected {ln.text!r}, "
                    f"found {old_lines[cursor]!r}"
                )
            if ln.kind is LineKind.CONTEXT:
                out.append(ln.text)
            cursor += 1
    out.extend(old_lines[cursor:])
    text = "\n".join(out)
    if out:
        text += "\n"
    return text


def reverse_file_diff(new_text: str, diff: FileDiff) -> str:
    """Reverse-apply *diff* to *new_text*, recovering the old file contents."""
    return apply_file_diff(new_text, invert_file_diff(diff))


def invert_hunk(hunk: Hunk) -> Hunk:
    """Swap the roles of added and removed lines in a hunk."""
    flipped = tuple(
        Line(
            LineKind.ADDED
            if ln.kind is LineKind.REMOVED
            else LineKind.REMOVED
            if ln.kind is LineKind.ADDED
            else LineKind.CONTEXT,
            ln.text,
        )
        for ln in hunk.lines
    )
    return Hunk(
        old_start=hunk.new_start,
        old_count=hunk.new_count,
        new_start=hunk.old_start,
        new_count=hunk.old_count,
        lines=flipped,
        section=hunk.section,
    )


def invert_file_diff(diff: FileDiff) -> FileDiff:
    """Produce the inverse file diff (new -> old)."""
    return FileDiff(
        old_path=diff.new_path,
        new_path=diff.old_path,
        hunks=tuple(invert_hunk(h) for h in diff.hunks),
        old_blob=diff.new_blob,
        new_blob=diff.old_blob,
        mode=diff.mode,
    )
