"""Data model for patches, hunks, and commits.

The model mirrors the structure of a git-format patch as described in the
paper (§II-A): a *patch* (commit) touches one or more files; each file diff
contains one or more *hunks*; a hunk is a run of removed (``-``) and added
(``+``) lines surrounded by context lines.

All classes are immutable value objects.  Mutating pipelines (e.g. the
oversampler) build new instances rather than editing in place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

__all__ = [
    "LineKind",
    "Line",
    "Hunk",
    "FileDiff",
    "Patch",
    "C_CPP_EXTENSIONS",
    "is_c_cpp_path",
]

#: File extensions the paper treats as C/C++ source (§III-A).
C_CPP_EXTENSIONS: frozenset[str] = frozenset({".c", ".cpp", ".h", ".hpp", ".cc", ".cxx", ".hh", ".hxx"})


def is_c_cpp_path(path: str) -> bool:
    """Return True if *path* names a C/C++ source or header file."""
    dot = path.rfind(".")
    if dot < 0:
        return False
    return path[dot:].lower() in C_CPP_EXTENSIONS


class LineKind(enum.Enum):
    """Role of a single line within a hunk."""

    CONTEXT = " "
    REMOVED = "-"
    ADDED = "+"


@dataclass(frozen=True, slots=True)
class Line:
    """One line of a hunk body.

    Attributes:
        kind: whether the line is context, removed, or added.
        text: the line content *without* the leading marker or newline.
    """

    kind: LineKind
    text: str

    def render(self) -> str:
        """Render the line in unified-diff form (marker + text)."""
        return f"{self.kind.value}{self.text}"


@dataclass(frozen=True, slots=True)
class Hunk:
    """A contiguous change region within one file.

    Attributes:
        old_start: 1-based first line of the hunk in the old file.
        old_count: number of old-file lines covered (context + removed).
        new_start: 1-based first line of the hunk in the new file.
        new_count: number of new-file lines covered (context + added).
        section: the optional function heading after ``@@ ... @@``.
        lines: the hunk body in order.
    """

    old_start: int
    old_count: int
    new_start: int
    new_count: int
    lines: tuple[Line, ...]
    section: str = ""

    @property
    def removed(self) -> tuple[str, ...]:
        """Texts of removed lines, in order."""
        return tuple(ln.text for ln in self.lines if ln.kind is LineKind.REMOVED)

    @property
    def added(self) -> tuple[str, ...]:
        """Texts of added lines, in order."""
        return tuple(ln.text for ln in self.lines if ln.kind is LineKind.ADDED)

    @property
    def context(self) -> tuple[str, ...]:
        """Texts of context lines, in order."""
        return tuple(ln.text for ln in self.lines if ln.kind is LineKind.CONTEXT)

    @property
    def is_pure_addition(self) -> bool:
        """True if the hunk removes nothing."""
        return not any(ln.kind is LineKind.REMOVED for ln in self.lines)

    @property
    def is_pure_removal(self) -> bool:
        """True if the hunk adds nothing."""
        return not any(ln.kind is LineKind.ADDED for ln in self.lines)

    def header(self) -> str:
        """Render the ``@@ -a,b +c,d @@ section`` header line."""
        head = f"@@ -{self.old_start},{self.old_count} +{self.new_start},{self.new_count} @@"
        if self.section:
            head = f"{head} {self.section}"
        return head

    def old_lines_touched(self) -> tuple[int, ...]:
        """1-based old-file line numbers of removed lines."""
        nums = []
        cursor = self.old_start
        for ln in self.lines:
            if ln.kind is LineKind.ADDED:
                continue
            if ln.kind is LineKind.REMOVED:
                nums.append(cursor)
            cursor += 1
        return tuple(nums)

    def new_lines_touched(self) -> tuple[int, ...]:
        """1-based new-file line numbers of added lines."""
        nums = []
        cursor = self.new_start
        for ln in self.lines:
            if ln.kind is LineKind.REMOVED:
                continue
            if ln.kind is LineKind.ADDED:
                nums.append(cursor)
            cursor += 1
        return tuple(nums)

    def validate(self) -> None:
        """Check that the declared counts match the body.

        Raises:
            ValueError: if counts are inconsistent with ``lines``.
        """
        old = sum(1 for ln in self.lines if ln.kind is not LineKind.ADDED)
        new = sum(1 for ln in self.lines if ln.kind is not LineKind.REMOVED)
        if old != self.old_count or new != self.new_count:
            raise ValueError(
                f"hunk counts ({self.old_count},{self.new_count}) do not match "
                f"body ({old},{new})"
            )


@dataclass(frozen=True, slots=True)
class FileDiff:
    """All hunks against a single file.

    Attributes:
        old_path: path in the pre-image (``a/...`` stripped); empty for new files.
        new_path: path in the post-image (``b/...`` stripped); empty for deletions.
        hunks: the hunks, ordered by position.
        old_blob: abbreviated pre-image blob id (from the ``index`` line), if known.
        new_blob: abbreviated post-image blob id, if known.
        mode: file mode string (e.g. ``"100644"``), if known.
    """

    old_path: str
    new_path: str
    hunks: tuple[Hunk, ...]
    old_blob: str = ""
    new_blob: str = ""
    mode: str = "100644"

    @property
    def path(self) -> str:
        """The file's canonical path (post-image, falling back to pre-image)."""
        return self.new_path or self.old_path

    @property
    def is_new_file(self) -> bool:
        """True for a file created by the patch."""
        return not self.old_path

    @property
    def is_deleted_file(self) -> bool:
        """True for a file removed by the patch."""
        return not self.new_path

    @property
    def is_c_cpp(self) -> bool:
        """True if the file is C/C++ source per the paper's filter."""
        return is_c_cpp_path(self.path)

    def added_line_count(self) -> int:
        """Total added lines across hunks."""
        return sum(len(h.added) for h in self.hunks)

    def removed_line_count(self) -> int:
        """Total removed lines across hunks."""
        return sum(len(h.removed) for h in self.hunks)


@dataclass(frozen=True, slots=True)
class Patch:
    """A patch (git commit) — the unit stored in PatchDB.

    Attributes:
        sha: the 40-hex commit id.
        message: full commit message (subject + body).
        author: ``Name <email>`` string.
        date: author-date string (git default format).
        files: per-file diffs.
        repo: ``owner/repo`` slug of the source repository, when known.
    """

    sha: str
    message: str
    files: tuple[FileDiff, ...]
    author: str = ""
    date: str = ""
    repo: str = ""

    @property
    def subject(self) -> str:
        """First line of the commit message."""
        return self.message.split("\n", 1)[0]

    @property
    def hunks(self) -> tuple[Hunk, ...]:
        """All hunks across all files, in file order."""
        return tuple(h for f in self.files for h in f.hunks)

    def added_lines(self) -> list[str]:
        """All added line texts across the patch."""
        return [t for h in self.hunks for t in h.added]

    def removed_lines(self) -> list[str]:
        """All removed line texts across the patch."""
        return [t for h in self.hunks for t in h.removed]

    def touched_paths(self) -> tuple[str, ...]:
        """Canonical paths of all touched files."""
        return tuple(f.path for f in self.files)

    def only_c_cpp(self) -> "Patch":
        """Return a copy with non-C/C++ file diffs removed (§III-A).

        The paper drops changelog/kconfig/shell portions of patches because
        they "do not play an important role in fixing vulnerabilities".
        """
        kept = tuple(f for f in self.files if f.is_c_cpp)
        return replace(self, files=kept)

    @property
    def is_empty(self) -> bool:
        """True if the patch touches no files (e.g. after filtering)."""
        return not self.files
