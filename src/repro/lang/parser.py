"""Lightweight recursive-descent C parser.

Produces the AST of :mod:`repro.lang.ast_nodes` for full source files.  The
parser recognizes function definitions at the top level and statement
structure (blocks, ``if``/``else``, loops, ``switch``, jumps, declarations,
expression statements) inside bodies — exactly the structure the paper
extracts from LLVM ASTs to locate ``if`` statements (§III-C-2).

Robustness over completeness: constructs the grammar does not model
(templates, K&R definitions, GNU attributes) are skipped as opaque regions
rather than raising, so real-world files still parse.  :class:`ParseError`
is reserved for internal invariant violations in ``strict`` mode.
"""

from __future__ import annotations

from ..errors import ParseError
from .ast_nodes import (
    BlockStmt,
    BreakStmt,
    CaseLabel,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GotoStmt,
    IfStmt,
    LabelStmt,
    NullStmt,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    TranslationUnit,
    WhileStmt,
)
from .lexer import tokenize
from .tokens import TYPE_KEYWORDS, Token, TokenKind

__all__ = ["parse_translation_unit", "parse_function_body", "find_if_statements"]

_OPEN_FOR_CLOSE = {")": "(", "]": "[", "}": "{"}


def parse_translation_unit(source: str, path: str = "") -> TranslationUnit:
    """Parse a full C/C++ file into a :class:`TranslationUnit`."""
    tokens = [
        t
        for t in tokenize(source)
        if t.kind not in (TokenKind.COMMENT, TokenKind.NEWLINE, TokenKind.PREPROCESSOR)
    ]
    parser = _Parser(tokens, source)
    return parser.parse_unit(path)


def parse_function_body(source: str) -> BlockStmt:
    """Parse a brace-delimited block (``{...}``) in isolation."""
    tokens = [
        t
        for t in tokenize(source)
        if t.kind not in (TokenKind.COMMENT, TokenKind.NEWLINE, TokenKind.PREPROCESSOR)
    ]
    parser = _Parser(tokens, source)
    if not parser.at("{"):
        raise ParseError("function body must start with '{'")
    return parser.parse_block()


def find_if_statements(unit: TranslationUnit) -> list[IfStmt]:
    """All ``if`` statements in the unit, in source order."""
    from .ast_nodes import walk

    found = [n for fn in unit.functions for n in walk(fn) if isinstance(n, IfStmt)]
    found.sort(key=lambda n: (n.start_line, n.cond_open_col))
    return found


class _Parser:
    """Token cursor with the recursive-descent routines."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source_lines = source.splitlines()

    # ---- cursor helpers -------------------------------------------------

    def peek(self, offset: int = 0) -> Token | None:
        idx = self.pos + offset
        if idx >= len(self.tokens):
            return None
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.text == text

    def at_keyword(self, name: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind is TokenKind.KEYWORD and tok.text == name

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok is None or tok.text != text:
            where = f"line {tok.line}" if tok else "EOF"
            raise ParseError(f"expected {text!r} at {where}, found {tok.text if tok else 'EOF'!r}")
        return self.next()

    def eof(self) -> bool:
        return self.pos >= len(self.tokens)

    def skip_balanced(self, open_text: str) -> tuple[Token, Token]:
        """Consume from an *open_text* token through its matching close.

        Returns (open_token, close_token).  Unbalanced input consumes to EOF
        and returns the final token as the close.
        """
        open_tok = self.expect(open_text)
        close_text = {"(": ")", "[": "]", "{": "}"}[open_text]
        depth = 1
        last = open_tok
        while not self.eof():
            tok = self.next()
            last = tok
            if tok.text == open_text:
                depth += 1
            elif tok.text == close_text:
                depth -= 1
                if depth == 0:
                    return open_tok, tok
        return open_tok, last

    def text_between(self, first: Token, last: Token) -> str:
        """Exact source text from *first* through *last* (token-inclusive)."""
        if first.line == last.line:
            line = self.source_lines[first.line - 1]
            return line[first.col - 1 : last.col - 1 + len(last.text)]
        parts = [self.source_lines[first.line - 1][first.col - 1 :]]
        parts.extend(self.source_lines[ln - 1] for ln in range(first.line + 1, last.line))
        parts.append(self.source_lines[last.line - 1][: last.col - 1 + len(last.text)])
        return "\n".join(parts)

    # ---- top level ------------------------------------------------------

    def parse_unit(self, path: str) -> TranslationUnit:
        functions: list[FunctionDef] = []
        last_line = self.source_lines and len(self.source_lines) or 1
        while not self.eof():
            fn = self._try_function_def()
            if fn is not None:
                functions.append(fn)
                continue
            self._skip_top_level_item()
        return TranslationUnit(1, last_line, functions=functions, path=path)

    def _try_function_def(self) -> FunctionDef | None:
        """Parse a function definition starting at the cursor, or return None.

        A definition looks like ``<decl tokens> name ( params ) { body }``
        with no ``;`` between the ``)`` and the ``{``.
        """
        start = self.pos
        # Scan forward for 'ident (' ... ') {' without hitting ';' or '}' at
        # depth 0 first.
        i = self.pos
        name_idx = -1
        n = len(self.tokens)
        while i < n:
            tok = self.tokens[i]
            if tok.text in (";", "}", "="):
                break
            if (
                tok.kind is TokenKind.IDENTIFIER
                and i + 1 < n
                and self.tokens[i + 1].text == "("
            ):
                # Find matching ')' and check for '{'.
                depth = 0
                j = i + 1
                while j < n:
                    t = self.tokens[j].text
                    if t == "(":
                        depth += 1
                    elif t == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                if j < n and depth == 0:
                    k = j + 1
                    # Allow qualifiers between ')' and '{' (const, noexcept).
                    while k < n and self.tokens[k].kind is TokenKind.KEYWORD:
                        k += 1
                    if k < n and self.tokens[k].text == "{":
                        name_idx = i
                        params_open, params_close = i + 1, j
                        body_idx = k
                        break
                i = j if j > i else i + 1
                continue
            i += 1
        if name_idx < 0:
            self.pos = start
            return None

        name_tok = self.tokens[name_idx]
        ret_text = (
            self.text_between(self.tokens[start], self.tokens[name_idx - 1])
            if name_idx > start
            else ""
        )
        params_text = self.text_between(self.tokens[params_open], self.tokens[params_close])
        self.pos = body_idx
        body = self.parse_block()
        first = self.tokens[start]
        return FunctionDef(
            start_line=first.line,
            end_line=body.end_line,
            name=name_tok.text,
            params_text=params_text,
            return_type_text=ret_text.strip(),
            body=body,
        )

    def _skip_top_level_item(self) -> None:
        """Skip one non-function top-level construct (decl, struct, etc.)."""
        while not self.eof():
            tok = self.next()
            if tok.text == ";":
                return
            if tok.text == "{":
                depth = 1
                while not self.eof() and depth:
                    t = self.next().text
                    if t == "{":
                        depth += 1
                    elif t == "}":
                        depth -= 1
                # struct { ... } x; — keep consuming to the ';' if adjacent.
                if self.at(";"):
                    self.next()
                return

    # ---- statements -----------------------------------------------------

    def parse_block(self) -> BlockStmt:
        open_tok = self.expect("{")
        stmts: list[Stmt] = []
        while not self.eof() and not self.at("}"):
            stmts.append(self.parse_statement())
        close_tok = self.next() if not self.eof() else self.tokens[-1]
        return BlockStmt(open_tok.line, close_tok.line, stmts=stmts)

    def parse_statement(self) -> Stmt:
        tok = self.peek()
        assert tok is not None
        if tok.text == "{":
            return self.parse_block()
        if tok.kind is TokenKind.KEYWORD:
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do,
                "for": self._parse_for,
                "switch": self._parse_switch,
                "return": self._parse_return,
                "goto": self._parse_goto,
                "break": self._parse_break,
                "continue": self._parse_continue,
                "case": self._parse_case,
                "default": self._parse_case,
                "else": None,  # dangling else: treat as opaque
            }.get(tok.text, self._parse_simple)
            if handler is None:
                return self._parse_simple()
            return handler()
        if tok.text == ";":
            self.next()
            return NullStmt(tok.line, tok.line)
        # Label: 'ident :' not followed by ':' (avoid '::').
        nxt = self.peek(1)
        if (
            tok.kind is TokenKind.IDENTIFIER
            and nxt is not None
            and nxt.text == ":"
            and (self.peek(2) is None or self.peek(2).text != ":")
        ):
            self.next()
            self.next()
            if self.eof() or self.at("}"):
                return LabelStmt(tok.line, tok.line, name=tok.text, stmt=None)
            inner = self.parse_statement()
            return LabelStmt(tok.line, inner.end_line, name=tok.text, stmt=inner)
        return self._parse_simple()

    def _parse_paren_expr(self) -> tuple[Expr, Token, Token]:
        """Parse ``( ... )`` returning (expr, open_token, close_token)."""
        open_idx = self.pos
        open_tok, close_tok = self.skip_balanced("(")
        close_idx = self.pos - 1
        if close_idx <= open_idx + 1:  # '()' or unbalanced-at-EOF
            expr = Expr(
                open_tok.line,
                close_tok.line,
                text="",
                start_col=open_tok.col + 1,
                end_col=close_tok.col if close_tok is not open_tok else open_tok.col + 1,
            )
            return expr, open_tok, close_tok
        first_inner = self.tokens[open_idx + 1]
        last_inner = self.tokens[close_idx - 1]
        expr = Expr(
            first_inner.line,
            last_inner.line,
            text=self.text_between(first_inner, last_inner),
            start_col=first_inner.col,
            end_col=last_inner.col + len(last_inner.text),
        )
        return expr, open_tok, close_tok

    def _parse_if(self) -> IfStmt:
        kw = self.next()
        cond, open_tok, close_tok = self._parse_paren_expr()
        then_braced = self.at("{")
        then = self.parse_statement()
        orelse: Stmt | None = None
        end_line = then.end_line
        if self.at_keyword("else"):
            self.next()
            orelse = self.parse_statement()
            end_line = orelse.end_line
        return IfStmt(
            kw.line,
            end_line,
            cond=cond,
            then=then,
            orelse=orelse,
            cond_open_line=open_tok.line,
            cond_open_col=open_tok.col,
            cond_close_line=close_tok.line,
            cond_close_col=close_tok.col,
            then_braced=then_braced,
        )

    def _parse_while(self) -> WhileStmt:
        kw = self.next()
        cond, _, _ = self._parse_paren_expr()
        body = self.parse_statement()
        return WhileStmt(kw.line, body.end_line, cond=cond, body=body)

    def _parse_do(self) -> DoWhileStmt:
        kw = self.next()
        body = self.parse_statement()
        end_line = body.end_line
        cond = Expr(end_line, end_line, text="")
        if self.at_keyword("while"):
            self.next()
            cond, _, close_tok = self._parse_paren_expr()
            end_line = close_tok.line
            if self.at(";"):
                self.next()
        return DoWhileStmt(kw.line, end_line, body=body, cond=cond)

    def _parse_for(self) -> ForStmt:
        kw = self.next()
        clauses, _, _ = self._parse_paren_expr()
        body = self.parse_statement()
        return ForStmt(kw.line, body.end_line, clauses=clauses.text, body=body)

    def _parse_switch(self) -> SwitchStmt:
        kw = self.next()
        cond, _, _ = self._parse_paren_expr()
        body = self.parse_statement()
        return SwitchStmt(kw.line, body.end_line, cond=cond, body=body)

    def _parse_case(self) -> CaseLabel:
        kw = self.next()
        first = kw
        last = kw
        while not self.eof() and not self.at(":"):
            last = self.next()
        if not self.eof():
            self.next()  # ':'
        return CaseLabel(first.line, last.line, label_text=self.text_between(first, last))

    def _parse_return(self) -> ReturnStmt:
        kw = self.next()
        first = None
        last = kw
        while not self.eof() and not self.at(";"):
            tok = self.next()
            if first is None:
                first = tok
            last = tok
            if tok.text == "(":
                # Balance inner parens (e.g. return f(a, b);).
                depth = 1
                while not self.eof() and depth:
                    t = self.next()
                    last = t
                    if t.text == "(":
                        depth += 1
                    elif t.text == ")":
                        depth -= 1
        if not self.eof():
            self.next()  # ';'
        value = self.text_between(first, last) if first is not None else ""
        return ReturnStmt(kw.line, last.line, value_text=value)

    def _parse_goto(self) -> GotoStmt:
        kw = self.next()
        label = ""
        last = kw
        if not self.eof() and self.peek().kind is TokenKind.IDENTIFIER:
            tok = self.next()
            label = tok.text
            last = tok
        if self.at(";"):
            self.next()
        return GotoStmt(kw.line, last.line, label=label)

    def _parse_break(self) -> BreakStmt:
        kw = self.next()
        if self.at(";"):
            self.next()
        return BreakStmt(kw.line, kw.line)

    def _parse_continue(self) -> ContinueStmt:
        kw = self.next()
        if self.at(";"):
            self.next()
        return ContinueStmt(kw.line, kw.line)

    def _parse_simple(self) -> Stmt:
        """Expression or declaration statement: consume to ';' at depth 0."""
        first = self.next()
        last = first
        depth = 0
        is_decl = first.kind is TokenKind.KEYWORD and first.text in TYPE_KEYWORDS
        if first.kind is TokenKind.IDENTIFIER:
            nxt = self.peek()
            # 'Type name ...' or 'Type *name ...' heuristics.
            if nxt is not None and (
                nxt.kind is TokenKind.IDENTIFIER
                or (nxt.text == "*" and self.peek(1) is not None and self.peek(1).kind is TokenKind.IDENTIFIER)
            ):
                is_decl = True
        while not self.eof():
            if depth == 0 and self.at(";"):
                self.next()
                break
            if depth == 0 and self.at("}"):
                break  # unterminated statement at block end
            tok = self.next()
            last = tok
            if tok.text in ("(", "[", "{"):
                depth += 1
            elif tok.text in (")", "]", "}"):
                depth = max(0, depth - 1)
        text = self.text_between(first, last)
        if is_decl:
            return DeclStmt(first.line, last.line, text=text)
        return ExprStmt(first.line, last.line, text=text)
