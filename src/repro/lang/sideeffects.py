"""Side-effect analysis of C expressions.

The Fig. 5 variants (and several checkers in :mod:`repro.staticcheck`) are
only sound for conditions without side effects: variants 3-8 evaluate the
original ``COND`` up to twice, so an assignment, ``++``/``--``, or function
call inside it would change program behaviour.  This module classifies an
expression's source text at the token level — the same approximation the
paper's tooling makes, but checked instead of assumed.

``sizeof``/``_Alignof`` applications are not calls (they are keywords and
evaluate nothing at run time), and relational ``==`` never counts as an
assignment because the lexer applies maximal munch.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lexer import code_tokens
from .tokens import ASSIGNMENT_OPERATORS, TokenKind

__all__ = ["SideEffect", "expression_side_effects", "is_side_effect_free"]


@dataclass(frozen=True, slots=True)
class SideEffect:
    """One side-effecting construct found in an expression.

    Attributes:
        kind: ``"assignment"``, ``"increment"``, or ``"call"``.
        token: the offending token's text (operator or callee name).
    """

    kind: str
    token: str

    def describe(self) -> str:
        """Human-readable description used in findings and errors."""
        if self.kind == "call":
            return f"call to {self.token}()"
        if self.kind == "increment":
            return f"{self.token} operator"
        return f"assignment via {self.token!r}"


def expression_side_effects(text: str) -> list[SideEffect]:
    """Side-effecting constructs in an expression's source text.

    Args:
        text: the expression source (e.g. an ``if`` condition).

    Returns:
        One :class:`SideEffect` per offending token, in source order; an
        empty list means the expression is safe to re-evaluate.
    """
    tokens = code_tokens(text)
    effects: list[SideEffect] = []
    for i, tok in enumerate(tokens):
        if tok.kind is TokenKind.OPERATOR:
            if tok.text in ("++", "--"):
                effects.append(SideEffect("increment", tok.text))
            elif tok.text in ASSIGNMENT_OPERATORS:
                effects.append(SideEffect("assignment", tok.text))
        elif (
            tok.kind is TokenKind.IDENTIFIER
            and i + 1 < len(tokens)
            and tokens[i + 1].text == "("
        ):
            effects.append(SideEffect("call", tok.text))
    return effects


def is_side_effect_free(text: str) -> bool:
    """True when re-evaluating *text* cannot change program state."""
    return not expression_side_effects(text)
