"""C/C++ language substrate: lexer, token abstraction, AST parser, counters.

Replaces the paper's use of LLVM for AST generation (§III-C-1) with a
self-contained lexer and lightweight parser adequate for locating and
transforming ``if`` statements, and provides the token-level counters that
power the 60-dimensional feature space of Table I.
"""

from .abstraction import abstract_line, abstract_token_texts, abstract_tokens
from .ast_nodes import (
    BlockStmt,
    BreakStmt,
    CaseLabel,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GotoStmt,
    IfStmt,
    LabelStmt,
    Node,
    NullStmt,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    TranslationUnit,
    WhileStmt,
    walk,
)
from .lexer import code_tokens, split_tokens_by_line, tokenize
from .metrics import FragmentCounts, count_fragment, count_lines
from .parser import find_if_statements, parse_function_body, parse_translation_unit
from .sideeffects import SideEffect, expression_side_effects, is_side_effect_free
from .tokens import (
    ALL_KEYWORDS,
    ARITHMETIC_OPERATORS,
    BITWISE_OPERATORS,
    C_KEYWORDS,
    CPP_KEYWORDS,
    JUMP_KEYWORDS,
    LOGICAL_OPERATORS,
    LOOP_KEYWORDS,
    MEMORY_FUNCTIONS,
    RELATIONAL_OPERATORS,
    Token,
    TokenKind,
)

__all__ = [
    "ALL_KEYWORDS",
    "ARITHMETIC_OPERATORS",
    "BITWISE_OPERATORS",
    "BlockStmt",
    "BreakStmt",
    "C_KEYWORDS",
    "CPP_KEYWORDS",
    "CaseLabel",
    "ContinueStmt",
    "DeclStmt",
    "DoWhileStmt",
    "Expr",
    "ExprStmt",
    "ForStmt",
    "FragmentCounts",
    "FunctionDef",
    "GotoStmt",
    "IfStmt",
    "JUMP_KEYWORDS",
    "LOGICAL_OPERATORS",
    "LOOP_KEYWORDS",
    "LabelStmt",
    "MEMORY_FUNCTIONS",
    "Node",
    "NullStmt",
    "RELATIONAL_OPERATORS",
    "ReturnStmt",
    "SideEffect",
    "Stmt",
    "SwitchStmt",
    "Token",
    "TokenKind",
    "TranslationUnit",
    "WhileStmt",
    "abstract_line",
    "abstract_token_texts",
    "abstract_tokens",
    "code_tokens",
    "count_fragment",
    "count_lines",
    "expression_side_effects",
    "find_if_statements",
    "is_side_effect_free",
    "parse_function_body",
    "parse_translation_unit",
    "split_tokens_by_line",
    "tokenize",
    "walk",
]
