"""AST node model for the lightweight C parser.

The node set is deliberately small: the oversampler (§III-C) only needs to
*locate* ``if`` statements (``IfStmt <line:N, line:N>`` in LLVM's output)
and understand enough surrounding structure to rewrite them, and the
categorizer needs statement kinds.  Every node records a 1-based
``start_line``/``end_line`` span, mirroring the LLVM AST fields the paper
uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "BlockStmt",
    "IfStmt",
    "WhileStmt",
    "DoWhileStmt",
    "ForStmt",
    "SwitchStmt",
    "CaseLabel",
    "ReturnStmt",
    "GotoStmt",
    "BreakStmt",
    "ContinueStmt",
    "ExprStmt",
    "DeclStmt",
    "NullStmt",
    "LabelStmt",
    "FunctionDef",
    "TranslationUnit",
    "walk",
]


@dataclass(slots=True)
class Node:
    """Base AST node with a 1-based inclusive line span."""

    start_line: int
    end_line: int

    def children(self) -> tuple["Node", ...]:
        """Direct child nodes (overridden by composites)."""
        return ()

    def span_contains(self, line: int) -> bool:
        """True if *line* lies within this node's span."""
        return self.start_line <= line <= self.end_line


@dataclass(slots=True)
class Expr(Node):
    """An expression, stored as its exact source text.

    Attributes:
        text: the expression's source text (whitespace-normalized newlines
            preserved so multi-line conditions can be re-emitted).
        start_col / end_col: 1-based columns of the first character and of
            the character *after* the last one, for in-place rewriting.
    """

    text: str = ""
    start_col: int = 1
    end_col: int = 1


@dataclass(slots=True)
class Stmt(Node):
    """Base class for statements."""


@dataclass(slots=True)
class BlockStmt(Stmt):
    """``{ ... }``"""

    stmts: list[Stmt] = field(default_factory=list)

    def children(self) -> tuple[Node, ...]:
        return tuple(self.stmts)


@dataclass(slots=True)
class IfStmt(Stmt):
    """``if (cond) then [else orelse]``.

    ``cond_open_line``/``cond_open_col`` locate the opening parenthesis and
    ``cond_close_line``/``cond_close_col`` the closing one, so rewriters can
    splice modified conditions back into the original text.
    """

    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    orelse: Stmt | None = None
    cond_open_line: int = 0
    cond_open_col: int = 0
    cond_close_line: int = 0
    cond_close_col: int = 0
    then_braced: bool = False

    def children(self) -> tuple[Node, ...]:
        kids: list[Node] = [self.cond, self.then]
        if self.orelse is not None:
            kids.append(self.orelse)
        return tuple(kids)


@dataclass(slots=True)
class WhileStmt(Stmt):
    """``while (cond) body``"""

    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]

    def children(self) -> tuple[Node, ...]:
        return (self.cond, self.body)


@dataclass(slots=True)
class DoWhileStmt(Stmt):
    """``do body while (cond);``"""

    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]

    def children(self) -> tuple[Node, ...]:
        return (self.body, self.cond)


@dataclass(slots=True)
class ForStmt(Stmt):
    """``for (clauses) body`` — clauses kept as raw text."""

    clauses: str = ""
    body: Stmt = None  # type: ignore[assignment]

    def children(self) -> tuple[Node, ...]:
        return (self.body,)


@dataclass(slots=True)
class SwitchStmt(Stmt):
    """``switch (cond) body``"""

    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]

    def children(self) -> tuple[Node, ...]:
        return (self.cond, self.body)


@dataclass(slots=True)
class CaseLabel(Stmt):
    """``case expr:`` or ``default:`` (treated as a statement)."""

    label_text: str = ""


@dataclass(slots=True)
class ReturnStmt(Stmt):
    """``return [expr];``"""

    value_text: str = ""


@dataclass(slots=True)
class GotoStmt(Stmt):
    """``goto label;``"""

    label: str = ""


@dataclass(slots=True)
class BreakStmt(Stmt):
    """``break;``"""


@dataclass(slots=True)
class ContinueStmt(Stmt):
    """``continue;``"""


@dataclass(slots=True)
class ExprStmt(Stmt):
    """An expression statement, stored as raw text."""

    text: str = ""


@dataclass(slots=True)
class DeclStmt(Stmt):
    """A (local) declaration statement, stored as raw text."""

    text: str = ""


@dataclass(slots=True)
class NullStmt(Stmt):
    """A bare ``;``."""


@dataclass(slots=True)
class LabelStmt(Stmt):
    """``name: stmt``"""

    name: str = ""
    stmt: Stmt | None = None

    def children(self) -> tuple[Node, ...]:
        return (self.stmt,) if self.stmt is not None else ()


@dataclass(slots=True)
class FunctionDef(Node):
    """A function definition with its body block."""

    name: str = ""
    params_text: str = ""
    return_type_text: str = ""
    body: BlockStmt = None  # type: ignore[assignment]

    def children(self) -> tuple[Node, ...]:
        return (self.body,)


@dataclass(slots=True)
class TranslationUnit(Node):
    """A parsed file: function definitions plus opaque top-level regions."""

    functions: list[FunctionDef] = field(default_factory=list)
    path: str = ""

    def children(self) -> tuple[Node, ...]:
        return tuple(self.functions)

    def function_at(self, line: int) -> FunctionDef | None:
        """The function whose span contains *line*, if any."""
        for fn in self.functions:
            if fn.span_contains(line):
                return fn
        return None


def walk(node: Node) -> Iterator[Node]:
    """Yield *node* and all descendants in pre-order."""
    stack: list[Node] = [node]
    while stack:
        current = stack.pop()
        if current is None:
            continue
        yield current
        stack.extend(reversed(current.children()))
