"""A C/C++ lexer.

Tokenizes full files *and* bare patch fragments (a hunk body is not a
complete translation unit, but it still lexes line by line).  The lexer is
error-tolerant: an unterminated string or block comment at end of input is
closed implicitly rather than raising, because patch fragments routinely cut
constructs in half.  Truly unlexable bytes raise :class:`LexError` only in
``strict`` mode; otherwise they become one-character PUNCT tokens.

The scanner is a single compiled master regex advanced with ``match(pos)``;
this is the hot path of the whole package (feature extraction, parsing, and
corpus generation all lex), so the loop avoids per-character Python work.
"""

from __future__ import annotations

import re

from ..errors import LexError
from .tokens import ALL_KEYWORDS, OPERATORS, Token, TokenKind

__all__ = ["tokenize", "code_tokens", "split_tokens_by_line"]

_OP_ALTERNATION = "|".join(re.escape(op) for op in OPERATORS)

_MASTER = re.compile(
    r"""
    (?P<WS>[ \t\r\f\v]+)
  | (?P<LINECONT>\\\n)
  | (?P<NEWLINE>\n)
  | (?P<COMMENT>//[^\n]*|/\*(?s:.*?)(?:\*/|$))
  | (?P<STRING>(?:u8|[LuU])?"(?:\\.|[^"\\\n])*(?:"|(?=\n)|$))
  | (?P<CHAR>(?:[LuU])?'(?:\\.|[^'\\\n])*(?:'|(?=\n)|$))
  | (?P<NUMBER>0[xX][0-9a-fA-F]+[uUlL]*|(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?[uUlLfF]*)
  | (?P<IDENT>[A-Za-z_$][A-Za-z0-9_$]*)
  | (?P<PUNCT>[()\[\]{};])
  | (?P<OP>%s)
  | (?P<HASH>\#)
  | (?P<OTHER>.)
    """
    % _OP_ALTERNATION,
    re.VERBOSE,
)

_QUOTE_FIX = {"STRING": '"', "CHAR": "'"}


def tokenize(
    source: str,
    keep_comments: bool = False,
    keep_newlines: bool = False,
    strict: bool = False,
) -> list[Token]:
    """Tokenize C/C++ *source*.

    Args:
        source: source text (a full file or a fragment).
        keep_comments: include COMMENT tokens in the output.
        keep_newlines: include NEWLINE tokens (one per physical newline
            outside comments/strings).
        strict: raise :class:`LexError` on unexpected characters instead of
            passing them through as punctuation.

    Returns:
        Tokens in source order (no EOF sentinel).
    """
    tokens: list[Token] = []
    append = tokens.append
    match = _MASTER.match
    i = 0
    line = 1
    col = 1
    n = len(source)
    at_line_start = True  # only whitespace seen since the last newline

    while i < n:
        m = match(source, i)
        kind = m.lastgroup
        text = m.group()
        tline, tcol = line, col

        if kind == "WS":
            i = m.end()
            col += len(text)
            continue
        if kind == "NEWLINE":
            if keep_newlines:
                append(Token(TokenKind.NEWLINE, "\n", tline, tcol))
            i = m.end()
            line += 1
            col = 1
            at_line_start = True
            continue
        if kind == "LINECONT":
            i = m.end()
            line += 1
            col = 1
            continue
        if kind == "COMMENT":
            if keep_comments:
                append(Token(TokenKind.COMMENT, text, tline, tcol))
            newlines = text.count("\n")
            if newlines:
                line += newlines
                col = len(text) - text.rfind("\n")
            else:
                col += len(text)
            i = m.end()
            continue
        if kind == "HASH" and at_line_start:
            j = _end_of_directive(source, i)
            text = source[i:j]
            append(Token(TokenKind.PREPROCESSOR, text, tline, tcol))
            newlines = text.count("\n")
            line += newlines
            col = 1 if newlines else col + len(text)
            i = j
            at_line_start = False
            continue

        at_line_start = False
        if kind == "STRING" or kind == "CHAR":
            quote = _QUOTE_FIX[kind]
            if not text.endswith(quote) or len(text.lstrip("Lu8U")) < 2:
                text_fixed = text + quote  # close unterminated literal
            else:
                text_fixed = text
            tok_kind = TokenKind.STRING if kind == "STRING" else TokenKind.CHAR
            append(Token(tok_kind, text_fixed, tline, tcol))
        elif kind == "NUMBER":
            append(Token(TokenKind.NUMBER, text, tline, tcol))
        elif kind == "IDENT":
            tok_kind = TokenKind.KEYWORD if text in ALL_KEYWORDS else TokenKind.IDENTIFIER
            append(Token(tok_kind, text, tline, tcol))
        elif kind == "PUNCT":
            append(Token(TokenKind.PUNCT, text, tline, tcol))
        elif kind == "OP":
            append(Token(TokenKind.OPERATOR, text, tline, tcol))
        else:  # HASH not at line start, or OTHER
            if strict and kind == "OTHER":
                raise LexError(f"unexpected character {text!r} at line {line}, col {col}")
            append(Token(TokenKind.PUNCT, text, tline, tcol))
        i = m.end()
        col += len(text)

    return tokens


def _end_of_directive(source: str, i: int) -> int:
    """Index just past a preprocessor directive, honoring '\\' continuations."""
    n = len(source)
    while True:
        j = source.find("\n", i)
        if j < 0:
            return n
        k = j - 1
        while k >= 0 and source[k] in " \t\r":
            k -= 1
        if k >= 0 and source[k] == "\\":
            i = j + 1
            continue
        return j


def code_tokens(source: str) -> list[Token]:
    """Tokenize and keep only code tokens (no comments or newlines)."""
    return [t for t in tokenize(source) if t.kind not in (TokenKind.COMMENT, TokenKind.NEWLINE)]


def split_tokens_by_line(tokens: list[Token]) -> dict[int, list[Token]]:
    """Group tokens by their source line number."""
    by_line: dict[int, list[Token]] = {}
    for tok in tokens:
        by_line.setdefault(tok.line, []).append(tok)
    return by_line
