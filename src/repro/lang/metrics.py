"""Syntactic counters over code fragments.

These power the language-level features of Table I (features 11-46).  They
operate on *fragments* — a patch's added or removed lines are not a complete
program unit, so everything here is token-stream counting rather than full
parsing.  The counting conventions follow the paper's description:

* ``if`` statements  — occurrences of the ``if`` keyword (``else if``
  contributes one).
* loops             — ``for``/``while``/``do`` keywords, except the ``while``
  of a ``do ... while`` tail is not double counted (approximated by
  skipping a ``while`` immediately preceded by ``}``).
* function calls    — identifier directly followed by ``(`` that is not a
  control keyword and not a definition header (fragments rarely contain
  definition headers; the approximation matches the paper's parser).
* operators         — per-class counts over OPERATOR tokens; ``&``/``*`` are
  context-disambiguated only coarsely (a ``&``/``*`` after an identifier,
  literal, or ``)``/``]`` is binary, otherwise unary and — for ``&``/``*`` —
  counted as bitwise/arithmetic anyway, which mirrors the original
  line-level parser).
* variables         — distinct non-call identifiers that are not keywords
  or known memory functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lexer import code_tokens
from .tokens import (
    ARITHMETIC_OPERATORS,
    BITWISE_OPERATORS,
    JUMP_KEYWORDS,
    LOGICAL_OPERATORS,
    LOOP_KEYWORDS,
    MEMORY_FUNCTIONS,
    RELATIONAL_OPERATORS,
    Token,
    TokenKind,
)

__all__ = ["FragmentCounts", "count_fragment", "count_lines"]


@dataclass(slots=True)
class FragmentCounts:
    """Aggregated syntactic counts for a code fragment."""

    if_statements: int = 0
    loops: int = 0
    function_calls: int = 0
    arithmetic_operators: int = 0
    relational_operators: int = 0
    logical_operators: int = 0
    bitwise_operators: int = 0
    memory_operators: int = 0
    jumps: int = 0
    variables: set[str] = field(default_factory=set)
    functions: set[str] = field(default_factory=set)
    tokens: int = 0

    @property
    def variable_count(self) -> int:
        """Number of distinct variable identifiers."""
        return len(self.variables)

    @property
    def function_count(self) -> int:
        """Number of distinct called/defined function names."""
        return len(self.functions)

    def merge(self, other: "FragmentCounts") -> "FragmentCounts":
        """Return the element-wise sum/union of two counts."""
        return FragmentCounts(
            if_statements=self.if_statements + other.if_statements,
            loops=self.loops + other.loops,
            function_calls=self.function_calls + other.function_calls,
            arithmetic_operators=self.arithmetic_operators + other.arithmetic_operators,
            relational_operators=self.relational_operators + other.relational_operators,
            logical_operators=self.logical_operators + other.logical_operators,
            bitwise_operators=self.bitwise_operators + other.bitwise_operators,
            memory_operators=self.memory_operators + other.memory_operators,
            jumps=self.jumps + other.jumps,
            variables=self.variables | other.variables,
            functions=self.functions | other.functions,
            tokens=self.tokens + other.tokens,
        )


_BINARY_LEFT_KINDS = (TokenKind.IDENTIFIER, TokenKind.NUMBER, TokenKind.STRING, TokenKind.CHAR)
_CONTROL_NAMES = frozenset({"if", "for", "while", "switch", "sizeof", "return", "do", "else", "case"})


def count_fragment(source: str) -> FragmentCounts:
    """Count syntactic constructs in a code fragment."""
    return _count_tokens(code_tokens(source))


def count_lines(lines: list[str]) -> FragmentCounts:
    """Count syntactic constructs across several fragment lines.

    Lines are lexed jointly so multi-line constructs (a condition split
    across lines) still count once.
    """
    return count_fragment("\n".join(lines))


def _count_tokens(tokens: list[Token]) -> FragmentCounts:
    counts = FragmentCounts()
    counts.tokens = len(tokens)
    for idx, tok in enumerate(tokens):
        prev = tokens[idx - 1] if idx > 0 else None
        nxt = tokens[idx + 1] if idx + 1 < len(tokens) else None

        if tok.kind is TokenKind.KEYWORD:
            if tok.text == "if":
                counts.if_statements += 1
            elif tok.text in LOOP_KEYWORDS:
                # Do not double-count the 'while' of 'do { ... } while'.
                if tok.text == "while" and prev is not None and prev.text == "}":
                    pass
                else:
                    counts.loops += 1
            elif tok.text in JUMP_KEYWORDS:
                counts.jumps += 1
            if tok.text in ("new", "delete"):
                counts.memory_operators += 1
            continue

        if tok.kind is TokenKind.IDENTIFIER:
            is_call = nxt is not None and nxt.text == "(" and nxt.kind is TokenKind.PUNCT
            if tok.text in MEMORY_FUNCTIONS:
                counts.memory_operators += 1
                if is_call:
                    counts.function_calls += 1
                    counts.functions.add(tok.text)
                continue
            if is_call and tok.text not in _CONTROL_NAMES:
                counts.function_calls += 1
                counts.functions.add(tok.text)
            else:
                counts.variables.add(tok.text)
            continue

        if tok.kind is TokenKind.OPERATOR:
            text = tok.text
            if text in LOGICAL_OPERATORS:
                counts.logical_operators += 1
            elif text in RELATIONAL_OPERATORS:
                counts.relational_operators += 1
            elif text in ("&", "*"):
                # Disambiguate address-of/deref from binary and/multiply.
                left_is_value = prev is not None and (
                    prev.kind in _BINARY_LEFT_KINDS or prev.text in (")", "]")
                )
                if left_is_value:
                    if text == "&":
                        counts.bitwise_operators += 1
                    else:
                        counts.arithmetic_operators += 1
                # Unary & / * are pointer operators; Table I does not count
                # them in any class, matching the paper's line parser.
            elif text in BITWISE_OPERATORS:
                counts.bitwise_operators += 1
            elif text in ARITHMETIC_OPERATORS:
                counts.arithmetic_operators += 1
    return counts
