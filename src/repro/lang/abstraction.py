"""Token abstraction.

Table I distinguishes Levenshtein/same-hunk features computed *before* and
*after* token abstraction (features 49-56).  Abstraction replaces concrete
identifiers and literals with canonical placeholders so that two hunks that
differ only in naming map to the same abstract string:

* function-call names   -> ``FUNC``
* other identifiers     -> ``VAR``
* numeric literals      -> ``NUM``
* string literals       -> ``STR``
* character literals    -> ``CHR``

Keywords, operators, and punctuation are preserved — they carry the
control-flow and operator structure the features care about.
"""

from __future__ import annotations

from .lexer import tokenize
from .tokens import Token, TokenKind

__all__ = ["abstract_tokens", "abstract_line", "abstract_token_texts"]

_PLACEHOLDERS = {
    TokenKind.NUMBER: "NUM",
    TokenKind.STRING: "STR",
    TokenKind.CHAR: "CHR",
}


def abstract_tokens(tokens: list[Token]) -> list[str]:
    """Map a token list to its abstract text sequence."""
    out: list[str] = []
    for idx, tok in enumerate(tokens):
        if tok.kind is TokenKind.IDENTIFIER:
            nxt = tokens[idx + 1] if idx + 1 < len(tokens) else None
            is_call = nxt is not None and nxt.kind is TokenKind.PUNCT and nxt.text == "("
            out.append("FUNC" if is_call else "VAR")
        elif tok.kind in _PLACEHOLDERS:
            out.append(_PLACEHOLDERS[tok.kind])
        elif tok.kind is TokenKind.PREPROCESSOR:
            out.append("#PP")
        elif tok.kind in (TokenKind.COMMENT, TokenKind.NEWLINE):
            continue
        else:
            out.append(tok.text)
    return out


def abstract_token_texts(source: str) -> list[str]:
    """Tokenize *source* and return its abstract token sequence."""
    return abstract_tokens(tokenize(source))


def abstract_line(source: str) -> str:
    """Abstract a single source line to a space-joined canonical string."""
    return " ".join(abstract_token_texts(source))
