"""Token model and C/C++ vocabulary tables.

The tables here drive both the lexer and the syntactic feature counters of
Table I (arithmetic/relational/logical/bitwise/memory operators, loops,
jumps, etc.).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "TokenKind",
    "Token",
    "C_KEYWORDS",
    "CPP_KEYWORDS",
    "ALL_KEYWORDS",
    "TYPE_KEYWORDS",
    "LOOP_KEYWORDS",
    "JUMP_KEYWORDS",
    "ARITHMETIC_OPERATORS",
    "RELATIONAL_OPERATORS",
    "LOGICAL_OPERATORS",
    "BITWISE_OPERATORS",
    "ASSIGNMENT_OPERATORS",
    "MEMORY_FUNCTIONS",
    "OPERATORS",
    "PUNCTUATION",
]


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    OPERATOR = "operator"
    PUNCT = "punct"
    COMMENT = "comment"
    PREPROCESSOR = "preprocessor"
    NEWLINE = "newline"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: lexical category.
        text: exact source text of the token.
        line: 1-based source line of the token's first character.
        col: 1-based source column of the token's first character.
    """

    kind: TokenKind
    text: str
    line: int = 0
    col: int = 0

    def is_identifier(self, name: str | None = None) -> bool:
        """True if the token is an identifier (optionally a specific one)."""
        return self.kind is TokenKind.IDENTIFIER and (name is None or self.text == name)


C_KEYWORDS: frozenset[str] = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    _Bool _Complex _Imaginary _Alignas _Alignof _Atomic _Static_assert
    _Noreturn _Thread_local _Generic
    """.split()
)

CPP_KEYWORDS: frozenset[str] = frozenset(
    """
    alignas alignof and and_eq asm bitand bitor bool catch class compl
    constexpr const_cast decltype delete dynamic_cast explicit export false
    friend mutable namespace new noexcept not not_eq nullptr operator or
    or_eq private protected public reinterpret_cast static_assert
    static_cast template this throw true try typeid typename using virtual
    wchar_t xor xor_eq final override
    """.split()
)

ALL_KEYWORDS: frozenset[str] = C_KEYWORDS | CPP_KEYWORDS

#: Keywords that begin a type in declarations (used by the variable counter).
TYPE_KEYWORDS: frozenset[str] = frozenset(
    """
    void char short int long float double signed unsigned bool _Bool
    struct union enum const volatile static extern register auto size_t
    ssize_t uint8_t uint16_t uint32_t uint64_t int8_t int16_t int32_t
    int64_t
    """.split()
)

#: Keywords that open a loop (features 15-18).
LOOP_KEYWORDS: frozenset[str] = frozenset({"for", "while", "do"})

#: Jump statement keywords (Table V, type 9).
JUMP_KEYWORDS: frozenset[str] = frozenset({"goto", "break", "continue", "return"})

#: Binary arithmetic operators (features 23-26).  '*' and '-' are counted
#: even when unary; the paper's parser is a line-level approximation too.
ARITHMETIC_OPERATORS: frozenset[str] = frozenset({"+", "-", "*", "/", "%", "++", "--"})

#: Relational operators (features 27-30).
RELATIONAL_OPERATORS: frozenset[str] = frozenset({"==", "!=", "<", ">", "<=", ">="})

#: Logical operators (features 31-34).
LOGICAL_OPERATORS: frozenset[str] = frozenset({"&&", "||", "!"})

#: Bitwise operators (features 35-38).
BITWISE_OPERATORS: frozenset[str] = frozenset({"&", "|", "^", "~", "<<", ">>"})

#: Assignment operators (used to find variable writes).
ASSIGNMENT_OPERATORS: frozenset[str] = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
)

#: Memory-management functions/operators (features 39-42).
MEMORY_FUNCTIONS: frozenset[str] = frozenset(
    """
    malloc calloc realloc free alloca new delete memcpy memmove memset
    memcmp strdup strndup kmalloc kzalloc kcalloc krealloc kfree vmalloc
    vfree mmap munmap brk sbrk
    """.split()
)

#: All multi/single character operators, longest first for maximal munch.
OPERATORS: tuple[str, ...] = tuple(
    sorted(
        {
            "<<=", ">>=", "...", "->*",
            "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
            "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "->", "::", ".*",
            "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
            "?", ":", ".", ",",
        },
        key=len,
        reverse=True,
    )
)

#: Structural punctuation.
PUNCTUATION: frozenset[str] = frozenset({"(", ")", "{", "}", "[", "]", ";"})
