"""repro — a full reproduction of *PatchDB: A Large-Scale Security Patch
Dataset* (Wang et al., DSN 2021).

The package implements the paper's three construction pipelines and every
substrate they depend on, offline:

* :mod:`repro.patch` / :mod:`repro.diffing` — patch model, parsers, Myers diff.
* :mod:`repro.lang` — C/C++ lexer, token abstraction, lightweight AST parser.
* :mod:`repro.features` — the 60-dimensional Table I feature space.
* :mod:`repro.ml` — from-scratch NumPy classifiers (forest, SVM, SMO, NB,
  TAN, REPTree, perceptron, KNN, SGD, logistic) and a BPTT RNN.
* :mod:`repro.vcs` / :mod:`repro.corpus` / :mod:`repro.nvd` — the simulated
  GitHub + NVD world with ground truth.
* :mod:`repro.core` — nearest link search (Algorithm 1), the augmentation
  loop, baselines, categorizer, and the PatchDB container.
* :mod:`repro.synthesis` — source-level oversampling (Fig. 4/5).
* :mod:`repro.analysis` — per-table experiment runners.

Quickstart::

    from repro.analysis import ExperimentWorld, TINY, build_patchdb

    ew = ExperimentWorld(TINY)
    db = build_patchdb(ew)
    print(db.summary())
"""

from .core.nearest_link import nearest_link_search
from .core.patchdb import PatchDB, PatchRecord
from .features.extractor import extract_features
from .patch.gitformat import parse_patch
from .patch.model import Patch

__version__ = "1.0.0"

__all__ = [
    "Patch",
    "PatchDB",
    "PatchRecord",
    "__version__",
    "extract_features",
    "nearest_link_search",
    "parse_patch",
]
