"""In-memory git-like version control substrate (GitHub replacement)."""

from .objects import Blob, CommitObject, Snapshot, sha1_hex
from .repository import Repository

__all__ = ["Blob", "CommitObject", "Repository", "Snapshot", "sha1_hex"]
