"""The in-memory repository: commits, log, checkout, diff, patch export.

This substrate replaces GitHub in the reproduction.  The oversampler's
"roll back the repository to just before/after the commit" step (§III-C-1)
is :meth:`Repository.before_after`; the crawler's ``.patch`` download is
:meth:`Repository.patch_text`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diffing.unified_gen import diff_texts
from ..errors import ObjectNotFoundError, VcsError
from ..patch.gitformat import render_mbox_patch
from ..patch.model import FileDiff, Patch
from .objects import Blob, CommitObject, Snapshot

__all__ = ["Repository"]


@dataclass(frozen=True, slots=True)
class _LogEntry:
    """One ``git log`` record."""

    sha: str
    subject: str
    author: str
    date: str


class Repository:
    """A single-branch, content-addressed repository.

    Args:
        slug: the ``owner/repo`` identifier used in URLs and patches.
    """

    def __init__(self, slug: str) -> None:
        if "/" not in slug:
            raise VcsError(f"slug must be 'owner/repo', got {slug!r}")
        self.slug = slug
        self._blobs: dict[str, Blob] = {}
        self._snapshots: dict[str, Snapshot] = {}
        self._commits: dict[str, CommitObject] = {}
        self._order: list[str] = []  # commit shas, oldest first
        self.head: str | None = None

    # ---- writing ----------------------------------------------------

    def commit(
        self,
        files: dict[str, str],
        message: str,
        author: str = "Synth Dev <dev@example.org>",
        date: str = "Thu Jan 1 00:00:00 2015 +0000",
    ) -> str:
        """Record a full working tree as a new commit; returns its sha.

        Args:
            files: complete path → content mapping for the new tree.
            message: commit message (subject + optional body).
            author: author string.
            date: author date string.
        """
        mapping: dict[str, str] = {}
        for path, content in files.items():
            blob = Blob(content)
            self._blobs[blob.oid] = blob
            mapping[path] = blob.oid
        snapshot = Snapshot.from_mapping(mapping)
        self._snapshots[snapshot.oid] = snapshot
        commit = CommitObject(
            snapshot_oid=snapshot.oid,
            parent_oid=self.head,
            author=author,
            date=date,
            message=message,
        )
        sha = commit.oid
        if sha in self._commits:
            # Identical content+metadata+parent: disambiguate via message.
            raise VcsError(f"duplicate commit {sha[:12]} in {self.slug}")
        self._commits[sha] = commit
        self._order.append(sha)
        self.head = sha
        return sha

    # ---- reading ----------------------------------------------------

    def __contains__(self, sha: str) -> bool:
        return sha in self._commits

    def __len__(self) -> int:
        return len(self._order)

    def commit_object(self, sha: str) -> CommitObject:
        """Look up a commit by sha."""
        try:
            return self._commits[sha]
        except KeyError:
            raise ObjectNotFoundError(f"no commit {sha!r} in {self.slug}") from None

    def log(self) -> list[_LogEntry]:
        """``git log`` — newest first."""
        entries = []
        for sha in reversed(self._order):
            c = self._commits[sha]
            entries.append(_LogEntry(sha=sha, subject=c.subject, author=c.author, date=c.date))
        return entries

    def shas(self) -> tuple[str, ...]:
        """All commit shas, oldest first."""
        return tuple(self._order)

    def checkout(self, sha: str) -> dict[str, str]:
        """Materialize the working tree at *sha* as path → content."""
        commit = self.commit_object(sha)
        snapshot = self._snapshots[commit.snapshot_oid]
        return {path: self._blobs[oid].content for path, oid in snapshot.entries}

    def file_at(self, sha: str, path: str) -> str | None:
        """Content of *path* at *sha*, or None if absent."""
        commit = self.commit_object(sha)
        snapshot = self._snapshots[commit.snapshot_oid]
        oid = snapshot.as_dict().get(path)
        return self._blobs[oid].content if oid is not None else None

    def before_after(self, sha: str) -> tuple[dict[str, str], dict[str, str]]:
        """Working trees just before and just after *sha* (§III-C-1)."""
        commit = self.commit_object(sha)
        after = self.checkout(sha)
        before = self.checkout(commit.parent_oid) if commit.parent_oid else {}
        return before, after

    # ---- diffing ----------------------------------------------------

    def diff(self, sha: str) -> tuple[FileDiff, ...]:
        """File diffs of *sha* against its parent."""
        before, after = self.before_after(sha)
        diffs: list[FileDiff] = []
        for path in sorted(set(before) | set(after)):
            old = before.get(path, "")
            new = after.get(path, "")
            if old == new:
                continue
            fdiff = diff_texts(old, new, path)
            if fdiff.hunks or fdiff.is_new_file or fdiff.is_deleted_file:
                diffs.append(self._with_blob_ids(fdiff, before, after, path))
        return tuple(diffs)

    def _with_blob_ids(
        self, fdiff: FileDiff, before: dict[str, str], after: dict[str, str], path: str
    ) -> FileDiff:
        from dataclasses import replace

        old_blob = Blob(before[path]).oid[:9] if path in before else ""
        new_blob = Blob(after[path]).oid[:9] if path in after else ""
        return replace(fdiff, old_blob=old_blob, new_blob=new_blob)

    def patch_for(self, sha: str) -> Patch:
        """Export commit *sha* as a :class:`Patch`."""
        commit = self.commit_object(sha)
        return Patch(
            sha=sha,
            message=commit.message,
            files=self.diff(sha),
            author=commit.author,
            date=commit.date,
            repo=self.slug,
        )

    def patch_text(self, sha: str) -> str:
        """The commit rendered as a GitHub ``.patch`` download."""
        return render_mbox_patch(self.patch_for(sha))

    def commit_url(self, sha: str) -> str:
        """The GitHub-style commit URL for *sha*."""
        return f"https://github.com/{self.slug}/commit/{sha}"

    # ---- stats -------------------------------------------------------

    def stats_at_head(self) -> tuple[int, int]:
        """(file count, crude function count) at HEAD, for RepoContext."""
        if self.head is None:
            return 0, 0
        tree = self.checkout(self.head)
        functions = 0
        for content in tree.values():
            # Cheap definition heuristic: ')' then '{' opening at col 0-ish.
            functions += content.count(")\n{") + content.count(") {")
        return len(tree), functions
