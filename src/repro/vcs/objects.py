"""Content-addressed objects of the in-memory version-control substrate.

Mirrors git's object model closely enough that commit hashes behave like
real ones: blobs hash their content, snapshots (trees) hash their sorted
path→blob mapping, commits hash snapshot + parent + metadata.  All ids are
40-hex SHA-1 strings, so they slot directly into the
``github.com/{owner}/{repo}/commit/{hash}`` URL scheme the NVD crawler
expects (§III-A).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["sha1_hex", "Blob", "Snapshot", "CommitObject"]


def sha1_hex(kind: str, payload: bytes) -> str:
    """Git-style object id: ``sha1(b"<kind> <len>\\0<payload>")``."""
    header = f"{kind} {len(payload)}".encode() + b"\x00"
    return hashlib.sha1(header + payload).hexdigest()


@dataclass(frozen=True, slots=True)
class Blob:
    """One file version."""

    content: str

    @property
    def oid(self) -> str:
        """The blob's object id."""
        return sha1_hex("blob", self.content.encode())


@dataclass(frozen=True, slots=True)
class Snapshot:
    """A full working-tree snapshot: path → blob id."""

    entries: tuple[tuple[str, str], ...]  # sorted (path, blob_oid)

    @classmethod
    def from_mapping(cls, mapping: dict[str, str]) -> "Snapshot":
        """Build a snapshot from a path → blob-id dict."""
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self) -> dict[str, str]:
        """Path → blob-id mapping."""
        return dict(self.entries)

    @property
    def oid(self) -> str:
        """The snapshot's object id."""
        payload = "\n".join(f"{path}\x00{oid}" for path, oid in self.entries).encode()
        return sha1_hex("tree", payload)

    @property
    def paths(self) -> tuple[str, ...]:
        """All file paths in the snapshot."""
        return tuple(path for path, _ in self.entries)


@dataclass(frozen=True, slots=True)
class CommitObject:
    """A commit: snapshot + parent + metadata."""

    snapshot_oid: str
    parent_oid: str | None
    author: str
    date: str
    message: str

    @property
    def oid(self) -> str:
        """The commit's object id (its 'sha')."""
        payload = "\n".join(
            [
                f"tree {self.snapshot_oid}",
                f"parent {self.parent_oid or ''}",
                f"author {self.author} {self.date}",
                "",
                self.message,
            ]
        ).encode()
        return sha1_hex("commit", payload)

    @property
    def subject(self) -> str:
        """First line of the commit message."""
        return self.message.split("\n", 1)[0]
