"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build``     — run the full construction pipeline, write a PatchDB JSONL.
* ``augment``   — run the Table II augmentation rounds (the nearest-link loop).
* ``evaluate``  — run the Table III/IV/VI evaluation suite at a scale.
* ``stats``     — summarize an existing PatchDB JSONL (counts, composition).
* ``features``  — print the Table I feature vector of a ``.patch`` file.
* ``categorize``— print the Table V pattern type of a ``.patch`` file.
* ``synthesize``— apply the Fig. 5 variants to a before/after file pair.
* ``lint``      — run the static-analysis suite over a built world (the
  validation gate), a PatchDB JSONL, or a directory of ``.patch`` files.
* ``trace``     — render an exported run trace (span tree + top phases).
* ``serve``     — stand up the long-running HTTP service (query/classify/
  manifest endpoints) over a built world + PatchDB.
* ``bench-serve`` — drive the service with the load generator and write
  per-endpoint req/s + latency quantiles to ``BENCH_serve.json``.

Shared flags come from two parent parsers instead of per-subcommand
re-declarations: ``_world_parent()`` (``--scale``/``--seed``/``--workers``/
``--world-cache``/``--feature-cache``) and ``_obs_parent()`` (``--stats``,
``--stats-json PATH`` with machine-readable merged timers and counters,
``--trace PATH`` with a JSONL span trace for ``repro trace``).

The CLI wraps the library one-to-one; every command is also available
programmatically (see README).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from .analysis.experiments import (
    MEDIUM,
    SMALL,
    TINY,
    ExperimentWorld,
    build_patchdb,
    run_table2,
    run_table3,
    run_table4,
    run_table6,
)
from .core.categorize import categorize_patch
from .core.patchdb import PatchDB
from .core.query import PatchQuery
from .corpus.vulnpatterns import PATTERN_NAMES
from .errors import ReproError
from .features.extractor import extract_features
from .features.vector import FEATURE_NAMES
from .obs import ObsRegistry
from .patch.gitformat import parse_patch

_SCALES = {"tiny": TINY, "small": SMALL, "medium": MEDIUM}


def _experiment_world(args: argparse.Namespace, obs: ObsRegistry, **kwargs) -> ExperimentWorld:
    """Construct the command's ExperimentWorld, honoring the shared flags.

    ``--workers`` parallelizes the sharded world build (and seeds the
    caches' default worker count); ``--world-cache DIR`` loads/persists the
    whole built world as an ``ExperimentWorld.cached`` pickle so repeated
    runs (and CI jobs sharing the artifact) skip construction entirely.
    """
    scale = _SCALES[args.scale]
    if getattr(args, "world_cache", None):
        ew = ExperimentWorld.cached(
            scale, seed=args.seed, cache_dir=args.world_cache, workers=args.workers, obs=obs
        )
        if "ml_workers" in kwargs:
            ew.ml_workers = kwargs["ml_workers"]
        return ew
    return ExperimentWorld(scale, seed=args.seed, workers=args.workers, obs=obs, **kwargs)


def _emit_observability(
    args: argparse.Namespace,
    obs: ObsRegistry,
    manifest: dict,
) -> None:
    """Honor the shared ``--stats`` / ``--stats-json`` / ``--trace`` flags."""
    if getattr(args, "stats", False):
        print(f"\n{obs.report()}", file=sys.stderr)
    if getattr(args, "stats_json", None):
        payload = obs.to_dict()
        payload["manifest"] = manifest
        Path(args.stats_json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote stats to {args.stats_json}", file=sys.stderr)
    if getattr(args, "trace", None):
        obs.export_trace(args.trace, manifest=manifest)
        print(f"wrote trace to {args.trace}", file=sys.stderr)


def _cmd_build(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    print(f"building {scale.name} world (seed {args.seed})...", file=sys.stderr)
    start = time.perf_counter()
    obs = ObsRegistry()
    with obs.span("cli.build", scale=scale.name, seed=args.seed):
        ew = _experiment_world(args, obs, feature_cache=args.feature_cache)
        db = build_patchdb(ew, synthesize=not args.no_synthetic)
        db.save_jsonl(args.output)
    for key, value in db.summary().items():
        print(f"{key:>24s}: {value}")
    if args.feature_cache:
        path = ew.cache.save(args.feature_cache)
        print(f"persisted {len(ew.cache)} feature vectors to {path}", file=sys.stderr)
    _emit_observability(
        args,
        ew.obs,
        ew.manifest(
            command="build",
            output=str(args.output),
            records=len(db),
            wall_clock_s=round(time.perf_counter() - start, 3),
        ),
    )
    print(f"wrote {len(db)} records to {args.output}", file=sys.stderr)
    return 0


def _cmd_augment(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    print(f"building {scale.name} world (seed {args.seed})...", file=sys.stderr)
    start = time.perf_counter()
    obs = ObsRegistry()
    with obs.span("cli.augment", scale=scale.name, seed=args.seed):
        ew = _experiment_world(args, obs, feature_cache=args.feature_cache)
        outcome = run_table2(ew)
    print("Table II — wild-based dataset construction")
    print(outcome.table())
    print(
        f"wild security patches found: {outcome.wild_security_count} "
        f"(seed {len(ew.nvd_seed_shas)} NVD patches)"
    )
    if args.feature_cache:
        path = ew.cache.save(args.feature_cache)
        print(f"persisted {len(ew.cache)} feature vectors to {path}", file=sys.stderr)
    _emit_observability(
        args,
        ew.obs,
        ew.manifest(
            command="augment",
            rounds=len(outcome.rounds),
            wild_security=outcome.wild_security_count,
            wall_clock_s=round(time.perf_counter() - start, 3),
        ),
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    tables = [t.strip() for t in args.tables.split(",") if t.strip()]
    unknown = [t for t in tables if t not in ("3", "4", "6")]
    if unknown:
        print(f"unknown table(s): {', '.join(unknown)} (choose from 3,4,6)", file=sys.stderr)
        return 2
    scale = _SCALES[args.scale]
    print(f"building {scale.name} world (seed {args.seed})...", file=sys.stderr)
    start = time.perf_counter()
    obs = ObsRegistry()
    with obs.span("cli.evaluate", scale=scale.name, seed=args.seed, tables=args.tables):
        ew = _experiment_world(
            args,
            obs,
            feature_cache=args.feature_cache,
            token_cache=args.token_cache,
            ml_workers=args.ml_workers,
        )
        models = None
        if args.model_cache:
            from .ml.model_cache import FittedModelCache

            models = FittedModelCache(persist_path=args.model_cache, obs=obs)
        if "3" in tables:
            print("Table III — augmentation methods")
            for row in run_table3(ew):
                print(row.row())
        if "4" in tables:
            print("\nTable IV — synthetic patches")
            print(run_table4(ew, model_cache=models).table())
        if "6" in tables:
            print("\nTable VI — cross-source generalization")
            print(run_table6(ew, model_cache=models).table())
    if args.model_cache and models is not None:
        models.save()
        print(f"persisted {len(models)} fitted models to {args.model_cache}", file=sys.stderr)
    if args.feature_cache:
        path = ew.cache.save(args.feature_cache)
        print(f"persisted {len(ew.cache)} feature vectors to {path}", file=sys.stderr)
    if args.token_cache:
        path = ew.tokens.save(args.token_cache)
        print(f"persisted {len(ew.tokens)} token sequences to {path}", file=sys.stderr)
    _emit_observability(
        args,
        ew.obs,
        ew.manifest(
            command="evaluate",
            tables=",".join(tables),
            wall_clock_s=round(time.perf_counter() - start, 3),
        ),
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = PatchDB.load_jsonl(args.patchdb)
    for key, value in db.summary().items():
        print(f"{key:>24s}: {value}")
    from collections import Counter

    types = Counter(
        r.pattern_type
        for r in db.records(PatchQuery(is_security=True))
        if r.pattern_type is not None
    )
    total = sum(types.values())
    if total:
        print("\nsecurity patch composition:")
        for t in sorted(PATTERN_NAMES):
            share = types.get(t, 0) / total
            print(f"  {t:>2d} {PATTERN_NAMES[t]:<40s} {share:6.1%}")
    return 0


def _read_text(path: str | Path, what: str = "file") -> str:
    """Read a text file, folding OS failures into a clean CLI error."""
    try:
        return Path(path).read_text()
    except OSError as exc:
        reason = exc.strerror or type(exc).__name__
        raise ReproError(f"cannot read {what} {str(path)!r}: {reason}") from exc


def _read_patch(path: str):
    return parse_patch(_read_text(path, "patch file"))


def _cmd_features(args: argparse.Namespace) -> int:
    patch = _read_patch(args.patch)
    vec = extract_features(patch)
    for name, value in zip(FEATURE_NAMES, vec):
        if value != 0 or args.all:
            print(f"{name:>28s}: {value:g}")
    return 0


def _cmd_categorize(args: argparse.Namespace) -> int:
    patch = _read_patch(args.patch)
    kind = categorize_patch(patch)
    print(f"{kind}\t{PATTERN_NAMES[kind]}")
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from .diffing.unified_gen import diff_texts
    from .patch.unified import render_file_diff
    from .synthesis.variants import VARIANTS
    from .synthesis.engine import synthesize_from_texts

    before = _read_text(args.before, "source file")
    after = _read_text(args.after, "source file")
    produced = 0
    for variant in VARIANTS:
        if args.variant and variant.variant_id != args.variant:
            continue
        result = synthesize_from_texts(before, after, args.before, variant, side=args.side)
        if result is None:
            continue
        new_before, new_after = result
        print(f"# variant {variant.variant_id}: {variant.description}")
        print(render_file_diff(diff_texts(new_before, new_after, args.before)))
        print()
        produced += 1
    if not produced:
        print("no if-statement site found in the changed region", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .corpus.world import build_world
    from .obs import ObsRegistry
    from .staticcheck import (
        CHECKER_IDS,
        LintReport,
        Severity,
        lint_sources,
        make_checkers,
        patch_fragments,
        run_gate,
    )

    start = time.perf_counter()
    obs = ObsRegistry()
    gate_result = None
    manifest: dict = {
        "format": "repro-run-manifest-v1",
        "command": "lint",
        "target": args.target,
        "created_unix": time.time(),
    }
    with obs.span("cli.lint", target=args.target):
        if args.target is None:
            # No target: build a world at --scale and run the full gate.
            scale = _SCALES[args.scale]
            print(f"building {scale.name} world (seed {args.seed})...", file=sys.stderr)
            if getattr(args, "world_cache", None):
                from .analysis.experiments import ExperimentWorld

                world = ExperimentWorld.cached(
                    scale,
                    seed=args.seed,
                    cache_dir=args.world_cache,
                    workers=args.workers,
                    obs=obs,
                ).world
            else:
                with obs.span(
                    "world.build", scale=scale.name, seed=args.seed, workers=args.workers
                ):
                    world = build_world(
                        scale.world_config(args.seed), workers=args.workers, obs=obs
                    )
            stats = world.build_stats or {}
            manifest.update(
                scale=scale.name,
                seed=args.seed,
                world_digest=world.digest(),
                commits_attempted=stats.get("attempted"),
                commits_produced=stats.get("produced"),
                commits_skipped=stats.get("skipped_no_c_paths", 0)
                + stats.get("skipped_exhausted", 0),
            )
            gate_result = run_gate(
                world, workers=args.workers, variant_sample=args.variant_sample, obs=obs
            )
            report = gate_result.report
        else:
            target = Path(args.target)
            if target.is_dir():
                items = [
                    (str(p), _read_patch(str(p))) for p in sorted(target.glob("*.patch"))
                ]
                pairs = [(path, frag) for path, p in items for frag in patch_fragments(p)]
                report = lint_sources(
                    [(f"{path}:{fp}", text) for path, (fp, text) in pairs],
                    workers=args.workers,
                    obs=obs,
                    fragments=True,
                )
            elif target.suffix == ".jsonl":
                # Synthetic records carry _SYS_ scaffolding by construction, so
                # the scaffold-leak checker only applies to natural records.
                natural_pairs: list[tuple[str, str]] = []
                synthetic_pairs: list[tuple[str, str]] = []
                for record in PatchDB.iter_jsonl(target):
                    dest = synthetic_pairs if record.source == "synthetic" else natural_pairs
                    for fp, text in patch_fragments(record.patch):
                        dest.append((f"{record.patch.sha[:12]}:{fp}", text))
                no_scaffold = make_checkers([c for c in CHECKER_IDS if c != "scaffold-leak"])
                rep_nat = lint_sources(
                    natural_pairs, workers=args.workers, obs=obs, fragments=True
                )
                rep_syn = lint_sources(
                    synthetic_pairs,
                    checkers=no_scaffold,
                    workers=args.workers,
                    obs=obs,
                    fragments=True,
                )
                report = LintReport(
                    files=sorted(rep_nat.files + rep_syn.files, key=lambda fr: fr.path)
                )
            else:
                report = lint_sources(
                    [(str(target), _read_text(target, "lint target"))],
                    workers=args.workers,
                    obs=obs,
                )

    if args.baseline:
        baseline_ids = LintReport.from_json(
            _read_text(args.baseline, "lint baseline")
        ).finding_ids()
        n_before = sum(len(fr.findings) for fr in report.files)
        report = report.apply_baseline(baseline_ids)
        manifest["baseline_suppressed"] = n_before - sum(
            len(fr.findings) for fr in report.files
        )
        if gate_result is not None:
            gate_result.report = report

    if args.format == "json":
        import json as _json

        payload = _json.loads(report.to_json())
        if gate_result is not None:
            payload["gate"] = gate_result.summary()
            payload["gate"]["variant_failures_detail"] = gate_result.variant_failures
        text = _json.dumps(payload, indent=2, sort_keys=True)
    else:
        text = (
            gate_result.render_text(max_findings=args.max_findings)
            if gate_result is not None
            else report.render_text(max_findings=args.max_findings)
        )
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote report to {args.output}", file=sys.stderr)
    else:
        print(text)
    manifest["files_linted"] = obs.count("files_linted")
    manifest["wall_clock_s"] = round(time.perf_counter() - start, 3)
    _emit_observability(args, obs, manifest)

    if args.fail_on == "never":
        return 0
    failing = report.findings(Severity.GATE)
    if args.fail_on == "warning":
        failing = failing + report.findings(Severity.WARNING)
    if gate_result is not None and gate_result.variant_failures:
        return 1
    return 1 if failing else 0


def _cmd_autofix(args: argparse.Namespace) -> int:
    import hashlib

    from .autofix import DEFAULT_KINDS, AutofixConfig, autofix_world

    start = time.perf_counter()
    obs = ObsRegistry()
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip()) if args.kinds else DEFAULT_KINDS
    config = AutofixConfig(kinds=kinds, dataflow=not args.heuristic)
    config.validate()
    manifest: dict = {
        "format": "repro-run-manifest-v1",
        "command": "autofix",
        "created_unix": time.time(),
    }
    with obs.span("cli.autofix", scale=args.scale, dataflow=config.dataflow):
        print(f"building {args.scale} world (seed {args.seed})...", file=sys.stderr)
        world = _experiment_world(args, obs).world
        manifest.update(scale=args.scale, seed=args.seed, world_digest=world.digest())
        report = autofix_world(
            world,
            config=config,
            workers=args.workers,
            obs=obs,
            max_files=args.max_files,
        )
    print(report.render_text())

    if args.report:
        Path(args.report).write_text(report.to_json() + "\n")
        print(f"wrote autofix report to {args.report}", file=sys.stderr)
    if args.artifacts:
        art_dir = Path(args.artifacts)
        art_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for outcome in report.outcomes:
            if not outcome.planted:
                continue
            tag = hashlib.sha1(
                f"{outcome.plant.path}|{outcome.plant.kind}".encode()
            ).hexdigest()[:12]
            (art_dir / f"autofix-{tag}.json").write_text(
                json.dumps(outcome.to_dict(include_timings=True), indent=2, sort_keys=True)
                + "\n"
            )
            written += 1
        print(f"wrote {written} patch artifacts to {art_dir}", file=sys.stderr)

    summary = report.summary()
    manifest.update(
        plants_applied=summary["plants_applied"],
        found=summary["found"],
        accepted=summary["accepted"],
        repair_rate=summary["repair_rate"],
        verifier_crashes=summary["verifier_crashes"],
        wall_clock_s=round(time.perf_counter() - start, 3),
    )
    _emit_observability(args, obs, manifest)

    if report.verifier_crashes:
        print(f"FAIL: {report.verifier_crashes} verifier crashes", file=sys.stderr)
        return 1
    if args.fail_under is not None and report.repair_rate < args.fail_under:
        print(
            f"FAIL: repair rate {report.repair_rate:.1%} below "
            f"--fail-under {args.fail_under:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .trace import fetch_trace, load_trace, render_span_tree, render_top_phases

    try:
        if args.url:
            trace = fetch_trace(args.url)
        elif args.trace_file:
            trace = load_trace(args.trace_file)
        else:
            print("error: give a trace JSONL file or --url", file=sys.stderr)
            return 2
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_span_tree(trace))
    print()
    print(render_top_phases(trace, top=args.top))
    counters = trace.summary.get("counters", {})
    if counters and args.counters:
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name:>28s}: {counters[name]}")
    return 0


def _make_service(args: argparse.Namespace, obs: ObsRegistry):
    """Build the world + dataset + warmed service behind serve/bench-serve.

    Honors the shared world flags (``--world-cache`` makes restarts load a
    pickle instead of rebuilding), loads the dataset from ``--patchdb``
    when given (skipping the construction pipeline), and warms the classify
    model through the persisted ``--model-cache`` — a warm restart against
    the same dataset performs no training at all.
    """
    from .analysis.experiments import build_patchdb as _build_patchdb
    from .ml.model_cache import FittedModelCache
    from .serve import PatchDBService, ServeTelemetry

    ew = _experiment_world(args, obs, feature_cache=args.feature_cache)
    if args.patchdb:
        _read_text(args.patchdb, "PatchDB JSONL")  # clean error on a bad path
        db = PatchDB.load_jsonl(args.patchdb)
        print(f"loaded {len(db)} records from {args.patchdb}", file=sys.stderr)
    else:
        db = _build_patchdb(ew)
        print(f"built PatchDB with {len(db)} records", file=sys.stderr)
    models = FittedModelCache(persist_path=args.model_cache, obs=obs)
    service = PatchDBService(
        ew,
        db,
        model_cache=models,
        obs=obs,
        max_batch=args.max_batch,
        batch_wait_s=args.batch_wait_ms / 1000.0,
        telemetry=ServeTelemetry(
            enabled=not args.no_telemetry,
            trace_tail=args.trace_store,
            slow_threshold_s=args.slow_ms / 1000.0,
        ),
    )
    info = service.warm()
    source = "cache hit" if info["cached"] else "cold fit"
    print(
        f"classify model warm ({source}, {info['n_train']} training records, "
        f"{info['warm_s']}s) key={info['model_key'][:16]}",
        file=sys.stderr,
    )
    if args.model_cache and not info["cached"]:
        service.models.save()
        print(f"persisted model cache to {args.model_cache}", file=sys.stderr)
    return service


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import make_server

    start = time.perf_counter()
    obs = ObsRegistry()
    with obs.span("cli.serve", scale=args.scale, seed=args.seed):
        service = _make_service(args, obs)
        server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving PatchDB on http://{host}:{port}", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.server_close()
        service.close()
    _emit_observability(
        args,
        obs,
        service.ew.manifest(
            command="serve",
            records=len(service.db),
            model_key=service.model_key,
            wall_clock_s=round(time.perf_counter() - start, 3),
        ),
    )
    return 0


def _bench_serve_overhead(args: argparse.Namespace, obs: ObsRegistry) -> int:
    """The ``bench-serve --overhead`` mode: paired telemetry on/off load.

    Builds the world + dataset once, then repeatedly stands the service up
    with telemetry enabled and disabled (the model cache makes each warm a
    no-op) and drives the same endpoint mix against both.  Writes
    ``BENCH_serve_obs.json`` and fails when the median paired ratio
    exceeds ``--overhead-gate``.
    """
    import threading

    from .serve import PatchDBService, ServeTelemetry, make_server
    from .serve.bench import run_overhead

    if args.url:
        print("FAIL: --overhead measures an in-process server; omit --url", file=sys.stderr)
        return 1
    with obs.span("cli.bench_serve_overhead", scale=args.scale, seed=args.seed):
        seed_service = _make_service(args, obs)
    seed_service.close()
    ew, db, models = seed_service.ew, seed_service.db, seed_service.models

    def factory(enabled: bool):
        svc = PatchDBService(
            ew,
            db,
            model_cache=models,
            obs=obs,
            max_batch=args.max_batch,
            batch_wait_s=args.batch_wait_ms / 1000.0,
            telemetry=ServeTelemetry(
                enabled=enabled,
                trace_tail=args.trace_store,
                slow_threshold_s=args.slow_ms / 1000.0,
            ),
        )
        svc.warm()  # model-cache hit: no training
        server = make_server(svc, "127.0.0.1", 0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"

        def cleanup() -> None:
            server.shutdown()
            server.server_close()
            svc.close()

        return base, cleanup

    print(
        f"measuring telemetry overhead ({args.overhead_reps} paired reps, "
        f"{args.duration}s x {args.concurrency} clients per endpoint)",
        file=sys.stderr,
    )
    payload = run_overhead(
        factory,
        reps=args.overhead_reps,
        duration_s=args.duration,
        concurrency=args.concurrency,
    )
    payload["created_unix"] = time.time()
    payload["meta"] = {
        "scale": args.scale,
        "seed": args.seed,
        "records": len(db),
        "gate": args.overhead_gate,
    }
    out = Path(args.output if args.output != "BENCH_serve.json" else "BENCH_serve_obs.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"telemetry overhead: {payload['overhead'] * 100:+.2f}% "
        f"(median ratio {payload['median_ratio']:.4f} over {len(payload['ratios'])} pairs)"
    )
    print(f"wrote {out}", file=sys.stderr)
    if payload["overhead"] > args.overhead_gate:
        print(
            f"FAIL: telemetry overhead {payload['overhead']:.4f} exceeds "
            f"gate {args.overhead_gate}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import threading

    from .serve import make_server
    from .serve.bench import render_results, run_load, selective_endpoints, write_bench

    start = time.perf_counter()
    obs = ObsRegistry()
    if args.overhead:
        return _bench_serve_overhead(args, obs)
    service = server = None
    if args.url:
        base = args.url.rstrip("/")
    else:
        with obs.span("cli.bench_serve", scale=args.scale, seed=args.seed):
            service = _make_service(args, obs)
            server = make_server(service, "127.0.0.1", 0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
    print(
        f"load-testing {base} ({args.mix} mix, {args.duration}s x "
        f"{args.concurrency} clients per endpoint)",
        file=sys.stderr,
    )
    try:
        endpoints = None
        if args.mix == "selective":
            endpoints = selective_endpoints(base)
            if not endpoints:
                print("FAIL: could not sample a record for the selective mix", file=sys.stderr)
                return 1
        results = run_load(
            base, endpoints=endpoints, duration_s=args.duration, concurrency=args.concurrency
        )
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if service is not None:
            service.close()
    print(render_results(results))
    meta = {
        "url": base,
        "duration_s": args.duration,
        "concurrency": args.concurrency,
        "mix": args.mix,
        "in_process": server is not None,
    }
    if service is not None:
        meta.update(scale=args.scale, seed=args.seed, records=len(service.db))
    path = write_bench(args.output, results, meta=meta)
    print(f"wrote {path}", file=sys.stderr)
    manifest: dict = {"format": "repro-run-manifest-v1", "command": "bench-serve", **meta}
    if service is not None:
        manifest = service.ew.manifest(command="bench-serve", **meta)
    manifest["wall_clock_s"] = round(time.perf_counter() - start, 3)
    _emit_observability(args, obs, manifest)
    n_5xx = sum(r.n_5xx for r in results)
    n_errors = sum(r.errors for r in results)
    if n_5xx or n_errors:
        print(f"FAIL: {n_5xx} server errors, {n_errors} transport errors", file=sys.stderr)
        return 1
    return 0


def _obs_parent() -> argparse.ArgumentParser:
    """Parent parser: the shared observability flags of every world command."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--stats", action="store_true", help="print phase timings and counters to stderr"
    )
    parent.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write merged timers/call counts/counters/histograms as JSON",
    )
    parent.add_argument(
        "--trace",
        default=None,
        metavar="JSONL",
        help="export the run's span trace + manifest (render with `repro trace`)",
    )
    return parent


def _world_parent(feature_cache: bool = True) -> argparse.ArgumentParser:
    """Parent parser: the shared world-building flags.

    Every command that constructs a world gets the same ``--scale``/
    ``--seed``/``--workers``/``--world-cache`` spelling from here instead
    of re-declaring (and subtly re-wording) them per subcommand.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    parent.add_argument("--seed", type=int, default=2021)
    parent.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for the sharded world build and the parallel "
        "feature/token/lint pools (results are bit-identical at every count)",
    )
    parent.add_argument(
        "--world-cache",
        default=None,
        metavar="DIR",
        help="load/persist the whole built world as an ExperimentWorld pickle in DIR",
    )
    if feature_cache:
        parent.add_argument(
            "--feature-cache",
            default=None,
            metavar="NPZ",
            help="persist/reuse feature vectors at this .npz path",
        )
    return parent


def _serve_parent() -> argparse.ArgumentParser:
    """Parent parser: the service construction flags shared by
    ``serve`` and ``bench-serve``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--patchdb",
        default=None,
        metavar="JSONL",
        help="serve this PatchDB release instead of running the construction pipeline",
    )
    parent.add_argument(
        "--model-cache",
        default=None,
        metavar="PKL",
        help="persist/reuse the fitted classify model at this pickle path "
        "(keyed by training-set sha; corrupt files degrade to a cold fit)",
    )
    parent.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="largest classify micro-batch per model call",
    )
    parent.add_argument(
        "--batch-wait-ms",
        type=float,
        default=2.0,
        help="how long classify waits to co-batch concurrent requests",
    )
    parent.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable request tracing and live metrics (the overhead baseline)",
    )
    parent.add_argument(
        "--trace-store",
        type=int,
        default=256,
        metavar="N",
        help="tail ring size of the live trace store (/v1/traces)",
    )
    parent.add_argument(
        "--slow-ms",
        type=float,
        default=250.0,
        help="latency threshold for slow-request trace sampling",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing).

    World-building subcommands share their flags through the
    :func:`_world_parent`/:func:`_obs_parent` parent parsers; only flags
    unique to a command are declared at its subparser.
    """
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    obs_parent = _obs_parent()
    world_parent = _world_parent()
    serve_parent = _serve_parent()

    p_build = sub.add_parser(
        "build",
        help="run the full PatchDB construction pipeline",
        parents=[world_parent, obs_parent],
    )
    p_build.add_argument("output", help="output JSONL path")
    p_build.add_argument("--no-synthetic", action="store_true", help="skip oversampling")
    p_build.set_defaults(func=_cmd_build)

    p_aug = sub.add_parser(
        "augment",
        help="run the Table II augmentation rounds (nearest-link loop)",
        parents=[world_parent, obs_parent],
    )
    p_aug.set_defaults(func=_cmd_augment)

    p_eval = sub.add_parser(
        "evaluate",
        help="run the Table III/IV/VI evaluation suite",
        parents=[world_parent, obs_parent],
    )
    p_eval.add_argument(
        "--tables", default="3,4,6", help="comma-separated subset of 3,4,6 (default: all)"
    )
    p_eval.add_argument(
        "--ml-workers",
        type=int,
        default=None,
        metavar="N",
        help="train classifiers through the parallel engine with N processes; "
        "results are bit-identical to the serial default",
    )
    p_eval.add_argument(
        "--token-cache",
        default=None,
        metavar="PKL",
        help="persist/reuse RNN token sequences at this pickle path",
    )
    p_eval.add_argument(
        "--model-cache",
        default=None,
        metavar="PKL",
        help="persist/reuse Table IV/VI fitted models at this pickle path; "
        "re-evaluating with unchanged training sets re-fits nothing",
    )
    p_eval.set_defaults(func=_cmd_evaluate)

    p_stats = sub.add_parser("stats", help="summarize a PatchDB JSONL")
    p_stats.add_argument("patchdb", help="PatchDB JSONL path")
    p_stats.set_defaults(func=_cmd_stats)

    p_feat = sub.add_parser("features", help="Table I features of a .patch file")
    p_feat.add_argument("patch", help=".patch file path")
    p_feat.add_argument("--all", action="store_true", help="include zero-valued features")
    p_feat.set_defaults(func=_cmd_features)

    p_cat = sub.add_parser("categorize", help="Table V pattern type of a .patch file")
    p_cat.add_argument("patch", help=".patch file path")
    p_cat.set_defaults(func=_cmd_categorize)

    p_syn = sub.add_parser("synthesize", help="apply Fig. 5 variants to a file pair")
    p_syn.add_argument("before", help="pre-patch file")
    p_syn.add_argument("after", help="post-patch file")
    p_syn.add_argument("--variant", type=int, choices=range(1, 9), default=None)
    p_syn.add_argument("--side", choices=("before", "after"), default="after")
    p_syn.set_defaults(func=_cmd_synthesize)

    p_lint = sub.add_parser(
        "lint",
        help="run the static-analysis suite (validation gate without a target)",
        parents=[_world_parent(feature_cache=False), obs_parent],
    )
    p_lint.add_argument(
        "target",
        nargs="?",
        default=None,
        help="a C file, a PatchDB .jsonl, or a directory of .patch files; "
        "omit to build a world at --scale and run the full validation gate",
    )
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument("--output", default=None, metavar="FILE", help="write the report here")
    p_lint.add_argument(
        "--fail-on",
        choices=("gate", "warning", "never"),
        default="gate",
        help="exit non-zero when findings of this class (or worse) exist",
    )
    p_lint.add_argument(
        "--variant-sample",
        type=int,
        default=25,
        metavar="N",
        help="security patches to CFG-equivalence-check in gate mode (0 disables)",
    )
    p_lint.add_argument(
        "--max-findings", type=int, default=50, help="cap findings printed in text mode"
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings whose stable ids appear in this prior "
        "`lint --format json` report",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_fix = sub.add_parser(
        "autofix",
        help="closed-loop find→patch→verify repair over a built world",
        parents=[_world_parent(feature_cache=False), obs_parent],
    )
    p_fix.add_argument(
        "--kinds",
        default=None,
        metavar="K1,K2,...",
        help="comma-separated plant kinds (checker ids and variant:N); "
        "default cycles all of them",
    )
    p_fix.add_argument(
        "--heuristic",
        action="store_true",
        help="run the finder's checkers without dataflow refinement",
    )
    p_fix.add_argument(
        "--max-files",
        type=int,
        default=None,
        metavar="N",
        help="cap the run to the first N files in sorted path order",
    )
    p_fix.add_argument(
        "--fail-under",
        type=float,
        default=None,
        metavar="RATE",
        help="exit non-zero when the verified repair rate is below RATE (0..1)",
    )
    p_fix.add_argument(
        "--report",
        default=None,
        metavar="JSON",
        help="write the repro-autofix-manifest-v1 report here",
    )
    p_fix.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write one per-patch artifact JSON (finding, diff, gates, timings) per plant",
    )
    p_fix.set_defaults(func=_cmd_autofix)

    p_serve = sub.add_parser(
        "serve",
        help="serve PatchDB over HTTP (query/classify/manifest endpoints)",
        parents=[world_parent, serve_parent, obs_parent],
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8127, help="listen port (0 picks a free one)"
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser(
        "bench-serve",
        help="load-test the service and write BENCH_serve.json",
        parents=[world_parent, serve_parent, obs_parent],
    )
    p_bench.add_argument(
        "--url",
        default=None,
        help="bench an already-running server instead of spawning one in-process",
    )
    p_bench.add_argument(
        "--duration", type=float, default=3.0, help="seconds of load per endpoint"
    )
    p_bench.add_argument(
        "--concurrency", type=int, default=4, help="client threads per endpoint"
    )
    p_bench.add_argument(
        "--mix",
        choices=("default", "selective"),
        default="default",
        help="endpoint mix: the standard paged/streamed load, or high-"
        "selectivity filters (repo/sha/pattern_type/cve_id) served by the index",
    )
    p_bench.add_argument(
        "--output", default="BENCH_serve.json", metavar="JSON", help="results path"
    )
    p_bench.add_argument(
        "--overhead",
        action="store_true",
        help="measure tracing+metrics cost with paired telemetry on/off runs "
        "and write BENCH_serve_obs.json instead of a plain load test",
    )
    p_bench.add_argument(
        "--overhead-gate",
        type=float,
        default=0.03,
        metavar="RATIO",
        help="fail when the median paired overhead exceeds this (0.03 = 3%%)",
    )
    p_bench.add_argument(
        "--overhead-reps",
        type=int,
        default=3,
        metavar="N",
        help="paired on/off repetitions in --overhead mode",
    )
    p_bench.set_defaults(func=_cmd_bench_serve)

    p_trace = sub.add_parser(
        "trace", help="render an exported run trace (span tree + top phases)"
    )
    p_trace.add_argument(
        "trace_file", nargs="?", default=None, help="trace JSONL written by --trace"
    )
    p_trace.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="fetch live sampled request traces from a running server "
        "(base URL or full /v1/traces endpoint) instead of reading a file",
    )
    p_trace.add_argument(
        "--top", type=int, default=10, metavar="N", help="phases to list by total time"
    )
    p_trace.add_argument(
        "--counters", action="store_true", help="also print the run's counters"
    )
    p_trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped to a pager/head that exited early; not an error.
        # Detach stdout so interpreter shutdown doesn't re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
