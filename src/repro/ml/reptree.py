"""Reduced Error Pruning tree (Weka's REPTree).

A CART tree grown on a subset of the training data and pruned bottom-up
against a held-out pruning set: a subtree is collapsed into a leaf whenever
the leaf misclassifies no more pruning samples than the subtree does.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy, seeded_rng
from .tree import DecisionTreeClassifier, TreeNode

__all__ = ["REPTreeClassifier"]


class REPTreeClassifier(Classifier):
    """CART + reduced-error pruning.

    Args:
        prune_fraction: fraction of the data held out for pruning.
        max_depth: growth-phase depth cap.
        min_samples_leaf: growth-phase leaf floor.
        seed: split/selection RNG.
    """

    def __init__(
        self,
        prune_fraction: float = 0.25,
        max_depth: int | None = None,
        min_samples_leaf: int = 2,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0.0 < prune_fraction < 1.0:
            raise ModelError("prune_fraction must be in (0, 1)")
        self.prune_fraction = prune_fraction
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._rng = seeded_rng(seed)
        self._tree: DecisionTreeClassifier | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "REPTreeClassifier":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        n = X.shape[0]
        idx = self._rng.permutation(n)
        cut = max(1, int(n * self.prune_fraction))
        # Keep at least one sample per side.
        cut = min(cut, n - 1)
        prune_idx, grow_idx = idx[:cut], idx[cut:]
        if np.unique(y[grow_idx]).size < 2:
            # Degenerate split; grow on everything, skip pruning.
            grow_idx = idx
            prune_idx = idx[:0]
        tree = DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            seed=self._rng,
        )
        tree.fit(X[grow_idx], y[grow_idx])
        if len(prune_idx):
            self._prune(tree.root, X[prune_idx], y[prune_idx])
        self._tree = tree
        return self

    def _prune(self, node: TreeNode, X: np.ndarray, y: np.ndarray) -> int:
        """Bottom-up pruning; returns the subtree's error count on (X, y)."""
        leaf_pred = 1 if node.prob_positive >= 0.5 else 0
        leaf_errors = int(np.sum(y != leaf_pred))
        if node.is_leaf:
            return leaf_errors
        mask = X[:, node.feature] <= node.threshold
        subtree_errors = self._prune(node.left, X[mask], y[mask]) + self._prune(
            node.right, X[~mask], y[~mask]
        )
        if leaf_errors <= subtree_errors:
            # Collapse: the held-out data does not justify the split.
            node.feature = -1
            node.left = node.right = None
            return leaf_errors
        return subtree_errors

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        return self._tree.predict_proba(X)

    @property
    def n_leaves(self) -> int:
        """Leaf count of the pruned tree."""
        self._require_fitted()
        return self._tree.root.count_leaves()
