"""CART decision tree classifier.

A from-scratch binary-classification CART with Gini or entropy impurity,
vectorized split search (per-node, per-feature prefix-sum sweep), depth and
leaf-size controls, and random feature subsetting so that
:class:`~repro.ml.forest.RandomForestClassifier` can build decorrelated
trees on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy, seeded_rng

__all__ = ["DecisionTreeClassifier", "TreeNode"]


@dataclass(slots=True)
class TreeNode:
    """One node of a fitted tree.

    A leaf has ``feature == -1``; an internal node routes samples with
    ``x[feature] <= threshold`` to ``left``.
    """

    feature: int
    threshold: float
    left: "TreeNode | None"
    right: "TreeNode | None"
    prob_positive: float
    n_samples: int

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0

    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()


def _impurity(pos: np.ndarray, total: np.ndarray, criterion: str) -> np.ndarray:
    """Vectorized impurity of nodes with *pos* positives out of *total*."""
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(total > 0, pos / np.maximum(total, 1), 0.0)
        if criterion == "gini":
            return 2.0 * p * (1.0 - p)
        # entropy
        q = 1.0 - p
        h = np.zeros_like(p)
        mask = (p > 0) & (p < 1)
        h[mask] = -(p[mask] * np.log2(p[mask]) + q[mask] * np.log2(q[mask]))
        return h


class DecisionTreeClassifier(Classifier):
    """Binary CART tree.

    Args:
        max_depth: maximum tree depth (None = unbounded).
        min_samples_split: minimum samples required to attempt a split.
        min_samples_leaf: minimum samples each child must keep.
        max_features: number of features considered per split; ``"sqrt"``,
            an int, or None for all.
        criterion: ``"gini"`` or ``"entropy"``.
        seed: RNG for feature subsetting.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        criterion: str = "gini",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if criterion not in ("gini", "entropy"):
            raise ModelError(f"unknown criterion {criterion!r}")
        if min_samples_split < 2 or min_samples_leaf < 1:
            raise ModelError("min_samples_split >= 2 and min_samples_leaf >= 1 required")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self._rng = seeded_rng(seed)
        self.root: TreeNode | None = None

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        self.root = self._build(X, y, depth=0)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        p1 = np.array([self._leaf_for(row).prob_positive for row in X])
        return np.column_stack([1.0 - p1, p1])

    # ------------------------------------------------------------------

    def _n_candidate_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(self.max_features, int) and self.max_features > 0:
            return min(self.max_features, d)
        raise ModelError(f"bad max_features {self.max_features!r}")

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        n = y.shape[0]
        pos = int(np.sum(y))
        prob = pos / n
        if (
            pos == 0
            or pos == n
            or n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return TreeNode(-1, 0.0, None, None, prob, n)

        feature, threshold = self._best_split(X, y)
        if feature < 0:
            return TreeNode(-1, 0.0, None, None, prob, n)
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], depth + 1)
        return TreeNode(feature, threshold, left, right, prob, n)

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float]:
        """Scan candidate features; return (feature, threshold) or (-1, 0)."""
        n, d = X.shape
        k = self._n_candidate_features(d)
        features = (
            np.arange(d) if k == d else self._rng.choice(d, size=k, replace=False)
        )
        best_gain = 1e-12
        best: tuple[int, float] = (-1, 0.0)
        parent_imp = float(_impurity(np.array([np.sum(y)]), np.array([n]), self.criterion)[0])
        min_leaf = self.min_samples_leaf
        for f in features:
            values = X[:, f]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            y_sorted = y[order]
            # Candidate cuts are between distinct adjacent values.
            distinct = np.flatnonzero(v_sorted[1:] != v_sorted[:-1]) + 1
            if distinct.size == 0:
                continue
            pos_prefix = np.cumsum(y_sorted)
            left_n = distinct.astype(np.float64)
            right_n = n - left_n
            valid = (left_n >= min_leaf) & (right_n >= min_leaf)
            if not np.any(valid):
                continue
            left_pos = pos_prefix[distinct - 1].astype(np.float64)
            right_pos = pos_prefix[-1] - left_pos
            imp_left = _impurity(left_pos, left_n, self.criterion)
            imp_right = _impurity(right_pos, right_n, self.criterion)
            gain = parent_imp - (left_n * imp_left + right_n * imp_right) / n
            gain[~valid] = -np.inf
            best_idx = int(np.argmax(gain))
            if gain[best_idx] > best_gain:
                best_gain = float(gain[best_idx])
                cut = distinct[best_idx]
                best = (int(f), float((v_sorted[cut - 1] + v_sorted[cut]) / 2.0))
        return best

    def _leaf_for(self, row: np.ndarray) -> TreeNode:
        node = self.root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node
