"""Train/test splitting and cross-validation folds.

The paper's protocol (Tables IV and VI) is an 80/20 random split per
dataset, combining training portions across datasets; :func:`train_test_split`
with ``stratify=True`` reproduces it deterministically from a seed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ModelError
from .base import seeded_rng

__all__ = ["train_test_split", "stratified_kfold", "bootstrap_indices"]


def train_test_split(
    n: int,
    test_fraction: float = 0.2,
    y: np.ndarray | None = None,
    stratify: bool = False,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Index split into (train_idx, test_idx).

    Args:
        n: number of samples.
        test_fraction: fraction assigned to the test side.
        y: labels; required when *stratify* is true.
        stratify: preserve the label ratio in both sides.
        seed: RNG seed or generator.

    Returns:
        Two disjoint, sorted index arrays covering ``range(n)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ModelError("test_fraction must be in (0, 1)")
    rng = seeded_rng(seed)
    if stratify:
        if y is None:
            raise ModelError("stratify=True requires y")
        y = np.asarray(y)
        if y.shape[0] != n:
            raise ModelError("y length must equal n")
        train_parts: list[np.ndarray] = []
        test_parts: list[np.ndarray] = []
        for label in np.unique(y):
            idx = np.flatnonzero(y == label)
            rng.shuffle(idx)
            cut = max(1, int(round(len(idx) * test_fraction))) if len(idx) > 1 else 0
            test_parts.append(idx[:cut])
            train_parts.append(idx[cut:])
        train = np.sort(np.concatenate(train_parts))
        test = np.sort(np.concatenate(test_parts)) if test_parts else np.array([], dtype=np.int64)
        return train, test
    idx = rng.permutation(n)
    cut = int(round(n * test_fraction))
    return np.sort(idx[cut:]), np.sort(idx[:cut])


def stratified_kfold(
    y: np.ndarray, k: int = 5, seed: int | np.random.Generator | None = None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``k`` (train_idx, test_idx) pairs with per-class balance."""
    if k < 2:
        raise ModelError("k must be >= 2")
    y = np.asarray(y)
    rng = seeded_rng(seed)
    folds: list[list[int]] = [[] for _ in range(k)]
    for label in np.unique(y):
        idx = np.flatnonzero(y == label)
        rng.shuffle(idx)
        for pos, sample in enumerate(idx):
            folds[pos % k].append(int(sample))
    all_idx = set(range(len(y)))
    for fold in folds:
        test = np.array(sorted(fold), dtype=np.int64)
        train = np.array(sorted(all_idx - set(fold)), dtype=np.int64)
        yield train, test


def bootstrap_indices(
    n: int, size: int | None = None, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Sample ``size`` indices with replacement (random forest bagging)."""
    rng = rng if rng is not None else np.random.default_rng()
    return rng.integers(0, n, size=size if size is not None else n)
