"""Stochastic gradient descent classifier (log or hinge loss).

Weka/scikit-style SGD over shuffled samples with a decaying step size —
one of the ten consensus classifiers in Table III's uncertainty baseline.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy, seeded_rng
from .logistic import sigmoid
from .preprocess import StandardScaler

__all__ = ["SGDClassifier"]


class SGDClassifier(Classifier):
    """Linear model trained by per-sample SGD.

    Args:
        loss: ``"log"`` (logistic) or ``"hinge"`` (linear SVM objective).
        epochs: passes over the shuffled training set.
        eta0: initial learning rate; step decays as ``eta0 / (1 + t * decay)``.
        l2: ridge penalty.
        seed: shuffling RNG.
    """

    def __init__(
        self,
        loss: str = "log",
        epochs: int = 20,
        eta0: float = 0.05,
        l2: float = 1e-4,
        decay: float = 1e-3,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if loss not in ("log", "hinge"):
            raise ModelError(f"unknown loss {loss!r}")
        if epochs < 1 or eta0 <= 0 or l2 < 0:
            raise ModelError("invalid hyperparameters")
        self.loss = loss
        self.epochs = epochs
        self.eta0 = eta0
        self.l2 = l2
        self.decay = decay
        self._rng = seeded_rng(seed)
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._scaler: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SGDClassifier":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        self._scaler = StandardScaler()
        X = self._scaler.fit_transform(X)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        y_signed = 2.0 * y - 1.0  # hinge uses {-1, +1}
        t = 0
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for i in order:
                eta = self.eta0 / (1.0 + t * self.decay)
                t += 1
                xi = X[i]
                if self.loss == "log":
                    p = sigmoid(np.array([xi @ w + b]))[0]
                    err = p - y[i]
                    w -= eta * (err * xi + self.l2 * w)
                    b -= eta * err
                else:
                    margin = y_signed[i] * (xi @ w + b)
                    if margin < 1.0:
                        w -= eta * (self.l2 * w - y_signed[i] * xi)
                        b += eta * y_signed[i]
                    else:
                        w -= eta * self.l2 * w
        self.weights = w
        self.bias = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        X = self._scaler.transform(X)
        score = X @ self.weights + self.bias
        # For hinge, squash the margin through a sigmoid as a calibration.
        p1 = sigmoid(score)
        return np.column_stack([1.0 - p1, p1])
