"""Patch token sequences and vocabulary for the RNN classifier.

The paper's RNN "considers the source code of a given patch as a list of
tokens including keywords, identifiers, operators, etc." (§IV-C).  We lex
each changed line with the C lexer and mark line roles with sentinel tokens
(``<add>``/``<del>``/``<hunk>``) so the network can learn which side of the
diff a construct sits on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from ..lang.lexer import tokenize
from ..lang.tokens import TokenKind
from ..patch.model import LineKind, Patch

__all__ = ["patch_token_sequence", "Vocabulary", "encode_batch"]

PAD = "<pad>"
UNK = "<unk>"

_LITERAL_PLACEHOLDER = {
    TokenKind.NUMBER: "<num>",
    TokenKind.STRING: "<str>",
    TokenKind.CHAR: "<chr>",
}

_MARKER = {LineKind.ADDED: "<add>", LineKind.REMOVED: "<del>", LineKind.CONTEXT: "<ctx>"}


def patch_token_sequence(patch: Patch, include_context: bool = False) -> list[str]:
    """Flatten a patch into its token sequence.

    Args:
        patch: the patch to tokenize.
        include_context: include context lines (off by default — the paper's
            model reads the change itself).
    """
    out: list[str] = []
    for hunk in patch.hunks:
        out.append("<hunk>")
        for line in hunk.lines:
            if line.kind is LineKind.CONTEXT and not include_context:
                continue
            out.append(_MARKER[line.kind])
            for tok in tokenize(line.text):
                if tok.kind in (TokenKind.COMMENT, TokenKind.NEWLINE):
                    continue
                if tok.kind in _LITERAL_PLACEHOLDER:
                    out.append(_LITERAL_PLACEHOLDER[tok.kind])
                elif tok.kind is TokenKind.PREPROCESSOR:
                    out.append("<pp>")
                else:
                    out.append(tok.text)
    return out


@dataclass
class Vocabulary:
    """Frequency-capped token vocabulary with PAD/UNK reserved ids."""

    max_size: int = 2000
    min_count: int = 2
    _index: dict[str, int] = field(default_factory=dict)

    def fit(self, sequences: list[list[str]]) -> "Vocabulary":
        """Build the vocabulary from training sequences."""
        counts: dict[str, int] = {}
        for seq in sequences:
            for tok in seq:
                counts[tok] = counts.get(tok, 0) + 1
        ranked = sorted(
            (t for t, c in counts.items() if c >= self.min_count),
            key=lambda t: (-counts[t], t),
        )
        self._index = {PAD: 0, UNK: 1}
        for tok in ranked[: self.max_size - 2]:
            self._index[tok] = len(self._index)
        return self

    def __len__(self) -> int:
        return len(self._index)

    def encode(self, sequence: list[str], max_len: int) -> np.ndarray:
        """Map tokens to ids, truncated/padded to *max_len*."""
        if not self._index:
            raise ModelError("Vocabulary is not fitted")
        ids = [self._index.get(t, 1) for t in sequence[:max_len]]
        ids.extend([0] * (max_len - len(ids)))
        return np.asarray(ids, dtype=np.int64)


def encode_batch(
    vocab: Vocabulary, sequences: list[list[str]], max_len: int
) -> tuple[np.ndarray, np.ndarray]:
    """Encode sequences into (ids, mask) arrays of shape ``(B, max_len)``."""
    ids = np.vstack([vocab.encode(seq, max_len) for seq in sequences])
    mask = (ids != 0).astype(np.float64)
    # Guarantee at least one unmasked position so pooling never divides by 0.
    empty = mask.sum(axis=1) == 0
    mask[empty, 0] = 1.0
    return ids, mask
