"""Naive Bayes classifiers (Gaussian and discretized/multinomial-style).

Two of the ten consensus classifiers in Table III.  The Gaussian variant
models each feature with a per-class normal; the discretized variant bins
each feature into equal-frequency buckets with Laplace smoothing — which is
also how we stand in for Weka's default BayesNet (a naive-Bayes-structured
network over discretized attributes), see :mod:`repro.ml.bayesnet`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy

__all__ = ["GaussianNaiveBayes", "DiscretizedNaiveBayes"]

_VAR_FLOOR = 1e-9


class GaussianNaiveBayes(Classifier):
    """Per-class, per-feature Gaussian likelihoods with a variance floor."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ModelError("var_smoothing must be >= 0")
        self.var_smoothing = var_smoothing
        self._theta: np.ndarray | None = None  # (2, d) means
        self._var: np.ndarray | None = None  # (2, d) variances
        self._log_prior: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        theta = np.zeros((2, X.shape[1]))
        var = np.zeros((2, X.shape[1]))
        prior = np.zeros(2)
        global_var = X.var(axis=0).max() if X.shape[0] > 1 else 1.0
        eps = self.var_smoothing * max(global_var, 1.0) + _VAR_FLOOR
        for c in (0, 1):
            rows = X[y == c]
            prior[c] = max(len(rows), 1) / X.shape[0]
            if len(rows):
                theta[c] = rows.mean(axis=0)
                var[c] = rows.var(axis=0) + eps
            else:
                var[c] = eps
        self._theta, self._var = theta, var
        self._log_prior = np.log(prior)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        log_like = np.zeros((X.shape[0], 2))
        for c in (0, 1):
            diff = X - self._theta[c]
            log_like[:, c] = (
                -0.5 * np.sum(np.log(2.0 * np.pi * self._var[c]))
                - 0.5 * np.sum(diff * diff / self._var[c], axis=1)
                + self._log_prior[c]
            )
        # Normalize in log space.
        log_like -= log_like.max(axis=1, keepdims=True)
        probs = np.exp(log_like)
        return probs / probs.sum(axis=1, keepdims=True)


class DiscretizedNaiveBayes(Classifier):
    """Naive Bayes over equal-frequency discretized features.

    Args:
        n_bins: buckets per feature (quantile edges fitted on training data).
        alpha: Laplace smoothing count.
    """

    def __init__(self, n_bins: int = 8, alpha: float = 1.0) -> None:
        if n_bins < 2 or alpha <= 0:
            raise ModelError("n_bins >= 2 and alpha > 0 required")
        self.n_bins = n_bins
        self.alpha = alpha
        self._edges: list[np.ndarray] | None = None
        self._log_cond: np.ndarray | None = None  # (2, d, bins)
        self._log_prior: np.ndarray | None = None

    def _bin(self, X: np.ndarray) -> np.ndarray:
        binned = np.empty(X.shape, dtype=np.int64)
        for j, edges in enumerate(self._edges):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return np.clip(binned, 0, self.n_bins - 1)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DiscretizedNaiveBayes":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self._edges = [np.unique(np.quantile(X[:, j], quantiles)) for j in range(X.shape[1])]
        binned = self._bin(X)
        d = X.shape[1]
        counts = np.full((2, d, self.n_bins), self.alpha)
        prior = np.zeros(2)
        for c in (0, 1):
            rows = binned[y == c]
            prior[c] = max(len(rows), 1) / X.shape[0]
            for j in range(d):
                np.add.at(counts[c, j], rows[:, j], 1.0)
        self._log_cond = np.log(counts / counts.sum(axis=2, keepdims=True))
        self._log_prior = np.log(prior)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        binned = self._bin(X)
        log_like = np.zeros((X.shape[0], 2))
        cols = np.arange(X.shape[1])
        for c in (0, 1):
            log_like[:, c] = self._log_cond[c, cols, binned].sum(axis=1) + self._log_prior[c]
        log_like -= log_like.max(axis=1, keepdims=True)
        probs = np.exp(log_like)
        return probs / probs.sum(axis=1, keepdims=True)
