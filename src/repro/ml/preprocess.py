"""Feature preprocessing for the linear models.

Linear classifiers (logistic regression, SVM, perceptron) are sensitive to
the raw feature scales of Table I (character counts dwarf operator counts),
so they are trained on standardized inputs.  :class:`StandardScaler` is the
usual zero-mean/unit-variance transform; constant columns pass through
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError

__all__ = ["StandardScaler"]


class StandardScaler:
    """Column-wise standardization fitted on training data."""

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Estimate per-column mean and standard deviation."""
        X = np.asarray(X, dtype=np.float64)
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted transform."""
        if self._mean is None or self._std is None:
            raise NotFittedError("StandardScaler is not fitted")
        return (np.asarray(X, dtype=np.float64) - self._mean) / self._std

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on *X* and return its transform."""
        return self.fit(X).transform(X)
