"""Parallel training engine: concurrent fits of independent estimators.

The evaluation half of the paper (Tables III, IV, VI) fits many mutually
independent models — 16 RNNs across Table IV's seeds/datasets/variants, RF
and RNN per Table VI train set, ten consensus classifiers for the
uncertainty baseline.  :func:`fit_many` runs such fits through a process
pool while keeping the results **bit-identical** to the serial loop: every
estimator owns its RNG (a pickled :class:`numpy.random.Generator` carries
its state into the worker), so no fit can observe another fit's draws no
matter where or in which order it runs.

The serial path stays the zero-dependency default (``workers=None``), and
any pool failure falls back to it — the parent's estimators are never
mutated by a worker, so a retry starts from pristine state.
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Sequence

from ..obs import ObsRegistry, ObsSnapshot

__all__ = ["fit_many"]

#: One fit job: (estimator, training inputs, labels).  ``estimator.fit(X, y)``
#: is the only protocol required, so feature-matrix classifiers and the
#: sequence-input RNN mix freely in one batch.
FitSpec = tuple[Any, Any, Any]


def _fit_one(spec: FitSpec) -> tuple[Any, ObsSnapshot]:
    """Fit one spec, timing it into a local registry so per-fit ``fit``
    latencies survive the trip back from a pool worker."""
    est, X, y = spec
    local = ObsRegistry()
    with local.timer("fit"):
        est.fit(X, y)
    return est, local.snapshot()


def fit_many(
    fits: Sequence[FitSpec],
    workers: int | None = None,
    obs: ObsRegistry | None = None,
) -> list[Any]:
    """Fit every ``(estimator, X, y)`` spec; return the fitted estimators.

    Args:
        fits: independent fit jobs.  Estimators must be picklable (all of
            ``repro.ml`` is).
        workers: process count; ``None``/``<=1`` fits serially in-place.
        obs: observability registry for ``fit`` timers and
            ``fits_serial``/``fits_parallel`` counters.

    Returns:
        The fitted estimators, in input order.  With ``workers > 1`` these
        are *copies* of the inputs (fit happened in a worker process); the
        serial path fits and returns the input objects themselves.  Use the
        return value, not the inputs.
    """
    obs = obs if obs is not None else ObsRegistry()
    fits = list(fits)
    if not fits:
        return []
    if workers is not None and workers > 1 and len(fits) > 1:
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                with obs.timer("fit_parallel"):
                    results = list(pool.map(_fit_one, fits))
        except Exception:
            pass  # pool failure (pickling, resources): refit serially below
        else:
            fitted = []
            for est, snap in results:
                fitted.append(est)
                obs.merge(snap)
            obs.add("fits_parallel", len(fits))
            return fitted
    fitted = []
    for spec in fits:
        est, snap = _fit_one(spec)
        obs.merge(snap)
        fitted.append(est)
        obs.add("fits_serial")
    return fitted
