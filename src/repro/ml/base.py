"""Base estimator API for the from-scratch ML substrate.

All classifiers implement ``fit(X, y) -> self``, ``predict(X) -> (N,)`` and
``predict_proba(X) -> (N, 2)`` for binary problems (class order: [0, 1]).
Labels are integer {0, 1}; 1 = security patch throughout the package.

Everything is NumPy-only — the paper uses Weka and scikit-learn-era tooling,
which is unavailable offline, so these implementations stand in for it (see
DESIGN.md, substitutions table).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ModelError, NotFittedError

__all__ = ["Classifier", "check_Xy", "check_X", "seeded_rng"]


def seeded_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed or generator into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_Xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training pair.

    Raises:
        ModelError: on shape mismatch, empty data, or non-binary labels.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ModelError(f"y shape {y.shape} does not match X rows {X.shape[0]}")
    if X.shape[0] == 0:
        raise ModelError("cannot fit on empty data")
    y = y.astype(np.int64)
    labels = np.unique(y)
    if not np.all(np.isin(labels, (0, 1))):
        raise ModelError(f"labels must be binary 0/1, got {labels}")
    return X, y


def check_X(X: np.ndarray, n_features: int | None = None) -> np.ndarray:
    """Validate and coerce an inference matrix."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    if n_features is not None and X.shape[1] != n_features:
        raise ModelError(f"X has {X.shape[1]} features, model was fit with {n_features}")
    return X


class Classifier(abc.ABC):
    """Abstract binary classifier."""

    _n_features: int | None = None

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Fit the model; returns ``self``."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(N, 2)``, columns [P(0), P(1)]."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard labels via the 0.5 probability threshold."""
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Monotone confidence for class 1 (defaults to P(1))."""
        return self.predict_proba(X)[:, 1]

    def _require_fitted(self) -> None:
        if self._n_features is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
