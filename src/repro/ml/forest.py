"""Random forest classifier (bagged CART trees with feature subsetting).

The paper's best-performing shallow model for pseudo-labeling (Table III)
and one of the two dataset-quality models (Table VI).

Trees are mutually independent, so :meth:`RandomForestClassifier.fit` can
build them in a process pool (``n_jobs``).  Every fit first pre-draws one
seed per tree from the forest's own RNG and gives each tree a private child
generator, which makes the serial and parallel tree sequences — and hence
the fitted forests — bit-identical: parallelism never changes which random
draws a tree sees, only where it runs.
"""

from __future__ import annotations

import concurrent.futures

import numpy as np

from ..errors import ModelError
from ..obs import ObsRegistry, ObsSnapshot
from .base import Classifier, check_X, check_Xy, seeded_rng
from .split import bootstrap_indices
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]

# Per-process state for pool workers: (X, y, tree keyword arguments).
_FOREST_STATE: tuple[np.ndarray, np.ndarray, dict] | None = None


def _init_forest_worker(X: np.ndarray, y: np.ndarray, tree_kwargs: dict) -> None:
    global _FOREST_STATE
    _FOREST_STATE = (X, y, tree_kwargs)


def _fit_one_tree(
    X: np.ndarray, y: np.ndarray, tree_kwargs: dict, seed: int
) -> DecisionTreeClassifier:
    """Bootstrap and fit one tree from its pre-drawn seed."""
    rng = np.random.default_rng(seed)
    idx = bootstrap_indices(X.shape[0], rng=rng)
    tree = DecisionTreeClassifier(**tree_kwargs, seed=rng)
    tree.fit(X[idx], y[idx])
    return tree


def _fit_tree_chunk(seeds: list[int]) -> tuple[list[DecisionTreeClassifier], ObsSnapshot]:
    """Fit one chunk of trees in a worker, timing each into a local registry
    (per-tree ``rf_tree`` latencies) whose snapshot rides back with them."""
    assert _FOREST_STATE is not None
    X, y, tree_kwargs = _FOREST_STATE
    local = ObsRegistry()
    trees = []
    for s in seeds:
        with local.timer("rf_tree"):
            trees.append(_fit_one_tree(X, y, tree_kwargs, s))
    return trees, local.snapshot()


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        min_samples_leaf: per-tree leaf size floor.
        max_features: features per split (default ``"sqrt"``).
        criterion: impurity criterion for the trees.
        seed: RNG seed; per-tree seeds are pre-drawn from it at fit time.
        n_jobs: fit trees in a process pool of this size (``None``/``<=1``
            = serial).  Parallel and serial fits are bit-identical.
        obs: observability registry counting trees fitted per mode.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        criterion: str = "gini",
        seed: int | np.random.Generator | None = None,
        n_jobs: int | None = None,
        obs: ObsRegistry | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ModelError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self._rng = seeded_rng(seed)
        self.n_jobs = n_jobs
        self.obs = obs if obs is not None else ObsRegistry()
        self.trees: list[DecisionTreeClassifier] = []

    def _tree_kwargs(self) -> dict:
        return dict(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            criterion=self.criterion,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        seeds = [int(s) for s in self._rng.integers(0, np.iinfo(np.int64).max, size=self.n_estimators)]
        if self.n_jobs is not None and self.n_jobs > 1 and self.n_estimators > 1:
            trees = self._fit_parallel(X, y, seeds)
            if trees is not None:
                self.trees = trees
                self.obs.add("rf_trees_parallel", len(trees))
                return self
        kwargs = self._tree_kwargs()
        trees = []
        for s in seeds:
            with self.obs.timer("rf_tree"):
                trees.append(_fit_one_tree(X, y, kwargs, s))
        self.trees = trees
        self.obs.add("rf_trees_serial", len(self.trees))
        return self

    def _fit_parallel(
        self, X: np.ndarray, y: np.ndarray, seeds: list[int]
    ) -> list[DecisionTreeClassifier] | None:
        """Fit trees in a process pool; None on any pool failure."""
        # Enough chunks that stragglers rebalance, big enough to amortize IPC.
        n_chunks = min(len(seeds), self.n_jobs * 4)
        chunks = [list(c) for c in np.array_split(np.array(seeds, dtype=object), n_chunks)]
        snapshots = []
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.n_jobs,
                initializer=_init_forest_worker,
                initargs=(X, y, self._tree_kwargs()),
            ) as pool:
                trees: list[DecisionTreeClassifier] = []
                for chunk_trees, snap in pool.map(_fit_tree_chunk, chunks):
                    trees.extend(chunk_trees)
                    snapshots.append(snap)
        except Exception:
            return None
        for snap in snapshots:
            self.obs.merge(snap)
        return trees

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        votes = np.zeros(X.shape[0], dtype=np.float64)
        for tree in self.trees:
            votes += tree.predict_proba(X)[:, 1]
        p1 = votes / len(self.trees)
        return np.column_stack([1.0 - p1, p1])

    def feature_importances(self) -> np.ndarray:
        """Split-frequency importances (fraction of internal nodes per feature)."""
        self._require_fitted()
        counts = np.zeros(self._n_features, dtype=np.float64)
        total = 0
        for tree in self.trees:
            stack = [tree.root]
            while stack:
                node = stack.pop()
                if node is None or node.is_leaf:
                    continue
                counts[node.feature] += 1
                total += 1
                stack.append(node.left)
                stack.append(node.right)
        return counts / total if total else counts
