"""Random forest classifier (bagged CART trees with feature subsetting).

The paper's best-performing shallow model for pseudo-labeling (Table III)
and one of the two dataset-quality models (Table VI).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy, seeded_rng
from .split import bootstrap_indices
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        min_samples_leaf: per-tree leaf size floor.
        max_features: features per split (default ``"sqrt"``).
        criterion: impurity criterion for the trees.
        seed: RNG seed; each tree gets an independent child generator.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        criterion: str = "gini",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ModelError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self._rng = seeded_rng(seed)
        self.trees: list[DecisionTreeClassifier] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        self.trees = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            idx = bootstrap_indices(n, rng=self._rng)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                criterion=self.criterion,
                seed=self._rng,
            )
            tree.fit(X[idx], y[idx])
            self.trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        votes = np.zeros(X.shape[0], dtype=np.float64)
        for tree in self.trees:
            votes += tree.predict_proba(X)[:, 1]
        p1 = votes / len(self.trees)
        return np.column_stack([1.0 - p1, p1])

    def feature_importances(self) -> np.ndarray:
        """Split-frequency importances (fraction of internal nodes per feature)."""
        self._require_fitted()
        counts = np.zeros(self._n_features, dtype=np.float64)
        total = 0
        for tree in self.trees:
            stack = [tree.root]
            while stack:
                node = stack.pop()
                if node is None or node.is_leaf:
                    continue
                counts[node.feature] += 1
                total += 1
                stack.append(node.left)
                stack.append(node.right)
        return counts / total if total else counts
