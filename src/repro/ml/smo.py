"""Sequential Minimal Optimization (simplified SMO) dual SVM solver.

The paper's uncertainty baseline uses Weka's SMO classifier; this is the
classic simplified SMO of Platt's algorithm (as popularized by the Stanford
CS229 handout): pick a violating α pair, solve the 2-variable subproblem
analytically, repeat until no α moves for *max_passes* consecutive sweeps.
Linear kernel only — adequate and fast for our feature space.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy, seeded_rng
from .logistic import sigmoid
from .preprocess import StandardScaler

__all__ = ["SMOClassifier"]


class SMOClassifier(Classifier):
    """Dual linear SVM trained with simplified SMO.

    Args:
        c: box constraint on the dual variables.
        tol: KKT violation tolerance.
        max_passes: consecutive no-change sweeps before stopping.
        max_iter: hard cap on total sweeps.
        seed: RNG for partner selection.
    """

    def __init__(
        self,
        c: float = 1.0,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 50,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if c <= 0 or tol <= 0:
            raise ModelError("invalid hyperparameters")
        self.c = c
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self._rng = seeded_rng(seed)
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._scaler: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SMOClassifier":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        self._scaler = StandardScaler()
        X = self._scaler.fit_transform(X)
        n = X.shape[0]
        y_signed = 2.0 * y.astype(np.float64) - 1.0
        if np.unique(y).size == 1:
            # Degenerate one-class training: no dual problem to solve.
            self.weights = np.zeros(X.shape[1])
            self.bias = 10.0 if y[0] == 1 else -10.0
            return self
        alphas = np.zeros(n)
        b = 0.0
        # Cache the Gram matrix for small n; fall back to on-demand products.
        gram = X @ X.T if n <= 4000 else None

        def k(i: int, j: int) -> float:
            if gram is not None:
                return float(gram[i, j])
            return float(X[i] @ X[j])

        def f(i: int) -> float:
            if gram is not None:
                return float((alphas * y_signed) @ gram[:, i]) + b
            return float((alphas * y_signed) @ (X @ X[i])) + b

        passes = 0
        sweeps = 0
        while passes < self.max_passes and sweeps < self.max_iter:
            sweeps += 1
            changed = 0
            for i in range(n):
                e_i = f(i) - y_signed[i]
                if (y_signed[i] * e_i < -self.tol and alphas[i] < self.c) or (
                    y_signed[i] * e_i > self.tol and alphas[i] > 0
                ):
                    j = int(self._rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    e_j = f(j) - y_signed[j]
                    a_i_old, a_j_old = alphas[i], alphas[j]
                    if y_signed[i] != y_signed[j]:
                        low = max(0.0, a_j_old - a_i_old)
                        high = min(self.c, self.c + a_j_old - a_i_old)
                    else:
                        low = max(0.0, a_i_old + a_j_old - self.c)
                        high = min(self.c, a_i_old + a_j_old)
                    if low >= high:
                        continue
                    eta = 2.0 * k(i, j) - k(i, i) - k(j, j)
                    if eta >= 0:
                        continue
                    a_j = a_j_old - y_signed[j] * (e_i - e_j) / eta
                    a_j = min(high, max(low, a_j))
                    if abs(a_j - a_j_old) < 1e-5:
                        continue
                    a_i = a_i_old + y_signed[i] * y_signed[j] * (a_j_old - a_j)
                    alphas[i], alphas[j] = a_i, a_j
                    b1 = (
                        b
                        - e_i
                        - y_signed[i] * (a_i - a_i_old) * k(i, i)
                        - y_signed[j] * (a_j - a_j_old) * k(i, j)
                    )
                    b2 = (
                        b
                        - e_j
                        - y_signed[i] * (a_i - a_i_old) * k(i, j)
                        - y_signed[j] * (a_j - a_j_old) * k(j, j)
                    )
                    if 0 < a_i < self.c:
                        b = b1
                    elif 0 < a_j < self.c:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
        self.weights = (alphas * y_signed) @ X
        self.bias = b
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Signed margins (positive = class 1)."""
        self._require_fitted()
        X = check_X(X, self._n_features)
        X = self._scaler.transform(X)
        return X @ self.weights + self.bias

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = sigmoid(self.decision_scores(X))
        return np.column_stack([1.0 - p1, p1])
