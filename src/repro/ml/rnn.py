"""Recurrent neural network patch classifier (NumPy, BPTT, Adam).

Reimplements the paper's RNN token model (§IV-C): an embedding layer, a
tanh recurrent layer whose state carries context between tokens, masked
mean-pooling over time, and a logistic head.  Training is full
backpropagation-through-time with Adam and gradient clipping — no deep
learning framework involved.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError
from .base import seeded_rng
from .logistic import sigmoid
from .tokenizer import Vocabulary, encode_batch, patch_token_sequence

__all__ = ["RNNClassifier"]


class RNNClassifier:
    """Binary sequence classifier over token-id sequences.

    The interface intentionally differs from the feature-vector
    :class:`~repro.ml.base.Classifier`: inputs are lists of token strings
    (see :func:`~repro.ml.tokenizer.patch_token_sequence`).

    Args:
        embedding_dim: token embedding width.
        hidden_dim: recurrent state width.
        max_len: sequences are truncated/padded to this many tokens.
        vocab_size: vocabulary cap (incl. PAD/UNK).
        epochs: training passes.
        batch_size: minibatch size.
        learning_rate: Adam step size.
        clip: global-norm gradient clip.
        seed: parameter-init and shuffling RNG.
    """

    def __init__(
        self,
        embedding_dim: int = 16,
        hidden_dim: int = 32,
        max_len: int = 128,
        vocab_size: int = 2000,
        epochs: int = 6,
        batch_size: int = 64,
        learning_rate: float = 3e-3,
        clip: float = 5.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if min(embedding_dim, hidden_dim, max_len, vocab_size, epochs, batch_size) < 1:
            raise ModelError("invalid hyperparameters")
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.max_len = max_len
        self.vocab_size = vocab_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.clip = clip
        self._rng = seeded_rng(seed)
        self.vocab: Vocabulary | None = None
        self._params: dict[str, np.ndarray] | None = None
        self._adam_m: dict[str, np.ndarray] | None = None
        self._adam_v: dict[str, np.ndarray] | None = None
        self._adam_t: int = 0
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------

    def _init_params(self, vocab_len: int) -> None:
        rng = self._rng
        e, h = self.embedding_dim, self.hidden_dim

        def glorot(shape: tuple[int, ...]) -> np.ndarray:
            bound = np.sqrt(6.0 / sum(shape))
            return rng.uniform(-bound, bound, size=shape)

        self._params = {
            "E": glorot((vocab_len, e)) * 0.5,
            "Wxh": glorot((e, h)),
            "Whh": np.linalg.qr(rng.standard_normal((h, h)))[0] * 0.9,  # near-orthogonal
            "bh": np.zeros(h),
            "w": glorot((h,)),
            "b": np.zeros(1),
        }
        self._params["E"][0] = 0.0  # PAD embeds to zero
        self._adam_m = {k: np.zeros_like(v) for k, v in self._params.items()}
        self._adam_v = {k: np.zeros_like(v) for k, v in self._params.items()}
        self._adam_t = 0

    # ------------------------------------------------------------------

    def fit(self, sequences: list[list[str]], y: np.ndarray) -> "RNNClassifier":
        """Train on token sequences with binary labels."""
        y = np.asarray(y).astype(np.float64)
        if len(sequences) != y.shape[0] or len(sequences) == 0:
            raise ModelError("sequences and y must be non-empty and aligned")
        self.vocab = Vocabulary(max_size=self.vocab_size).fit(sequences)
        self._init_params(len(self.vocab))
        ids, mask = encode_batch(self.vocab, sequences, self.max_len)
        n = ids.shape[0]
        self.loss_history = []
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                loss = self._train_step(ids[batch], mask[batch], y[batch])
                epoch_loss += loss * len(batch)
            self.loss_history.append(epoch_loss / n)
        return self

    def fit_patches(self, patches, y: np.ndarray, cache=None) -> "RNNClassifier":
        """Convenience: tokenize :class:`Patch` objects then fit.

        Args:
            patches: the patches to train on.
            y: binary labels.
            cache: optional :class:`~repro.core.cache.TokenSequenceCache`;
                sequences are served from (and added to) it by patch sha.
        """
        return self.fit(self._tokenize(patches, cache), y)

    @staticmethod
    def _tokenize(patches, cache) -> list[list[str]]:
        if cache is not None:
            return [cache.sequence_of(p) for p in patches]
        return [patch_token_sequence(p) for p in patches]

    # ------------------------------------------------------------------

    def _forward(
        self, ids: np.ndarray, mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """Run the RNN; returns (p1, pooled, cache-for-backprop)."""
        p = self._params
        b_sz, t_len = ids.shape
        h = np.zeros((b_sz, self.hidden_dim))
        hs = np.zeros((t_len + 1, b_sz, self.hidden_dim))  # hs[0] = h_{-1} = 0
        h_tildes = np.zeros((t_len, b_sz, self.hidden_dim))
        xs = p["E"][ids]  # (B, T, e)
        for t in range(t_len):
            a = xs[:, t] @ p["Wxh"] + h @ p["Whh"] + p["bh"]
            h_tilde = np.tanh(a)
            m = mask[:, t : t + 1]
            h = m * h_tilde + (1.0 - m) * h
            h_tildes[t] = h_tilde
            hs[t + 1] = h
        denom = mask.sum(axis=1, keepdims=True)
        pooled = (hs[1:].transpose(1, 0, 2) * mask[:, :, None]).sum(axis=1) / denom
        logit = pooled @ p["w"] + p["b"][0]
        p1 = sigmoid(logit)
        cache = {"ids": ids, "mask": mask, "xs": xs, "hs": hs, "h_tildes": h_tildes, "denom": denom, "pooled": pooled}
        return p1, pooled, cache

    def _train_step(self, ids: np.ndarray, mask: np.ndarray, y: np.ndarray) -> float:
        p = self._params
        b_sz, t_len = ids.shape
        p1, pooled, cache = self._forward(ids, mask)
        eps = 1e-9
        loss = float(-np.mean(y * np.log(p1 + eps) + (1 - y) * np.log(1 - p1 + eps)))

        grads = {k: np.zeros_like(v) for k, v in p.items()}
        dlogit = (p1 - y) / b_sz  # (B,)
        grads["w"] = pooled.T @ dlogit
        grads["b"][0] = dlogit.sum()
        dpooled = np.outer(dlogit, p["w"])  # (B, h)

        hs, h_tildes, xs = cache["hs"], cache["h_tildes"], cache["xs"]
        denom = cache["denom"]
        dh_next = np.zeros((b_sz, self.hidden_dim))
        dE_rows: list[tuple[np.ndarray, np.ndarray]] = []
        for t in range(t_len - 1, -1, -1):
            m = mask[:, t : t + 1]
            dh = dh_next + dpooled * (m / denom)
            da = (dh * m) * (1.0 - h_tildes[t] ** 2)
            grads["Wxh"] += xs[:, t].T @ da
            grads["Whh"] += hs[t].T @ da
            grads["bh"] += da.sum(axis=0)
            dx = da @ p["Wxh"].T
            dE_rows.append((ids[:, t], dx))
            dh_next = da @ p["Whh"].T + dh * (1.0 - m)
        for row_ids, dx in dE_rows:
            np.add.at(grads["E"], row_ids, dx)
        grads["E"][0] = 0.0  # PAD stays zero

        self._adam_update(grads)
        return loss

    def _adam_update(self, grads: dict[str, np.ndarray]) -> None:
        # Global-norm clip.
        total = np.sqrt(sum(float(np.sum(g * g)) for g in grads.values()))
        scale = self.clip / total if total > self.clip else 1.0
        self._adam_t += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        t = self._adam_t
        for key, g in grads.items():
            g = g * scale
            self._adam_m[key] = b1 * self._adam_m[key] + (1 - b1) * g
            self._adam_v[key] = b2 * self._adam_v[key] + (1 - b2) * g * g
            m_hat = self._adam_m[key] / (1 - b1**t)
            v_hat = self._adam_v[key] / (1 - b2**t)
            self._params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        self._params["E"][0] = 0.0

    # ------------------------------------------------------------------

    def predict_proba(self, sequences: list[list[str]]) -> np.ndarray:
        """Class probabilities, shape (N, 2)."""
        if self.vocab is None or self._params is None:
            raise NotFittedError("RNNClassifier is not fitted")
        if not sequences:
            return np.zeros((0, 2))
        probs: list[np.ndarray] = []
        for start in range(0, len(sequences), 256):
            chunk = sequences[start : start + 256]
            ids, mask = encode_batch(self.vocab, chunk, self.max_len)
            p1, _, _ = self._forward(ids, mask)
            probs.append(p1)
        p1 = np.concatenate(probs)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, sequences: list[list[str]]) -> np.ndarray:
        """Hard labels at the 0.5 threshold."""
        return (self.predict_proba(sequences)[:, 1] >= 0.5).astype(np.int64)

    def predict_patches(self, patches, cache=None) -> np.ndarray:
        """Convenience: tokenize patches (optionally via a shared
        :class:`~repro.core.cache.TokenSequenceCache`) then predict."""
        return self.predict(self._tokenize(patches, cache))
