"""Persisted fitted models, keyed by a sha of their training set.

The Table IV/VI fits — and the serve layer's classify-on-demand model —
are pure functions of (training shas, labels, estimator configuration).
:class:`FittedModelCache` memoizes those fits the way
:class:`~repro.core.cache.TokenSequenceCache` memoizes token sequences:
an in-memory map in front of an optional pickle file, where a corrupt,
truncated, or format-mismatched file degrades to a cold cache instead of
an error.  Re-evaluating with a changed test set (train set unchanged)
then costs zero training, and a warmed server classifies requests without
ever fitting per request.

The key is computed by :func:`training_key`: a sha256 over the sorted
``(sha, label)`` pairs plus a canonical JSON encoding of the estimator
configuration and the cache format revision.  Sorting makes the key
order-insensitive — the same labeled set always maps to the same fitted
model — while any change to the data, the labels, the hyperparameters, or
the pickled layout produces a different key and therefore a clean miss.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from ..obs import ObsRegistry, trace_span

__all__ = ["FittedModelCache", "training_key"]


def training_key(
    shas: Sequence[str],
    labels: Iterable[int],
    config: dict[str, Any] | None = None,
) -> str:
    """The cache key of a fit: sha256 of the labeled training set + config.

    Args:
        shas: training-set patch shas (any order; the key sorts them).
        labels: one integer label per sha, aligned with *shas*.
        config: estimator identity — class name, hyperparameters, feature
            schema — anything that changes what ``fit`` would produce.
    """
    pairs = sorted(zip(shas, (int(l) for l in labels)))
    payload = {
        "format": FittedModelCache._FORMAT,
        "training_set": pairs,
        "config": config or {},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


class FittedModelCache:
    """Key → fitted-estimator map with pickle persistence.

    Args:
        persist_path: optional pickle file to preload from (if present)
            and to write via :meth:`save`.  A corrupt or mismatched file
            is treated as a cold cache, mirroring
            :class:`~repro.core.cache.TokenSequenceCache`.
        obs: observability registry for ``model_cache_hits`` /
            ``model_cache_misses`` / ``models_loaded`` counters and the
            ``model_fit`` timer; a private one is created if omitted.
    """

    _FORMAT = "repro-model-cache-v1"

    def __init__(
        self,
        persist_path: str | Path | None = None,
        obs: ObsRegistry | None = None,
    ) -> None:
        self._models: dict[str, Any] = {}
        self._persist_path = Path(persist_path) if persist_path is not None else None
        self.obs = obs if obs is not None else ObsRegistry()
        if self._persist_path is not None and self._persist_path.exists():
            self._load(self._persist_path)

    # ---- persistence ------------------------------------------------------

    def _load(self, path: Path) -> None:
        try:
            with path.open("rb") as fh:
                data = pickle.load(fh)
            if not isinstance(data, dict) or data.get("format") != self._FORMAT:
                return
            models = data["models"]
            if not isinstance(models, dict):
                return
        except Exception:
            return  # a corrupt cache file is just a cold cache
        self._models.update(models)
        self.obs.add("models_loaded", len(models))

    def save(self, path: str | Path | None = None) -> Path:
        """Write every cached model to a pickle file; returns the path.

        Raises:
            ValueError: if no path was given here or at construction.
        """
        target = Path(path) if path is not None else self._persist_path
        if target is None:
            raise ValueError("no persist path configured for FittedModelCache.save")
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": self._FORMAT, "models": self._models}
        with target.open("wb") as fh:
            pickle.dump(payload, fh)
        return target

    # ---- lookup -----------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The cached model for *key*, or ``None`` (counts a hit/miss)."""
        model = self._models.get(key)
        with trace_span("model_cache.get", hit=model is not None):
            if model is None:
                self.obs.add("model_cache_misses")
            else:
                self.obs.add("model_cache_hits")
        return model

    def put(self, key: str, model: Any) -> None:
        """Store a fitted model under *key*."""
        self._models[key] = model

    def get_or_fit(self, key: str, fit: Callable[[], Any]) -> Any:
        """The cached model for *key*, fitting (and storing) it on a miss.

        *fit* runs under the ``model_fit`` timer, so a ``--stats`` report
        shows exactly how much training the cache saved or paid.
        """
        model = self._models.get(key)
        if model is not None:
            self.obs.add("model_cache_hits")
            return model
        self.obs.add("model_cache_misses")
        with self.obs.timer("model_fit"), trace_span("model.fit", key=key[:16]):
            model = fit()
        self._models[key] = model
        return model

    def __contains__(self, key: str) -> bool:
        return key in self._models

    def __len__(self) -> int:
        return len(self._models)
