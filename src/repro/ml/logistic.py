"""L2-regularized logistic regression trained by full-batch gradient descent.

One of the ten heterogeneous classifiers in the uncertainty-based labeling
baseline (Table III).  Inputs are standardized internally so the paper's raw
count features do not need manual scaling.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy
from .preprocess import StandardScaler

__all__ = ["LogisticRegression", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(Classifier):
    """Binary logistic regression.

    Args:
        learning_rate: gradient-descent step size.
        n_iter: number of full-batch iterations.
        l2: ridge penalty strength (on weights, not the intercept).
        standardize: standardize inputs internally.
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iter: int = 300,
        l2: float = 1e-3,
        standardize: bool = True,
    ) -> None:
        if learning_rate <= 0 or n_iter < 1 or l2 < 0:
            raise ModelError("invalid hyperparameters")
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.standardize = standardize
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._scaler: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        if self.standardize:
            self._scaler = StandardScaler()
            X = self._scaler.fit_transform(X)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        yf = y.astype(np.float64)
        for _ in range(self.n_iter):
            p = sigmoid(X @ w + b)
            err = p - yf
            grad_w = X.T @ err / n + self.l2 * w
            grad_b = float(np.mean(err))
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights = w
        self.bias = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        if self._scaler is not None:
            X = self._scaler.transform(X)
        p1 = sigmoid(X @ self.weights + self.bias)
        return np.column_stack([1.0 - p1, p1])
