"""Evaluation metrics and interval estimates.

Provides the precision/recall numbers reported in Tables IV and VI and the
95% confidence intervals on sampled proportions reported in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

__all__ = [
    "confusion_matrix",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "ClassificationReport",
    "classification_report",
    "proportion_confidence_interval",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ModelError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return y_true, y_pred


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[tn, fp], [fn, tp]]``."""
    y_true, y_pred = _validate(y_true, y_pred)
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    return np.array([[tn, fp], [fn, tp]], dtype=np.int64)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FP); 0.0 when nothing is predicted positive."""
    cm = confusion_matrix(y_true, y_pred)
    tp, fp = cm[1, 1], cm[0, 1]
    return float(tp / (tp + fp)) if tp + fp else 0.0


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FN); 0.0 when there are no positives."""
    cm = confusion_matrix(y_true, y_pred)
    tp, fn = cm[1, 1], cm[1, 0]
    return float(tp / (tp + fn)) if tp + fn else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if p + r else 0.0


@dataclass(frozen=True, slots=True)
class ClassificationReport:
    """Bundled binary-classification metrics."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    support_positive: int
    support_negative: int

    def row(self) -> str:
        """One-line summary suitable for experiment tables."""
        return (
            f"acc={self.accuracy:.3f} precision={self.precision:.3f} "
            f"recall={self.recall:.3f} f1={self.f1:.3f} "
            f"(+{self.support_positive}/-{self.support_negative})"
        )


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> ClassificationReport:
    """Compute all binary metrics at once."""
    y_true, y_pred = _validate(y_true, y_pred)
    return ClassificationReport(
        accuracy=accuracy(y_true, y_pred),
        precision=precision(y_true, y_pred),
        recall=recall(y_true, y_pred),
        f1=f1_score(y_true, y_pred),
        support_positive=int(np.sum(y_true == 1)),
        support_negative=int(np.sum(y_true == 0)),
    )


def proportion_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation CI for a sampled proportion (Table III's ±).

    Args:
        successes: number of positive outcomes in the sample.
        trials: sample size.
        confidence: two-sided confidence level (0.95 → z ≈ 1.96).

    Returns:
        ``(p_hat, half_width)``, both in [0, 1].
    """
    if trials <= 0:
        raise ModelError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ModelError("successes must lie in [0, trials]")
    p_hat = successes / trials
    z = _z_value(confidence)
    half = z * float(np.sqrt(p_hat * (1.0 - p_hat) / trials))
    return p_hat, half


def _z_value(confidence: float) -> float:
    """Two-sided z critical value via inverse error function."""
    if not 0.0 < confidence < 1.0:
        raise ModelError("confidence must be in (0, 1)")
    from math import erf, sqrt

    # Invert Phi numerically (bisection is plenty for one call).
    target = (1.0 + confidence) / 2.0
    lo, hi = 0.0, 10.0
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if 0.5 * (1.0 + erf(mid / sqrt(2.0))) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
