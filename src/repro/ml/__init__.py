"""From-scratch NumPy machine-learning substrate.

Stands in for the paper's Weka toolchain (Table III's ten consensus
classifiers), the Random Forest used for pseudo-labeling and dataset-quality
experiments, SMOTE, and the RNN token model — every estimator shares the
``fit``/``predict``/``predict_proba`` protocol of :class:`Classifier`.
"""

from .base import Classifier
from .bayesnet import TreeAugmentedNaiveBayes
from .engine import fit_many
from .forest import RandomForestClassifier
from .knn import KNeighborsClassifier
from .logistic import LogisticRegression
from .model_cache import FittedModelCache, training_key
from .metrics import (
    ClassificationReport,
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    proportion_confidence_interval,
    recall,
)
from .naive_bayes import DiscretizedNaiveBayes, GaussianNaiveBayes
from .perceptron import VotedPerceptron
from .preprocess import StandardScaler
from .reptree import REPTreeClassifier
from .rnn import RNNClassifier
from .sgd import SGDClassifier
from .smo import SMOClassifier
from .smote import smote_oversample
from .split import bootstrap_indices, stratified_kfold, train_test_split
from .svm import LinearSVM
from .tokenizer import Vocabulary, encode_batch, patch_token_sequence
from .tree import DecisionTreeClassifier

__all__ = [
    "Classifier",
    "ClassificationReport",
    "DecisionTreeClassifier",
    "DiscretizedNaiveBayes",
    "GaussianNaiveBayes",
    "KNeighborsClassifier",
    "LinearSVM",
    "LogisticRegression",
    "REPTreeClassifier",
    "RNNClassifier",
    "RandomForestClassifier",
    "SGDClassifier",
    "SMOClassifier",
    "StandardScaler",
    "TreeAugmentedNaiveBayes",
    "Vocabulary",
    "VotedPerceptron",
    "accuracy",
    "bootstrap_indices",
    "classification_report",
    "confusion_matrix",
    "encode_batch",
    "f1_score",
    "fit_many",
    "FittedModelCache",
    "patch_token_sequence",
    "precision",
    "proportion_confidence_interval",
    "recall",
    "smote_oversample",
    "stratified_kfold",
    "train_test_split",
    "training_key",
    "weka_ensemble",
]


def weka_ensemble(seed: int = 0) -> list[Classifier]:
    """The ten heterogeneous classifiers of the uncertainty baseline.

    Mirrors the paper's Weka set: Random Forest, SVM, Logistic Regression,
    SGD, SMO, Naive Bayes, Bayesian Network, J48-style decision tree,
    REPTree, and Voted Perceptron.
    """
    return [
        RandomForestClassifier(n_estimators=30, max_depth=12, seed=seed),
        LinearSVM(seed=seed + 1),
        LogisticRegression(),
        SGDClassifier(loss="log", seed=seed + 2),
        SMOClassifier(seed=seed + 3, max_iter=10),
        GaussianNaiveBayes(),
        TreeAugmentedNaiveBayes(),
        DecisionTreeClassifier(max_depth=12, min_samples_leaf=3, criterion="entropy", seed=seed + 4),
        REPTreeClassifier(seed=seed + 5),
        VotedPerceptron(seed=seed + 6),
    ]
