"""SMOTE: Synthetic Minority Over-sampling TEchnique (Chawla et al., 2002).

The traditional feature-space oversampler the paper contrasts with its
source-level patch synthesis (§III-C, RQ3): SMOTE interpolates between a
minority sample and one of its k nearest minority neighbors, producing
vectors that cannot be mapped back to source code — which is exactly the
interpretability gap PatchDB's oversampling closes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import seeded_rng

__all__ = ["smote_oversample"]


def smote_oversample(
    X: np.ndarray,
    y: np.ndarray,
    n_new: int,
    k: int = 5,
    minority_label: int = 1,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate *n_new* synthetic minority samples.

    Args:
        X: feature matrix, shape (n, d).
        y: binary labels.
        n_new: number of synthetic rows to create.
        k: neighborhood size for interpolation partners.
        minority_label: which class to oversample.
        seed: RNG.

    Returns:
        ``(X_aug, y_aug)`` with the synthetic rows appended.

    Raises:
        ModelError: if the minority class has fewer than 2 samples.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64)
    rng = seeded_rng(seed)
    minority = X[y == minority_label]
    m = minority.shape[0]
    if m < 2:
        raise ModelError("SMOTE needs at least 2 minority samples")
    if n_new <= 0:
        return X.copy(), y.copy()
    k_eff = min(k, m - 1)
    # Pairwise distances within the minority class.
    d_sq = (
        np.sum(minority * minority, axis=1)[:, None]
        + np.sum(minority * minority, axis=1)[None, :]
        - 2.0 * (minority @ minority.T)
    )
    np.fill_diagonal(d_sq, np.inf)
    neighbor_idx = np.argsort(d_sq, axis=1, kind="stable")[:, :k_eff]

    base = rng.integers(0, m, size=n_new)
    partner_slot = rng.integers(0, k_eff, size=n_new)
    partners = neighbor_idx[base, partner_slot]
    gaps = rng.random(size=(n_new, 1))
    synthetic = minority[base] + gaps * (minority[partners] - minority[base])

    X_aug = np.vstack([X, synthetic])
    y_aug = np.concatenate([y, np.full(n_new, minority_label, dtype=np.int64)])
    return X_aug, y_aug
