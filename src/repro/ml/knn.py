"""k-nearest-neighbors classifier.

Included both as a consensus classifier and because §III-B explicitly
contrasts nearest link search with KNN: KNN may assign one neighbor to many
queries, while a nearest link candidate is consumed at most once.  Tests use
this class to demonstrate that distinction.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy
from .preprocess import StandardScaler

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(Classifier):
    """Majority vote over the *k* nearest training points (Euclidean).

    Args:
        k: neighborhood size.
        standardize: scale features before distance computation.
    """

    def __init__(self, k: int = 5, standardize: bool = True) -> None:
        if k < 1:
            raise ModelError("k must be >= 1")
        self.k = k
        self.standardize = standardize
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._scaler: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        if self.standardize:
            self._scaler = StandardScaler()
            X = self._scaler.fit_transform(X)
        self._X = X
        self._y = y
        return self

    def kneighbors(self, X: np.ndarray) -> np.ndarray:
        """Indices of the k nearest training rows per query, shape (n, k)."""
        self._require_fitted()
        X = check_X(X, self._n_features)
        if self._scaler is not None:
            X = self._scaler.transform(X)
        k = min(self.k, self._X.shape[0])
        d_sq = (
            np.sum(X * X, axis=1)[:, None]
            + np.sum(self._X * self._X, axis=1)[None, :]
            - 2.0 * (X @ self._X.T)
        )
        return np.argsort(d_sq, axis=1, kind="stable")[:, :k]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        neighbors = self.kneighbors(X)
        p1 = self._y[neighbors].mean(axis=1)
        return np.column_stack([1.0 - p1, p1])
