"""Tree-Augmented Naive Bayes (TAN) — the "Bayesian Network" classifier.

Weka's BayesNet with its default K2/TAN search learns a restricted network
structure over discretized attributes.  We implement the classic TAN of
Friedman, Geiger & Goldszmidt (1997): build a maximum-spanning tree over
features using class-conditional mutual information (Chow-Liu), root it, and
give every feature the class plus (at most) one feature parent.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy

__all__ = ["TreeAugmentedNaiveBayes"]


class TreeAugmentedNaiveBayes(Classifier):
    """TAN classifier over equal-frequency discretized features.

    Args:
        n_bins: buckets per feature.
        alpha: Laplace smoothing count.
    """

    def __init__(self, n_bins: int = 6, alpha: float = 1.0) -> None:
        if n_bins < 2 or alpha <= 0:
            raise ModelError("n_bins >= 2 and alpha > 0 required")
        self.n_bins = n_bins
        self.alpha = alpha
        self._edges: list[np.ndarray] | None = None
        self._parent: np.ndarray | None = None  # parent[j] = feature parent or -1
        self._log_prior: np.ndarray | None = None
        # cond[j] has shape (2, parent_bins_or_1, bins): P(x_j | c, x_parent)
        self._log_cond: list[np.ndarray] | None = None

    # ------------------------------------------------------------------

    def _bin(self, X: np.ndarray) -> np.ndarray:
        binned = np.empty(X.shape, dtype=np.int64)
        for j, edges in enumerate(self._edges):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return np.clip(binned, 0, self.n_bins - 1)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TreeAugmentedNaiveBayes":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        d = X.shape[1]
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self._edges = [np.unique(np.quantile(X[:, j], quantiles)) for j in range(d)]
        binned = self._bin(X)

        mi = self._conditional_mutual_information(binned, y)
        self._parent = self._chow_liu_parents(mi)

        prior = np.array([np.mean(y == 0), np.mean(y == 1)])
        prior = np.clip(prior, 1e-9, None)
        self._log_prior = np.log(prior)

        cond: list[np.ndarray] = []
        for j in range(d):
            parent = self._parent[j]
            pb = self.n_bins if parent >= 0 else 1
            counts = np.full((2, pb, self.n_bins), self.alpha)
            for c in (0, 1):
                rows = binned[y == c]
                if parent >= 0:
                    np.add.at(counts[c], (rows[:, parent], rows[:, j]), 1.0)
                else:
                    np.add.at(counts[c, 0], rows[:, j], 1.0)
            cond.append(np.log(counts / counts.sum(axis=2, keepdims=True)))
        self._log_cond = cond
        return self

    def _conditional_mutual_information(self, binned: np.ndarray, y: np.ndarray) -> np.ndarray:
        """I(X_i; X_j | C) matrix over feature pairs."""
        n, d = binned.shape
        b = self.n_bins
        mi = np.zeros((d, d))
        for c in (0, 1):
            rows = binned[y == c]
            if len(rows) == 0:
                continue
            pc = len(rows) / n
            # Per-feature marginals within class c.
            marg = np.zeros((d, b))
            for j in range(d):
                np.add.at(marg[j], rows[:, j], 1.0)
            marg = (marg + 1e-12) / len(rows)
            for i in range(d):
                for j in range(i + 1, d):
                    joint = np.zeros((b, b))
                    np.add.at(joint, (rows[:, i], rows[:, j]), 1.0)
                    joint = (joint + 1e-12) / len(rows)
                    term = joint * (np.log(joint) - np.log(marg[i])[:, None] - np.log(marg[j])[None, :])
                    mi[i, j] += pc * float(term.sum())
        return mi + mi.T

    @staticmethod
    def _chow_liu_parents(mi: np.ndarray) -> np.ndarray:
        """Maximum spanning tree (Prim) rooted at feature 0 → parent array."""
        d = mi.shape[0]
        parent = np.full(d, -1, dtype=np.int64)
        in_tree = np.zeros(d, dtype=bool)
        in_tree[0] = True
        best_gain = mi[0].copy()
        best_src = np.zeros(d, dtype=np.int64)
        for _ in range(d - 1):
            candidates = np.where(~in_tree, best_gain, -np.inf)
            nxt = int(np.argmax(candidates))
            if not np.isfinite(candidates[nxt]):
                break
            parent[nxt] = best_src[nxt]
            in_tree[nxt] = True
            better = mi[nxt] > best_gain
            best_gain = np.where(better, mi[nxt], best_gain)
            best_src = np.where(better, nxt, best_src)
        return parent

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self._n_features)
        binned = self._bin(X)
        n, d = binned.shape
        log_like = np.tile(self._log_prior, (n, 1))
        for j in range(d):
            parent = self._parent[j]
            pidx = binned[:, parent] if parent >= 0 else np.zeros(n, dtype=np.int64)
            for c in (0, 1):
                log_like[:, c] += self._log_cond[j][c, pidx, binned[:, j]]
        log_like -= log_like.max(axis=1, keepdims=True)
        probs = np.exp(log_like)
        return probs / probs.sum(axis=1, keepdims=True)
