"""Linear support vector machine trained with the Pegasos subgradient method.

Pegasos (Shalev-Shwartz et al.) solves the primal SVM objective with
projected stochastic subgradient steps — compact, dependency-free, and
plenty for the 60-dimensional feature space.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy, seeded_rng
from .logistic import sigmoid
from .preprocess import StandardScaler

__all__ = ["LinearSVM"]


class LinearSVM(Classifier):
    """Primal linear SVM (hinge loss, L2 regularization).

    Args:
        lam: regularization strength (Pegasos λ).
        epochs: passes over the data.
        seed: shuffling RNG.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        epochs: int = 30,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if lam <= 0 or epochs < 1:
            raise ModelError("invalid hyperparameters")
        self.lam = lam
        self.epochs = epochs
        self._rng = seeded_rng(seed)
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._scaler: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        self._scaler = StandardScaler()
        X = self._scaler.fit_transform(X)
        n, d = X.shape
        y_signed = 2.0 * y.astype(np.float64) - 1.0
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for i in order:
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = y_signed[i] * (X[i] @ w + b)
                if margin < 1.0:
                    w = (1.0 - eta * self.lam) * w + eta * y_signed[i] * X[i]
                    b += eta * y_signed[i]
                else:
                    w = (1.0 - eta * self.lam) * w
                # Pegasos projection onto the ball of radius 1/sqrt(lam).
                norm = np.linalg.norm(w)
                bound = 1.0 / np.sqrt(self.lam)
                if norm > bound:
                    w *= bound / norm
        self.weights = w
        self.bias = b
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Signed margins (positive = class 1)."""
        self._require_fitted()
        X = check_X(X, self._n_features)
        X = self._scaler.transform(X)
        return X @ self.weights + self.bias

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = sigmoid(self.decision_scores(X))
        return np.column_stack([1.0 - p1, p1])
