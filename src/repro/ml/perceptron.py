"""Voted perceptron (Freund & Schapire, 1999).

Keeps every intermediate weight vector together with its survival count and
predicts with the survival-weighted vote — one of the ten consensus
classifiers in Table III.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_Xy, seeded_rng
from .logistic import sigmoid
from .preprocess import StandardScaler

__all__ = ["VotedPerceptron"]


class VotedPerceptron(Classifier):
    """Voted perceptron.

    Args:
        epochs: passes over the shuffled training set.
        max_vectors: cap on stored prototype vectors (oldest are merged into
            the running vote to bound memory).
        seed: shuffling RNG.
    """

    def __init__(
        self,
        epochs: int = 10,
        max_vectors: int = 500,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if epochs < 1 or max_vectors < 1:
            raise ModelError("invalid hyperparameters")
        self.epochs = epochs
        self.max_vectors = max_vectors
        self._rng = seeded_rng(seed)
        self._scaler: StandardScaler | None = None
        self._vectors: np.ndarray | None = None  # (k, d+1) with bias column
        self._counts: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "VotedPerceptron":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        self._scaler = StandardScaler()
        X = self._scaler.fit_transform(X)
        n, d = X.shape
        y_signed = 2.0 * y.astype(np.float64) - 1.0
        w = np.zeros(d + 1)
        count = 0
        vectors: list[np.ndarray] = []
        counts: list[int] = []
        Xb = np.column_stack([X, np.ones(n)])
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for i in order:
                if y_signed[i] * (w @ Xb[i]) <= 0.0:
                    if count > 0:
                        vectors.append(w.copy())
                        counts.append(count)
                        if len(vectors) > self.max_vectors:
                            # Merge the two oldest to bound memory.
                            merged = vectors[0] * counts[0] + vectors[1] * counts[1]
                            total = counts[0] + counts[1]
                            vectors[:2] = [merged / total]
                            counts[:2] = [total]
                    w = w + y_signed[i] * Xb[i]
                    count = 1
                else:
                    count += 1
        vectors.append(w.copy())
        counts.append(max(count, 1))
        self._vectors = np.vstack(vectors)
        self._counts = np.asarray(counts, dtype=np.float64)
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Survival-weighted signed vote in [-1, 1]."""
        self._require_fitted()
        X = check_X(X, self._n_features)
        X = self._scaler.transform(X)
        Xb = np.column_stack([X, np.ones(X.shape[0])])
        signs = np.sign(Xb @ self._vectors.T)  # (n, k)
        return (signs @ self._counts) / self._counts.sum()

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = sigmoid(3.0 * self.decision_scores(X))  # squash the vote
        return np.column_stack([1.0 - p1, p1])
