"""Posting-list index and render cache behind the PatchDB query hot path.

Every ``/v1/patches`` request used to walk all N records through
:meth:`PatchQuery.matches <repro.core.query.PatchQuery.matches>` — twice,
once for the match count and once for the page — and then re-render each
hit's ``git format-patch`` text from scratch.  This module replaces both
O(N) costs with O(result) ones:

* :class:`PatchIndex` keeps one **posting list** per ``(field, value)``
  pair — a sorted ``numpy`` ``int32`` array of row ids — for every
  indexable :class:`~repro.core.query.PatchQuery` field (``source``,
  ``is_security``, ``pattern_type``, ``repo``, plus the ``sha``/``cve_id``
  point-lookup hash maps).  A small conjunction planner starts from the
  smallest list of a query and filters it by sorted-membership
  (``searchsorted``) against the rest, so a selective filter costs
  O(smallest posting list), not O(N); plans are memoized per frozen
  query value until the next write.  Row ids
  are appended in insertion order and intersection keeps them sorted, so
  the planned result is **bit-identical in content and order** to the scan
  path — the index is a pure optimization, property-tested as such.
* :class:`RecordRenderCache` memoizes each record's rendered mbox text and
  JSONL line the first time it is serialized, so repeated streaming of the
  same records (``/v1/patches.jsonl``, ``save_jsonl``, ``include_patch``
  queries) costs bytes-out only.

Both structures are maintained incrementally — :meth:`PatchIndex.add`
appends row ids without rebuilding, and the per-key ``numpy`` arrays are
re-materialized lazily only for keys that grew — and both pickle cleanly
(the derived array cache and the identity-keyed render entries are dropped
on ``__getstate__``; they rebuild on demand).

A query whose predicate fields are not all indexable (e.g. a future
``PatchQuery`` field this index predates) makes :meth:`PatchIndex.lookup`
return ``None``, and :class:`~repro.core.patchdb.PatchDB` falls back to
the scan path — counted as ``index.fallback`` against ``index.hit`` in
the observability registry, visible in the service's ``/statsz``.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from ..obs import ObsRegistry, trace_span
from ..patch.gitformat import render_mbox_patch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .patchdb import PatchRecord
    from .query import PatchQuery

__all__ = ["PatchIndex", "RecordRenderCache"]

#: How each indexable query field reads its key off a record.  ``None``
#: keys (unset ``pattern_type``/``cve_id``) are not posted — a query can
#: only filter on concrete values, so rows without one can never match.
_EXTRACTORS: dict[str, Callable[["PatchRecord"], object]] = {
    "source": lambda r: r.source,
    "is_security": lambda r: r.is_security,
    "pattern_type": lambda r: r.pattern_type,
    "repo": lambda r: r.patch.repo,
    "sha": lambda r: r.patch.sha,
    "cve_id": lambda r: r.cve_id,
}

#: Query fields that paginate rather than filter.
_PAGINATION_FIELDS = frozenset({"limit", "offset"})

_EMPTY = np.empty(0, dtype=np.int32)

#: Memoized predicate-field names per query class (``dataclasses.fields``
#: re-walks the class every call; the serve hot path calls lookup per
#: request, so pay that walk once per class instead).
_PREDICATE_FIELDS: dict[type, tuple[str, ...]] = {}

#: Sentinel distinguishing "memo miss" from a memoized ``None`` (fallback).
_MISS = object()

#: Planned-query memo cap; cleared wholesale when full (the working set of
#: distinct queries behind real traffic is far smaller).
_MEMO_CAP = 512


def _predicate_fields(query_cls: type) -> tuple[str, ...]:
    names = _PREDICATE_FIELDS.get(query_cls)
    if names is None:
        names = tuple(
            f.name for f in dataclass_fields(query_cls) if f.name not in _PAGINATION_FIELDS
        )
        _PREDICATE_FIELDS[query_cls] = names
    return names


class PatchIndex:
    """Per-field posting lists + conjunction planner over one record list.

    The index mirrors an insertion-ordered sequence of records: row id
    ``i`` is the ``i``-th record ever added.  It never stores the records
    themselves, so the owning :class:`~repro.core.patchdb.PatchDB` remains
    the single source of truth and the index stays cheap to pickle.

    Args:
        records: initial records to index (row ids 0..n-1).
    """

    def __init__(self, records: Iterable["PatchRecord"] = ()) -> None:
        self._n = 0
        #: field -> value -> growing list of row ids (insertion order).
        self._postings: dict[str, dict[object, list[int]]] = {
            name: {} for name in _EXTRACTORS
        }
        #: (field, value) -> materialized int32 array; rebuilt lazily when
        #: the backing list grew, dropped from pickles.
        self._arrays: dict[tuple[str, object], np.ndarray] = {}
        #: query -> planned row ids (or None for fallback); queries are
        #: frozen/hashable, so repeated requests — including the count+page
        #: pair every serve query issues — plan once.  Cleared on add.
        self._memo: dict[object, np.ndarray | None] = {}
        self.extend(records)

    # ---- incremental maintenance ------------------------------------------

    def __len__(self) -> int:
        return self._n

    def add(self, record: "PatchRecord") -> None:
        """Index one appended record (append row ids; no rebuild)."""
        row = self._n
        self._n += 1
        if self._memo:
            self._memo.clear()  # planned results reflect the old row count
        for field, extract in _EXTRACTORS.items():
            key = extract(record)
            if key is None:
                continue
            self._postings[field].setdefault(key, []).append(row)

    def extend(self, records: Iterable["PatchRecord"]) -> None:
        """Index many appended records."""
        for record in records:
            self.add(record)

    # ---- planning ----------------------------------------------------------

    def _posting(self, field: str, key: object) -> np.ndarray:
        """The sorted int32 row array for one ``(field, value)`` pair."""
        rows = self._postings[field].get(key)
        if rows is None:
            return _EMPTY
        cached = self._arrays.get((field, key))
        if cached is not None and len(cached) == len(rows):
            return cached
        arr = np.asarray(rows, dtype=np.int32)
        self._arrays[(field, key)] = arr
        return arr

    def lookup(self, query: "PatchQuery") -> np.ndarray | None:
        """Row ids matching *query*'s predicates, in insertion order.

        Pagination fields are ignored (the caller slices).  Returns
        ``None`` when the query carries a predicate this index has no
        posting lists for — the signal to fall back to a scan.  With no
        predicates at all, every row matches.

        The conjunction plan starts from the smallest posting list and
        filters it by sorted-membership (``np.searchsorted``) against each
        larger one — O(m log n) in the smallest list m, never sorting the
        larger lists' concatenation the way ``np.intersect1d`` would.  Each
        list holds unique ascending row ids and filtering preserves the
        survivors' order, so the result stays sorted — i.e. in insertion
        order, exactly the sequence the scan path would produce.

        Plans are memoized per query object value (queries are frozen and
        hashable) until the next :meth:`add`, so the count+page pair every
        serve request issues — and repeated traffic on the same filters —
        plans once.
        """
        cached = self._memo.get(query, _MISS)
        if cached is not _MISS:
            return cached
        with trace_span("index.lookup") as sp:
            out = self._plan(query)
            if sp is not None:
                sp.attributes["rows"] = -1 if out is None else int(len(out))
        if len(self._memo) >= _MEMO_CAP:
            self._memo.clear()
        self._memo[query] = out
        return out

    def _plan(self, query: "PatchQuery") -> np.ndarray | None:
        """The uncached conjunction plan behind :meth:`lookup`."""
        arrays: list[np.ndarray] = []
        postings = self._postings
        for name in _predicate_fields(type(query)):
            value = getattr(query, name)
            if value is None:
                continue
            if name not in postings:
                return None  # unindexable predicate: scan fallback
            arrays.append(self._posting(name, value))
        if not arrays:
            return np.arange(self._n, dtype=np.int32)
        arrays.sort(key=len)
        out = arrays[0]
        for arr in arrays[1:]:
            if len(out) == 0:
                break
            pos = arr.searchsorted(out)
            pos[pos == len(arr)] = 0  # out-of-range probes can never match
            out = out[arr[pos] == out]
        return out

    # ---- persistence -------------------------------------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_arrays"] = {}  # derived; rebuilt lazily after load
        state["_memo"] = {}
        return state


class RecordRenderCache:
    """Render-once memo of each record's mbox text and JSONL line.

    Entries are keyed by record identity (a strong reference is held, so
    ids stay valid); the cache grows to at most one entry per distinct
    record object served, i.e. it is bounded by the dataset itself.
    Rendering is lazy — a record costs one
    :func:`~repro.patch.gitformat.render_mbox_patch` the first time any
    serialization needs it, and pointer reads after that.

    Args:
        obs: registry for the ``render_cache.hit`` / ``render_cache.miss``
            counters (one per :meth:`mbox`/:meth:`json_line` call); leave
            ``None`` to skip counting.
    """

    def __init__(self, obs: ObsRegistry | None = None) -> None:
        self.obs = obs
        #: id(record) -> [record, mbox text | None, json line | None].
        self._entries: dict[int, list] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.add(name)

    def _entry(self, record: "PatchRecord") -> list:
        entry = self._entries.get(id(record))
        if entry is None or entry[0] is not record:
            entry = [record, None, None]
            self._entries[id(record)] = entry
        return entry

    def mbox(self, record: "PatchRecord") -> str:
        """The record's ``git format-patch`` text, rendered at most once."""
        entry = self._entry(record)
        if entry[1] is None:
            self._count("render_cache.miss")
            with trace_span("render.record", kind="mbox"):
                entry[1] = render_mbox_patch(record.patch)
        else:
            self._count("render_cache.hit")
        return entry[1]

    def json_line(self, record: "PatchRecord") -> str:
        """The record's JSONL line (no trailing newline), rendered at most
        once and byte-identical to :meth:`PatchRecord.to_json`."""
        entry = self._entry(record)
        if entry[2] is None:
            self._count("render_cache.miss")
            with trace_span("render.record", kind="jsonl"):
                if entry[1] is None:
                    entry[1] = render_mbox_patch(record.patch)
                entry[2] = record.to_json(patch_text=entry[1])
        else:
            self._count("render_cache.hit")
        return entry[2]

    def __getstate__(self) -> dict:
        # Identity keys do not survive a process boundary; reload cold.
        return {"obs": self.obs, "_entries": {}}
