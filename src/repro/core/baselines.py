"""Augmentation baselines compared in Table III.

Four candidate-selection strategies over the same unlabeled pool:

* **Brute force search** — every unlabeled commit is a candidate; the yield
  is simply the wild base rate (the paper measures ~8%).
* **Pseudo labeling** [19] — train one model (the paper picks Random
  Forest as the best performer) on the seed data, take the top-M most
  confident positive predictions.
* **Uncertainty-based labeling** [28] — a commit is a candidate only when
  all ten heterogeneous classifiers agree it is a security patch.
* **Nearest link search (ours)** — Algorithm 1 over the weighted feature
  distance matrix.

All four return candidate shas; :func:`evaluate_candidates` then samples a
verification subset (the paper verifies 1K per method) and reports the
security proportion with a 95% confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AugmentationError
from ..features.normalize import weighted_distance_matrix
from ..ml import RandomForestClassifier, fit_many, weka_ensemble
from ..ml.base import Classifier, seeded_rng
from ..ml.metrics import proportion_confidence_interval
from .cache import PatchFeatureCache
from .nearest_link import nearest_link_search
from .oracle import VerificationOracle

__all__ = [
    "BaselineResult",
    "brute_force_candidates",
    "pseudo_label_candidates",
    "uncertainty_candidates",
    "nearest_link_candidates",
    "evaluate_candidates",
]


@dataclass(frozen=True, slots=True)
class BaselineResult:
    """One row of Table III."""

    method: str
    pool_size: int
    n_candidates: int
    sampled: int
    sampled_security: int
    proportion: float
    ci_half_width: float

    def row(self) -> str:
        """Formatted table row."""
        return (
            f"{self.method:<28s} pool={self.pool_size:>7d} "
            f"candidates={self.n_candidates:>6d} "
            f"security={self.proportion:.0%} (±{self.ci_half_width:.1%})"
        )


def brute_force_candidates(pool: list[str]) -> list[str]:
    """Brute force: the entire pool is the candidate set."""
    return list(pool)


def pseudo_label_candidates(
    cache: PatchFeatureCache,
    seed_security: list[str],
    seed_non_security: list[str],
    pool: list[str],
    n_candidates: int | None = None,
    model: Classifier | None = None,
    seed: int = 0,
    workers: int | None = None,
) -> list[str]:
    """Pseudo labeling: top-confidence positives of a single model.

    With *workers*, the default Random Forest fits its trees in a process
    pool (``n_jobs``); candidates are identical to the serial fit.
    """
    if not seed_security or not seed_non_security:
        raise AugmentationError("pseudo labeling needs both seed classes")
    n_candidates = n_candidates if n_candidates is not None else len(seed_security)
    X = np.vstack([cache.matrix(seed_security), cache.matrix(seed_non_security)])
    y = np.concatenate(
        [np.ones(len(seed_security), dtype=np.int64), np.zeros(len(seed_non_security), dtype=np.int64)]
    )
    clf = model if model is not None else RandomForestClassifier(
        n_estimators=40, max_depth=14, seed=seed, n_jobs=workers, obs=cache.obs
    )
    with cache.obs.timer("fit"):
        clf.fit(X, y)
    scores = clf.decision_scores(cache.matrix(pool))
    ranked = np.argsort(-scores, kind="stable")[:n_candidates]
    return [pool[int(i)] for i in ranked]


def uncertainty_candidates(
    cache: PatchFeatureCache,
    seed_security: list[str],
    seed_non_security: list[str],
    pool: list[str],
    classifiers: list[Classifier] | None = None,
    seed: int = 0,
    workers: int | None = None,
) -> list[str]:
    """Uncertainty-based labeling: unanimous consensus of ten classifiers.

    With *workers*, the ten independent fits run through
    :func:`repro.ml.fit_many` in a process pool.  Candidates are identical
    to the serial loop (each classifier owns its RNG); the serial loop
    additionally short-circuits once the consensus is provably empty.
    """
    if not seed_security or not seed_non_security:
        raise AugmentationError("uncertainty labeling needs both seed classes")
    X = np.vstack([cache.matrix(seed_security), cache.matrix(seed_non_security)])
    y = np.concatenate(
        [np.ones(len(seed_security), dtype=np.int64), np.zeros(len(seed_non_security), dtype=np.int64)]
    )
    pool_X = cache.matrix(pool)
    ensemble = classifiers if classifiers is not None else weka_ensemble(seed=seed)
    consensus = np.ones(len(pool), dtype=bool)
    if workers is not None and workers > 1:
        fitted = fit_many([(clf, X, y) for clf in ensemble], workers=workers, obs=cache.obs)
        for clf in fitted:
            consensus &= clf.predict(pool_X) == 1
    else:
        for clf in ensemble:
            with cache.obs.timer("fit"):
                clf.fit(X, y)
            consensus &= clf.predict(pool_X) == 1
            if not consensus.any():
                break
    return [pool[int(i)] for i in np.flatnonzero(consensus)]


def nearest_link_candidates(
    cache: PatchFeatureCache, seed_security: list[str], pool: list[str]
) -> list[str]:
    """Nearest link search candidates (our method)."""
    distance = weighted_distance_matrix(cache.matrix(seed_security), cache.matrix(pool))
    result = nearest_link_search(distance)
    return [pool[int(i)] for i in result.candidate_set]


def evaluate_candidates(
    method: str,
    candidates: list[str],
    pool_size: int,
    oracle: VerificationOracle,
    sample_size: int = 1000,
    confidence: float = 0.95,
    seed: int | np.random.Generator | None = 0,
) -> BaselineResult:
    """Sample-verify a candidate set the way the paper's experts did."""
    if not candidates:
        return BaselineResult(method, pool_size, 0, 0, 0, 0.0, 0.0)
    rng = seeded_rng(seed)
    if len(candidates) > sample_size:
        idx = rng.choice(len(candidates), size=sample_size, replace=False)
        sample = [candidates[int(i)] for i in idx]
    else:
        sample = list(candidates)
    verdicts = oracle.verify_many(sample)
    hits = int(verdicts.sum())
    proportion, half = proportion_confidence_interval(hits, len(sample), confidence)
    return BaselineResult(
        method=method,
        pool_size=pool_size,
        n_candidates=len(candidates),
        sampled=len(sample),
        sampled_security=hits,
        proportion=proportion,
        ci_half_width=half,
    )
