"""The PatchDB dataset container and its JSONL persistence.

Holds the three components the paper releases — NVD-based, wild-based, and
synthetic — for both security and non-security patches, with per-record
provenance.  Records serialize to JSON lines with the patch embedded as
``git format-patch`` text, so a saved PatchDB is both machine-readable and
human-diffable, like the real release.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import ReproError
from ..patch.gitformat import parse_patch, render_mbox_patch
from ..patch.model import Patch
from .query import PatchQuery

__all__ = ["PatchRecord", "PatchDB", "PatchQuery", "SOURCES"]

#: Valid provenance tags.
SOURCES = ("nvd", "wild", "synthetic")


@dataclass(frozen=True, slots=True)
class PatchRecord:
    """One PatchDB entry.

    Attributes:
        patch: the patch itself.
        source: provenance — ``"nvd"``, ``"wild"``, or ``"synthetic"``.
        is_security: the (verified) label.
        pattern_type: Table V type when known.
        cve_id: associated CVE for NVD-based records.
    """

    patch: Patch
    source: str
    is_security: bool
    pattern_type: int | None = None
    cve_id: str | None = None

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ReproError(f"unknown source {self.source!r}")

    def to_json(self) -> str:
        """Serialize to one JSON line."""
        return json.dumps(
            {
                "sha": self.patch.sha,
                "repo": self.patch.repo,
                "source": self.source,
                "is_security": self.is_security,
                "pattern_type": self.pattern_type,
                "cve_id": self.cve_id,
                "patch_text": render_mbox_patch(self.patch),
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "PatchRecord":
        """Parse one JSON line back into a record."""
        data = json.loads(line)
        patch = parse_patch(data["patch_text"], repo=data.get("repo", ""))
        return cls(
            patch=patch,
            source=data["source"],
            is_security=data["is_security"],
            pattern_type=data.get("pattern_type"),
            cve_id=data.get("cve_id"),
        )


class PatchDB:
    """The dataset: an ordered collection of :class:`PatchRecord`."""

    def __init__(self, records: Iterable[PatchRecord] = ()) -> None:
        self._records: list[PatchRecord] = list(records)

    # ---- mutation -----------------------------------------------------

    def add(self, record: PatchRecord) -> None:
        """Append one record."""
        self._records.append(record)

    def extend(self, records: Iterable[PatchRecord]) -> None:
        """Append many records."""
        self._records.extend(records)

    # ---- views --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PatchRecord]:
        return iter(self._records)

    @staticmethod
    def _coerce_query(
        query: PatchQuery | str | None,
        is_security: bool | None,
        source: str | None,
        method: str,
    ) -> PatchQuery:
        """Fold the legacy ``(source, is_security)`` calling convention into
        a :class:`PatchQuery`, warning once per deprecated call site."""
        if isinstance(query, PatchQuery):
            if source is not None or is_security is not None:
                raise ReproError(
                    f"PatchDB.{method}: pass either a PatchQuery or the legacy "
                    "(source, is_security) arguments, not both"
                )
            return query
        if query is not None:  # legacy positional source string
            source = query
        if source is None and is_security is None:
            return PatchQuery()
        warnings.warn(
            f"PatchDB.{method}(source=..., is_security=...) is deprecated; "
            f"pass a PatchQuery instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return PatchQuery(source=source, is_security=is_security)

    def records(
        self,
        query: PatchQuery | str | None = None,
        is_security: bool | None = None,
        *,
        source: str | None = None,
    ) -> list[PatchRecord]:
        """Records matching *query* (filter + pagination), in insertion order.

        The legacy ``records(source, is_security)`` form still works but is
        deprecated; it routes through the same :class:`PatchQuery` path.
        """
        query = self._coerce_query(query, is_security, source, "records")
        if query == PatchQuery():
            return list(self._records)
        return list(query.apply(self._records))

    def patches(
        self,
        query: PatchQuery | str | None = None,
        is_security: bool | None = None,
        *,
        source: str | None = None,
    ) -> list[Patch]:
        """Patches of the records matching *query*."""
        query = self._coerce_query(query, is_security, source, "patches")
        return [r.patch for r in query.apply(self._records)]

    def summary(self) -> dict[str, int]:
        """Headline counts matching the paper's abstract numbers.

        Computed in a single pass over the records rather than one
        filtered scan per key.
        """
        counts = {
            "total": len(self),
            "security": 0,
            "non_security": 0,
            "nvd_security": 0,
            "wild_security": 0,
            "synthetic_security": 0,
            "synthetic_non_security": 0,
        }
        for r in self._records:
            if r.is_security:
                counts["security"] += 1
                if r.source in ("nvd", "wild", "synthetic"):
                    counts[f"{r.source}_security"] += 1
            else:
                counts["non_security"] += 1
                if r.source == "synthetic":
                    counts["synthetic_non_security"] += 1
        return counts

    # ---- persistence -----------------------------------------------------

    @staticmethod
    def write_jsonl(records: Iterable[PatchRecord], path: str | Path) -> int:
        """Stream any iterable of records to a JSONL file.

        Records are written one at a time, so a generator producing patches
        on the fly (e.g. the synthesizer) never materializes the whole
        dataset in memory.  Returns the number of records written.
        """
        path = Path(path)
        n = 0
        with path.open("w", encoding="utf-8") as fh:
            for record in records:
                fh.write(record.to_json())
                fh.write("\n")
                n += 1
        return n

    def save_jsonl(self, path: str | Path) -> None:
        """Write all records to a JSONL file."""
        self.write_jsonl(self._records, path)

    @classmethod
    def iter_jsonl(cls, path: str | Path) -> Iterator[PatchRecord]:
        """Lazily yield records from a JSONL file, one line at a time.

        The streaming counterpart of :meth:`load_jsonl`: the file is read
        incrementally, so arbitrarily large datasets can be filtered or
        linted in constant memory.  Blank lines are skipped.
        """
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield PatchRecord.from_json(line)

    @classmethod
    def query_jsonl(cls, path: str | Path, query: PatchQuery) -> Iterator[PatchRecord]:
        """Stream the records of a JSONL file matching *query*.

        Combines :meth:`iter_jsonl` with :meth:`PatchQuery.apply`: constant
        memory, and the file read stops as soon as the query's ``limit`` is
        satisfied.
        """
        return query.apply(cls.iter_jsonl(path))

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "PatchDB":
        """Read a PatchDB back from JSONL (materialized)."""
        return cls(cls.iter_jsonl(path))
