"""The PatchDB dataset container and its JSONL persistence.

Holds the three components the paper releases — NVD-based, wild-based, and
synthetic — for both security and non-security patches, with per-record
provenance.  Records serialize to JSON lines with the patch embedded as
``git format-patch`` text, so a saved PatchDB is both machine-readable and
human-diffable, like the real release.

Query routing: every :meth:`PatchDB.records`/:meth:`PatchDB.count` call
goes through the :class:`~repro.core.index.PatchIndex` kept incrementally
up to date by :meth:`add`/:meth:`extend` — a predicate query costs
O(smallest posting list), a pure-pagination query is a direct list slice,
and both return exactly what a full scan through
:meth:`PatchQuery.apply <repro.core.query.PatchQuery.apply>` would (same
records, same order; property-tested).  Queries the index cannot plan
fall back to the scan path.  Records are append-only through
:meth:`add`/:meth:`extend`; mutating ``_records`` directly would desync
the index.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import ReproError
from ..obs import ObsRegistry
from ..patch.gitformat import parse_patch, render_mbox_patch
from ..patch.model import Patch
from .index import PatchIndex, RecordRenderCache
from .query import PatchQuery

__all__ = ["PatchRecord", "PatchDB", "PatchQuery", "SOURCES"]

#: Valid provenance tags.
SOURCES = ("nvd", "wild", "synthetic")


@dataclass(frozen=True, slots=True)
class PatchRecord:
    """One PatchDB entry.

    Attributes:
        patch: the patch itself.
        source: provenance — ``"nvd"``, ``"wild"``, or ``"synthetic"``.
        is_security: the (verified) label.
        pattern_type: Table V type when known.
        cve_id: associated CVE for NVD-based records.
    """

    patch: Patch
    source: str
    is_security: bool
    pattern_type: int | None = None
    cve_id: str | None = None

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ReproError(f"unknown source {self.source!r}")

    def to_json(self, patch_text: str | None = None) -> str:
        """Serialize to one JSON line.

        Args:
            patch_text: the record's already-rendered mbox text, when the
                caller has it (the render cache passes its memo here so a
                cached line is byte-identical to an uncached one).
        """
        if patch_text is None:
            patch_text = render_mbox_patch(self.patch)
        return json.dumps(
            {
                "sha": self.patch.sha,
                "repo": self.patch.repo,
                "source": self.source,
                "is_security": self.is_security,
                "pattern_type": self.pattern_type,
                "cve_id": self.cve_id,
                "patch_text": patch_text,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "PatchRecord":
        """Parse one JSON line back into a record."""
        data = json.loads(line)
        patch = parse_patch(data["patch_text"], repo=data.get("repo", ""))
        return cls(
            patch=patch,
            source=data["source"],
            is_security=data["is_security"],
            pattern_type=data.get("pattern_type"),
            cve_id=data.get("cve_id"),
        )


class PatchDB:
    """The dataset: an ordered collection of :class:`PatchRecord`.

    Args:
        records: initial records.
        obs: observability registry for the ``index.hit`` /
            ``index.fallback`` / ``render_cache.hit|miss`` counters;
            ``None`` skips counting (the serve layer rebinds its own via
            :meth:`rebind_obs`).
    """

    def __init__(
        self, records: Iterable[PatchRecord] = (), obs: ObsRegistry | None = None
    ) -> None:
        self._records: list[PatchRecord] = list(records)
        self.obs = obs
        self._index = PatchIndex(self._records)
        self._renders = RecordRenderCache(obs=obs)

    # ---- observability -----------------------------------------------------

    def rebind_obs(self, obs: ObsRegistry | None) -> None:
        """Point index/render-cache counters at *obs* (the serve layer's)."""
        self.obs = obs
        self._renders.obs = obs

    def _obs_add(self, name: str) -> None:
        if self.obs is not None:
            self.obs.add(name)

    # ---- mutation -----------------------------------------------------

    def add(self, record: PatchRecord) -> None:
        """Append one record (the index updates incrementally)."""
        self._records.append(record)
        self._index.add(record)

    def extend(self, records: Iterable[PatchRecord]) -> None:
        """Append many records."""
        for record in records:
            self.add(record)

    # ---- views --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PatchRecord]:
        return iter(self._records)

    @staticmethod
    def _coerce_query(
        query: PatchQuery | str | None,
        is_security: bool | None,
        source: str | None,
        method: str,
    ) -> PatchQuery:
        """Fold the legacy ``(source, is_security)`` calling convention into
        a :class:`PatchQuery`, warning once per deprecated call site."""
        if isinstance(query, PatchQuery):
            if source is not None or is_security is not None:
                raise ReproError(
                    f"PatchDB.{method}: pass either a PatchQuery or the legacy "
                    "(source, is_security) arguments, not both"
                )
            return query
        if query is not None:  # legacy positional source string
            source = query
        if source is None and is_security is None:
            return PatchQuery()
        warnings.warn(
            f"PatchDB.{method}(source=..., is_security=...) is deprecated; "
            f"pass a PatchQuery instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return PatchQuery(source=source, is_security=is_security)

    def _page(self, query: PatchQuery) -> list[PatchRecord]:
        """The records *query* selects, served from the cheapest path.

        Pure-pagination queries slice ``_records`` directly (O(page));
        predicate queries go through the posting-list planner (O(smallest
        posting list)); unplannable queries scan.  All three produce the
        same records in the same order.
        """
        end = None if query.limit is None else query.offset + query.limit
        if query.is_unfiltered:
            self._obs_add("index.hit")
            return self._records[query.offset : end]
        ids = self._index.lookup(query)
        if ids is None:
            self._obs_add("index.fallback")
            return list(query.apply(self._records))
        self._obs_add("index.hit")
        return [self._records[int(i)] for i in ids[query.offset : end]]

    def records(
        self,
        query: PatchQuery | str | None = None,
        is_security: bool | None = None,
        *,
        source: str | None = None,
    ) -> list[PatchRecord]:
        """Records matching *query* (filter + pagination), in insertion order.

        The legacy ``records(source, is_security)`` form still works but is
        deprecated; it routes through the same :class:`PatchQuery` path.
        """
        query = self._coerce_query(query, is_security, source, "records")
        return self._page(query)

    def count(self, query: PatchQuery) -> int:
        """How many records match *query*'s predicates (pagination ignored).

        O(smallest posting list) on indexable queries — the planner's
        intersection is counted, never materialized into records.
        """
        if query.is_unfiltered:
            return len(self._records)
        ids = self._index.lookup(query)
        if ids is None:
            self._obs_add("index.fallback")
            return sum(1 for r in self._records if query.matches(r))
        self._obs_add("index.hit")
        return len(ids)

    def patches(
        self,
        query: PatchQuery | str | None = None,
        is_security: bool | None = None,
        *,
        source: str | None = None,
    ) -> list[Patch]:
        """Patches of the records matching *query*."""
        query = self._coerce_query(query, is_security, source, "patches")
        return [r.patch for r in self._page(query)]

    def summary(self) -> dict[str, int]:
        """Headline counts matching the paper's abstract numbers.

        Computed in a single pass over the records rather than one
        filtered scan per key.
        """
        counts = {
            "total": len(self),
            "security": 0,
            "non_security": 0,
            "nvd_security": 0,
            "wild_security": 0,
            "synthetic_security": 0,
            "synthetic_non_security": 0,
        }
        for r in self._records:
            if r.is_security:
                counts["security"] += 1
                if r.source in ("nvd", "wild", "synthetic"):
                    counts[f"{r.source}_security"] += 1
            else:
                counts["non_security"] += 1
                if r.source == "synthetic":
                    counts["synthetic_non_security"] += 1
        return counts

    # ---- serialization ----------------------------------------------------

    def record_json(self, record: PatchRecord) -> str:
        """*record* as a JSONL line, memoized in the render cache."""
        return self._renders.json_line(record)

    def record_mbox(self, record: PatchRecord) -> str:
        """*record*'s ``git format-patch`` text, memoized in the render cache."""
        return self._renders.mbox(record)

    # ---- persistence -----------------------------------------------------

    @staticmethod
    def write_jsonl(
        records: Iterable[PatchRecord],
        path: str | Path,
        renders: RecordRenderCache | None = None,
    ) -> int:
        """Stream any iterable of records to a JSONL file.

        Records are written one at a time, so a generator producing patches
        on the fly (e.g. the synthesizer) never materializes the whole
        dataset in memory.  Passing a :class:`RecordRenderCache` serves
        (and fills) per-record memoized lines — byte-identical to the
        uncached path.  Returns the number of records written.
        """
        path = Path(path)
        n = 0
        with path.open("w", encoding="utf-8") as fh:
            for record in records:
                fh.write(renders.json_line(record) if renders is not None else record.to_json())
                fh.write("\n")
                n += 1
        return n

    def save_jsonl(self, path: str | Path) -> None:
        """Write all records to a JSONL file (through the render cache, so
        a re-export of an already-served dataset renders nothing twice)."""
        self.write_jsonl(self._records, path, renders=self._renders)

    @classmethod
    def iter_jsonl(cls, path: str | Path) -> Iterator[PatchRecord]:
        """Lazily yield records from a JSONL file, one line at a time.

        The streaming counterpart of :meth:`load_jsonl`: the file is read
        incrementally, so arbitrarily large datasets can be filtered or
        linted in constant memory.  Blank lines are skipped.
        """
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield PatchRecord.from_json(line)

    @classmethod
    def query_jsonl(cls, path: str | Path, query: PatchQuery) -> Iterator[PatchRecord]:
        """Stream the records of a JSONL file matching *query*.

        Combines :meth:`iter_jsonl` with :meth:`PatchQuery.apply`: constant
        memory, and the file read stops as soon as the query's ``limit`` is
        satisfied.
        """
        return query.apply(cls.iter_jsonl(path))

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "PatchDB":
        """Read a PatchDB back from JSONL (materialized)."""
        return cls(cls.iter_jsonl(path))
