"""Rule-based security-patch categorization (Table V taxonomy).

Classifies a patch into the 12 code-change pattern types the paper uses for
its composition study (RQ4).  The paper's authors labeled 5K patches by
hand; this categorizer encodes the same decision criteria as rules over the
diff so the composition experiments can label every patch in the corpus.

Rule order follows specificity: exact statement movement and wholesale
redesign are recognized before the finer-grained added-check rules, and
"add or change function calls" / "others" act as the fallbacks, mirroring
how the paper describes the categories.
"""

from __future__ import annotations

import re

from ..lang.lexer import code_tokens
from ..lang.tokens import TokenKind
from ..patch.model import Patch

__all__ = ["categorize_patch", "categorize_many"]

_BOUND_HINTS = re.compile(
    r"\b(len|size|count|idx|index|offset|limit|cap|bound|max|min|buflen|n)\b|sizeof\s*\("
)
_NULL_HINTS = re.compile(r"\bNULL\b|!\s*[A-Za-z_]")
_DECL_RE = re.compile(
    r"^\s*(?:static\s+|const\s+|unsigned\s+|signed\s+)*"
    r"(?:void|char|short|int|long|float|double|size_t|ssize_t|u?int\d+_t|bool|struct\s+\w+)\b"
)
_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
_JUMP_RE = re.compile(r"^\s*(goto\s+\w+|break|continue)\s*;|^\s*\w+\s*:\s*$")
_SIG_RE = re.compile(r"^[A-Za-z_][\w\s\*]*\b([A-Za-z_]\w*)\s*\(([^;{]*)\)?\s*\{?\s*$")
_CONTROL_NAMES = frozenset({"if", "for", "while", "switch", "sizeof", "return"})


def _norm(lines: tuple[str, ...] | list[str]) -> list[str]:
    return sorted(" ".join(t.split()) for t in lines if t.strip())


def _added_if_conditions(lines: list[str]) -> list[str]:
    """Condition texts of `if (...)` occurrences across the lines."""
    conditions: list[str] = []
    text = "\n".join(lines)
    for m in re.finditer(r"\bif\s*\(", text):
        depth = 1
        i = m.end()
        start = i
        while i < len(text) and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        conditions.append(text[start : i - 1])
    return conditions


def _call_names(lines: list[str]) -> list[str]:
    names = []
    for line in lines:
        for m in _CALL_RE.finditer(line):
            if m.group(1) not in _CONTROL_NAMES:
                names.append(m.group(1))
    return names


def _decl_heads(lines: list[str]) -> dict[str, str]:
    """var name → declaration line for declaration-looking lines."""
    heads: dict[str, str] = {}
    for line in lines:
        if not _DECL_RE.match(line) or "(" in line.split("=")[0]:
            continue
        toks = [t for t in code_tokens(line) if t.kind is TokenKind.IDENTIFIER]
        if toks:
            heads[toks[-1].text if "=" not in line else toks[0].text] = line.strip()
    return heads


def _signatures(lines: list[str]) -> dict[str, str]:
    """function name → signature line for definition-looking lines."""
    sigs: dict[str, str] = {}
    for line in lines:
        if line.startswith((" ", "\t")) or line.strip().endswith(";"):
            continue
        m = _SIG_RE.match(line.strip())
        if m:
            sigs[m.group(1)] = line.strip()
    return sigs


def categorize_patch(patch: Patch) -> int:
    """Assign one of the 12 Table V types to a security patch."""
    added = patch.added_lines()
    removed = patch.removed_lines()

    # Type 10: pure movement — same statements, different place.
    norm_add, norm_rem = _norm(added), _norm(removed)
    if norm_add and norm_add == norm_rem:
        return 10

    # Type 11: redesign — large rewrites or whole added/removed functions.
    added_sigs = _signatures(added)
    removed_sigs = _signatures(removed)
    new_functions = set(added_sigs) - set(removed_sigs)
    if (len(added) + len(removed) >= 16 and len(removed) >= 4) or (
        new_functions and len(added) >= 10
    ):
        return 11

    # Types 6/7: signature changes (same function, different decl).
    common_fns = set(added_sigs) & set(removed_sigs)
    for name in common_fns:
        before, after = removed_sigs[name], added_sigs[name]
        if before != after:
            before_params = before[before.find("(") :]
            after_params = after[after.find("(") :]
            if before_params != after_params:
                return 7
            return 6

    # Types 1/2/3: added or changed checks.
    add_conditions = _added_if_conditions(list(added))
    rem_conditions = _added_if_conditions(list(removed))
    if len(add_conditions) > 0 and len(add_conditions) >= len(rem_conditions):
        fresh = [c for c in add_conditions if c not in rem_conditions]
        if fresh:
            joined = " ".join(fresh)
            if _NULL_HINTS.search(joined) and ("NULL" in joined or joined.strip().startswith("!")):
                return 2
            if _BOUND_HINTS.search(joined) and re.search(r"[<>]=?", joined):
                return 1
            return 3

    # Type 4: declaration type changes (same var, different head).
    add_decls = _decl_heads(list(added))
    rem_decls = _decl_heads(list(removed))
    for var in set(add_decls) & set(rem_decls):
        if add_decls[var] != rem_decls[var]:
            return 4

    # Type 5: value changes — paired lines differing only right of '='.
    rem_lhs = {l.split("=")[0].strip(): l for l in removed if "=" in l and "==" not in l}
    for line in added:
        if "=" in line and "==" not in line:
            lhs = line.split("=")[0].strip()
            if lhs in rem_lhs and rem_lhs[lhs].strip() != line.strip():
                return 5
    if any("memset" in l for l in added) and not removed:
        return 5

    # Type 9: jump statement changes.
    add_jumps = sum(1 for l in added if _JUMP_RE.match(l))
    rem_jumps = sum(1 for l in removed if _JUMP_RE.match(l))
    if add_jumps > rem_jumps:
        return 9

    # Type 8: function call changes.
    add_calls = _call_names(list(added))
    rem_calls = _call_names(list(removed))
    if len(add_calls) > len(rem_calls) or set(add_calls) - set(rem_calls):
        return 8

    return 12


def categorize_many(patches: list[Patch]) -> list[int]:
    """Bulk :func:`categorize_patch`."""
    return [categorize_patch(p) for p in patches]
