"""The manual-verification oracle.

The paper's augmentation loop sends each candidate to three security
researchers who label independently and cross-check (§IV-A).  Our stand-in
consults the world's ground truth through a configurable annotator panel:
each simulated annotator flips the true label with probability
``annotator_error_rate`` and the panel's majority vote is returned, so both
the perfect-expert case (error 0) and noisy-labeling studies are expressible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..corpus.world import World
from ..errors import AugmentationError
from ..ml.base import seeded_rng

__all__ = ["VerificationOracle", "VerificationStats"]


@dataclass(slots=True)
class VerificationStats:
    """Aggregate effort counters for an oracle's lifetime."""

    candidates_reviewed: int = 0
    labeled_security: int = 0
    disagreements: int = 0

    @property
    def labeled_non_security(self) -> int:
        """Candidates the panel rejected."""
        return self.candidates_reviewed - self.labeled_security


class VerificationOracle:
    """Simulated expert panel over world ground truth.

    Args:
        world: the world whose labels are consulted.
        n_annotators: panel size (the paper uses 3).
        annotator_error_rate: per-annotator label-flip probability.
        seed: RNG for error injection.
    """

    def __init__(
        self,
        world: World,
        n_annotators: int = 3,
        annotator_error_rate: float = 0.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_annotators < 1 or n_annotators % 2 == 0:
            raise AugmentationError("n_annotators must be odd and >= 1")
        if not 0.0 <= annotator_error_rate < 0.5:
            raise AugmentationError("annotator_error_rate must be in [0, 0.5)")
        self._world = world
        self.n_annotators = n_annotators
        self.annotator_error_rate = annotator_error_rate
        self._rng = seeded_rng(seed)
        self.stats = VerificationStats()

    def verify(self, sha: str) -> bool:
        """Panel-label one candidate: True = security patch."""
        truth = self._world.label(sha).is_security
        votes = 0
        for _ in range(self.n_annotators):
            flip = self._rng.random() < self.annotator_error_rate
            votes += int(truth ^ flip)
        decision = votes * 2 > self.n_annotators
        self.stats.candidates_reviewed += 1
        self.stats.labeled_security += int(decision)
        if 0 < votes < self.n_annotators:
            self.stats.disagreements += 1
        return decision

    def verify_many(self, shas: list[str]) -> np.ndarray:
        """Vectorized :meth:`verify` over a candidate list.

        Draws the panel's random numbers as one block in the same stream
        order as per-sha calls, so the verdicts (and any later draws) are
        identical to looping over :meth:`verify`.
        """
        if not shas:
            return np.empty(0, dtype=bool)
        truths = np.fromiter(
            (self._world.label(s).is_security for s in shas), dtype=bool, count=len(shas)
        )
        draws = self._rng.random((len(shas), self.n_annotators))
        votes = (truths[:, None] ^ (draws < self.annotator_error_rate)).sum(axis=1)
        decisions = votes * 2 > self.n_annotators
        self.stats.candidates_reviewed += len(shas)
        self.stats.labeled_security += int(decisions.sum())
        self.stats.disagreements += int(((votes > 0) & (votes < self.n_annotators)).sum())
        return decisions
