"""Nearest link search (Algorithm 1).

Given the weighted distance matrix ``D`` between M verified security patches
(rows) and N unlabeled wild patches (columns), select one *distinct* wild
patch per security patch so the total link distance is (approximately)
minimal.  This is the candidate-selection core of the paper's dataset
augmentation (§III-B).

Two solvers are provided:

* :func:`nearest_link_search` — the paper's greedy Algorithm 1, O(M·N)
  typical / O(M·N·M) worst case with collision rescans, faithful to the
  pseudocode including its lazy collision handling.
* :func:`exact_assignment` — an exact Hungarian-style solver via
  ``scipy.optimize.linear_sum_assignment``, used in tests and the ablation
  bench to measure the greedy's optimality gap.

Unlike KNN, a wild patch is consumed by at most one link (§III-B-3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AugmentationError

__all__ = ["nearest_link_search", "exact_assignment", "NearestLinkResult", "link_distances"]


@dataclass(frozen=True, slots=True)
class NearestLinkResult:
    """Outcome of a nearest link search.

    Attributes:
        links: ``links[m]`` is the wild column linked to security row ``m``.
        total_distance: sum of linked distances.
    """

    links: np.ndarray
    total_distance: float

    @property
    def candidate_set(self) -> np.ndarray:
        """The selected wild indices, sorted and unique."""
        return np.unique(self.links)


def _validate(distance: np.ndarray) -> np.ndarray:
    distance = np.asarray(distance, dtype=np.float64)
    if distance.ndim != 2:
        raise AugmentationError(f"distance matrix must be 2-D, got {distance.shape}")
    m, n = distance.shape
    if m == 0 or n == 0:
        raise AugmentationError("distance matrix must be non-empty")
    if m > n:
        raise AugmentationError(
            f"need at least as many wild patches ({n}) as security patches ({m})"
        )
    return distance


def nearest_link_search(distance: np.ndarray) -> NearestLinkResult:
    """Greedy nearest link search — Algorithm 1 of the paper.

    Args:
        distance: ``(M, N)`` weighted distance matrix.

    Returns:
        The selected links (one distinct column per row).

    Raises:
        AugmentationError: on bad shapes or ``M > N``.
    """
    d = _validate(distance)
    m_count, n_count = d.shape

    # Lines 1-3: per-row minimum and argmin — one matrix pass (argmin) plus
    # an M-element gather instead of separate min and argmin scans.
    v_idx = d.argmin(axis=1)
    u = np.take_along_axis(d, v_idx[:, None], axis=1).ravel()
    v = v_idx.tolist()

    # Lines 4-5: output slots (0 in the pseudocode; -1 here since 0 is a
    # valid column index).
    links = np.full(m_count, -1, dtype=np.int64)
    used = np.zeros(n_count, dtype=bool)
    taken = bytearray(n_count)  # python-int mirror of `used` for the hot loop
    scratch = np.empty(n_count)

    # Lines 6-17.  The pseudocode pops argmin(u) and sets u[m0]=inf each
    # iteration, but u is never otherwise written, so the pop sequence is
    # exactly u ascending with ties by row index — one stable argsort
    # replaces M argmin scans.
    for m0 in np.argsort(u, kind="stable").tolist():
        n0 = v[m0]
        if taken[n0]:
            # Lines 10-15: rescan this row with used columns masked out.
            np.copyto(scratch, d[m0])
            scratch[used] = np.inf
            n0 = int(np.argmin(scratch))
        links[m0] = n0
        used[n0] = True
        taken[n0] = 1
    total = float(d[np.arange(m_count), links].sum())

    return NearestLinkResult(links=links, total_distance=total)


def exact_assignment(distance: np.ndarray) -> NearestLinkResult:
    """Optimal assignment (Kuhn–Munkres) for gap measurement.

    The paper notes its objective "is similar to the KM algorithm" but uses
    the greedy approximation for scale; this exact solver quantifies how
    close the greedy gets.
    """
    from scipy.optimize import linear_sum_assignment

    d = _validate(distance)
    rows, cols = linear_sum_assignment(d)
    links = np.full(d.shape[0], -1, dtype=np.int64)
    links[rows] = cols
    return NearestLinkResult(links=links, total_distance=float(d[rows, cols].sum()))


def link_distances(distance: np.ndarray, result: NearestLinkResult) -> np.ndarray:
    """Per-link distances for a computed result."""
    d = _validate(distance)
    return d[np.arange(d.shape[0]), result.links]
