"""The unified query surface over PatchDB records.

:class:`PatchQuery` is the one filter object shared by every consumer of
the dataset — :meth:`repro.core.patchdb.PatchDB.records`, the CLI
(``stats``, ``serve``, ``bench-serve``), and the HTTP query-string parser
of :mod:`repro.serve` — replacing the scattered positional
``(source, is_security)`` keyword pairs that used to be re-implemented at
each call site.  A query is a plain frozen dataclass, so it pickles, hashes
into cache keys, and round-trips through URL query strings losslessly.

Filter semantics: every non-``None`` field must match (conjunction);
``offset``/``limit`` paginate the *filtered* stream, applied after the
predicates, so ``PatchQuery(source="wild", offset=100, limit=50)`` is
"rows 100-149 of the wild records".  :meth:`PatchQuery.apply` is a
generator over any record iterable, so arbitrarily large JSONL streams can
be filtered in constant memory (the serve layer streams
:meth:`~repro.core.patchdb.PatchDB.iter_jsonl`-style chunks through it).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .patchdb import PatchRecord

__all__ = ["PatchQuery", "QueryError"]

#: Query-string spellings accepted for boolean fields.
_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


class QueryError(ReproError):
    """A PatchQuery was constructed or parsed with invalid values."""


@dataclass(frozen=True, slots=True)
class PatchQuery:
    """One filtered, paginated view over patch records.

    Attributes:
        source: provenance filter (``"nvd"``/``"wild"``/``"synthetic"``).
        is_security: label filter.
        pattern_type: Table V pattern-type filter (security patches).
        repo: ``owner/repo`` slug filter.
        sha: exact commit-id filter (a point lookup, served by the
            index's hash map — ``/v1/patches?sha=...`` never scans).
        cve_id: exact CVE filter (NVD-based records carry one).
        limit: maximum records returned (``None`` = unbounded).
        offset: filtered records skipped before the first returned one.
    """

    source: str | None = None
    is_security: bool | None = None
    pattern_type: int | None = None
    repo: str | None = None
    sha: str | None = None
    cve_id: str | None = None
    limit: int | None = None
    offset: int = 0

    def __post_init__(self) -> None:
        from .patchdb import SOURCES

        if self.source is not None and self.source not in SOURCES:
            raise QueryError(
                f"unknown source {self.source!r} (choose from {', '.join(SOURCES)})"
            )
        for name in ("sha", "cve_id"):
            value = getattr(self, name)
            if value is not None and (not value or value != value.strip()):
                raise QueryError(f"{name} must be a non-blank string, got {value!r}")
        if self.limit is not None and self.limit < 0:
            raise QueryError(f"limit must be >= 0, got {self.limit}")
        if self.offset < 0:
            raise QueryError(f"offset must be >= 0, got {self.offset}")

    # ---- predicates -------------------------------------------------------

    def matches(self, record: "PatchRecord") -> bool:
        """Whether *record* passes every non-``None`` filter field."""
        if self.source is not None and record.source != self.source:
            return False
        if self.is_security is not None and record.is_security != self.is_security:
            return False
        if self.pattern_type is not None and record.pattern_type != self.pattern_type:
            return False
        if self.repo is not None and record.patch.repo != self.repo:
            return False
        if self.sha is not None and record.patch.sha != self.sha:
            return False
        if self.cve_id is not None and record.cve_id != self.cve_id:
            return False
        return True

    def apply(self, records: Iterable["PatchRecord"]) -> Iterator["PatchRecord"]:
        """Filter + paginate *records* lazily, in input order.

        Stops consuming the input as soon as ``limit`` records have been
        yielded, so applying a small-limit query to a streaming JSONL
        reader touches only the prefix it needs.
        """
        remaining = self.limit
        skip = self.offset
        for record in records:
            if not self.matches(record):
                continue
            if skip:
                skip -= 1
                continue
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            yield record
            if remaining == 0:
                return

    # ---- derivation -------------------------------------------------------

    @property
    def is_unfiltered(self) -> bool:
        """True when no predicate field is set (pagination may still be)."""
        return (
            self.source is None
            and self.is_security is None
            and self.pattern_type is None
            and self.repo is None
            and self.sha is None
            and self.cve_id is None
        )

    def page(self, limit: int | None, offset: int = 0) -> "PatchQuery":
        """The same filters with different pagination."""
        return replace(self, limit=limit, offset=offset)

    # ---- wire formats -----------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form; ``None`` fields (and zero offset) are omitted."""
        out: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None or (f.name == "offset" and value == 0):
                continue
            out[f.name] = value
        return out

    @classmethod
    def from_params(cls, params: Mapping[str, str]) -> "PatchQuery":
        """Parse an HTTP query-string mapping into a query.

        Accepts the flat ``field=value`` encoding produced by
        :meth:`to_dict` (booleans as ``1/0/true/false/yes/no/on/off``,
        case-insensitive).  Unknown keys and malformed values raise
        :class:`QueryError` with a message suitable for a 400 response.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise QueryError(
                f"unknown query parameter(s): {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(known))})"
            )
        kwargs: dict[str, object] = {}
        for name, raw in params.items():
            raw = raw.strip()
            if raw == "":
                continue
            if name in ("source", "repo", "sha", "cve_id"):
                kwargs[name] = raw
            elif name == "is_security":
                lowered = raw.lower()
                if lowered in _TRUE:
                    kwargs[name] = True
                elif lowered in _FALSE:
                    kwargs[name] = False
                else:
                    raise QueryError(f"is_security must be a boolean, got {raw!r}")
            else:  # pattern_type, limit, offset
                try:
                    kwargs[name] = int(raw)
                except ValueError:
                    raise QueryError(f"{name} must be an integer, got {raw!r}") from None
        return cls(**kwargs)
