"""Feature-vector and token-sequence caching over a world.

Every experiment consumes the same Table I features and the same RNN token
sequences for the same commits; these caches compute each sha's
representation once and assemble matrices/sequence lists on demand.
:class:`PatchFeatureCache` is deliberately tied to shas (not Patch objects)
so the augmentation loop, baselines, and quality experiments share one
cache; :class:`TokenSequenceCache` additionally memoizes patches that live
outside the world (synthetic patches) by their deterministic shas.

Two scale features sit on top of the in-memory map:

* **Chunked parallel extraction** — ``matrix(shas, workers=N)`` fans the
  not-yet-cached shas out to a ``concurrent.futures`` process pool (the
  extractor is pure Python, so threads would serialize on the GIL).  Each
  worker receives the pickled world once via the pool initializer and
  extracts whole chunks, so per-task overhead stays small.  Results are
  identical to serial extraction; any pool failure falls back to serial.
* **On-disk persistence** — an optional ``.npz`` file keyed by sha lets CLI
  runs and benchmarks reuse vectors across processes.  The file stores the
  sha list and the stacked matrix plus the ``use_repo_context`` flag; a
  flag mismatch ignores the file rather than serving wrong vectors.
"""

from __future__ import annotations

import concurrent.futures
import pickle
from pathlib import Path

import numpy as np

from ..corpus.world import World
from ..features.extractor import FeatureExtractor, RepoContext
from ..features.vector import FEATURE_COUNT
from ..ml.tokenizer import patch_token_sequence
from ..obs import ObsRegistry, ObsSnapshot
from ..patch.model import Patch

__all__ = ["PatchFeatureCache", "TokenSequenceCache"]

# Per-process state for pool workers: (world, use_repo_context, extractors).
_WORKER_STATE: tuple[World, bool, dict] | None = None


def _init_worker(world: World, use_context: bool) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (world, use_context, {})


def _extract_chunk(shas: list[str]) -> tuple[list[tuple[str, np.ndarray]], ObsSnapshot]:
    """Extract one chunk in a worker, recording obs exactly like the serial
    path (per-sha ``extract`` timer + ``vectors_extracted``) into a local
    registry whose snapshot rides back with the results."""
    assert _WORKER_STATE is not None
    world, use_context, extractors = _WORKER_STATE
    local = ObsRegistry()
    out = []
    for sha in shas:
        label = world.label(sha)
        extractor = extractors.get(label.repo_slug)
        if extractor is None:
            context = None
            if use_context:
                files, funcs = world.repos[label.repo_slug].stats_at_head()
                context = RepoContext(total_files=files, total_functions=funcs)
            extractor = FeatureExtractor(context)
            extractors[label.repo_slug] = extractor
        patch = world.patch_for(sha)
        with local.timer("extract"):
            vec = extractor.extract(patch)
        local.add("vectors_extracted")
        out.append((sha, vec))
    return out, local.snapshot()


class PatchFeatureCache:
    """Lazily-computed sha → feature-vector map for one world.

    Args:
        world: the world whose commits are cached.
        use_repo_context: give extractors repository-size denominators.
        persist_path: optional ``.npz`` file to preload from (if present)
            and to write via :meth:`save`.
        obs: observability registry; a private one is created if omitted.
    """

    def __init__(
        self,
        world: World,
        use_repo_context: bool = True,
        persist_path: str | Path | None = None,
        obs: ObsRegistry | None = None,
        default_workers: int | None = None,
    ) -> None:
        self._world = world
        self._vectors: dict[str, np.ndarray] = {}
        self._extractors: dict[str, FeatureExtractor] = {}
        self._use_context = use_repo_context
        self._persist_path = Path(persist_path) if persist_path is not None else None
        self.obs = obs if obs is not None else ObsRegistry()
        self.default_workers = default_workers
        if self._persist_path is not None and self._persist_path.exists():
            self._load_npz(self._persist_path)

    # ---- persistence ------------------------------------------------------

    def _load_npz(self, path: Path) -> None:
        try:
            with np.load(path, allow_pickle=False) as data:
                if bool(data["use_repo_context"]) != self._use_context:
                    return
                shas = data["shas"]
                matrix = np.asarray(data["matrix"], dtype=np.float64)
        except Exception:
            return  # a corrupt cache file is just a cold cache
        if matrix.ndim != 2 or matrix.shape != (len(shas), FEATURE_COUNT):
            return
        for sha, row in zip(shas, matrix):
            self._vectors[str(sha)] = row
        self.obs.add("npz_vectors_loaded", len(shas))

    def save(self, path: str | Path | None = None) -> Path:
        """Write every cached vector to ``.npz`` (sha-keyed); returns the path.

        Raises:
            ValueError: if no path was given here or at construction.
        """
        target = Path(path) if path is not None else self._persist_path
        if target is None:
            raise ValueError("no persist path configured for PatchFeatureCache.save")
        shas = sorted(self._vectors)
        matrix = (
            np.vstack([self._vectors[s] for s in shas])
            if shas
            else np.zeros((0, FEATURE_COUNT), dtype=np.float64)
        )
        target.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            target,
            shas=np.array(shas, dtype="U40"),
            matrix=matrix,
            use_repo_context=np.array(self._use_context),
        )
        return target

    # ---- extraction -------------------------------------------------------

    def _extractor_for(self, slug: str) -> FeatureExtractor:
        extractor = self._extractors.get(slug)
        if extractor is None:
            context = None
            if self._use_context:
                files, funcs = self._world.repos[slug].stats_at_head()
                context = RepoContext(total_files=files, total_functions=funcs)
            extractor = FeatureExtractor(context)
            self._extractors[slug] = extractor
        return extractor

    def vector(self, sha: str) -> np.ndarray:
        """The 60-dim feature vector for one commit."""
        vec = self._vectors.get(sha)
        if vec is None:
            label = self._world.label(sha)
            patch = self._world.patch_for(sha)
            with self.obs.timer("extract"):
                vec = self._extractor_for(label.repo_slug).extract(patch)
            self._vectors[sha] = vec
            self.obs.add("vectors_extracted")
        else:
            self.obs.add("vector_cache_hits")
        return vec

    def _extract_parallel(self, missing: list[str], workers: int) -> set[str] | None:
        """Extract *missing* in a process pool; None on any pool failure.

        Returns the set of freshly extracted shas.  Worker-local obs
        snapshots are merged in chunk order, so the merged ``extract``
        timings and ``vectors_extracted`` counts match a serial run.
        """
        # Enough chunks that stragglers rebalance, big enough to amortize IPC.
        n_chunks = min(len(missing), workers * 4)
        chunks = [list(c) for c in np.array_split(np.array(missing, dtype=object), n_chunks)]
        results: dict[str, np.ndarray] = {}
        snapshots = []
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self._world, self._use_context),
            ) as pool:
                for pairs, snap in pool.map(_extract_chunk, chunks):
                    for sha, vec in pairs:
                        results[sha] = vec
                    snapshots.append(snap)
        except Exception:
            # Nothing merged or cached yet, so the serial fallback in
            # ``matrix`` re-extracts (and re-counts) from a clean slate.
            return None
        for snap in snapshots:
            self.obs.merge(snap)
        self._vectors.update(results)
        return set(results)

    def matrix(self, shas: list[str], workers: int | None = None) -> np.ndarray:
        """Stack vectors for *shas* into an ``(N, 60)`` matrix.

        Args:
            shas: commits, in output row order (duplicates allowed).
            workers: >1 extracts missing vectors in a process pool; ``None``
                uses the cache's ``default_workers``.  Results — including
                merged obs counters — are identical to serial extraction.
        """
        if not shas:
            return np.zeros((0, FEATURE_COUNT), dtype=np.float64)
        workers = workers if workers is not None else self.default_workers
        fresh: set[str] = set()
        if workers is not None and workers > 1:
            seen: set[str] = set()
            missing = [
                s for s in shas if s not in self._vectors and not (s in seen or seen.add(s))
            ]
            # Below ~2 chunks per worker the pool costs more than it saves.
            if len(missing) >= 2 * workers:
                with self.obs.timer("extract_parallel"):
                    fresh = self._extract_parallel(missing, workers) or set()
        rows = []
        hits = 0
        for s in shas:
            if s in fresh:
                # First access of a worker-extracted sha: the worker already
                # recorded its miss, so don't double-count it as a hit here.
                fresh.discard(s)
                rows.append(self._vectors[s])
            else:
                vec = self._vectors.get(s)
                if vec is None:
                    rows.append(self.vector(s))
                else:
                    # Same count as per-sha ``vector()`` calls, batched so
                    # warm-cache lookups stay counter-overhead-free.
                    hits += 1
                    rows.append(vec)
        if hits:
            self.obs.add("vector_cache_hits", hits)
        return np.vstack(rows)

    def __len__(self) -> int:
        return len(self._vectors)


# Per-process state for token pool workers: (world, include_context).
_TOKEN_WORKER_STATE: tuple[World, bool] | None = None


def _init_token_worker(world: World, include_context: bool) -> None:
    global _TOKEN_WORKER_STATE
    _TOKEN_WORKER_STATE = (world, include_context)


def _tokenize_chunk(shas: list[str]) -> tuple[list[tuple[str, list[str]]], ObsSnapshot]:
    """Tokenize one chunk in a worker, recording obs exactly like the serial
    path (per-sha ``tokenize`` timer + ``token_cache_misses``)."""
    assert _TOKEN_WORKER_STATE is not None
    world, include_context = _TOKEN_WORKER_STATE
    local = ObsRegistry()
    out = []
    for sha in shas:
        patch = world.patch_for(sha)
        with local.timer("tokenize"):
            seq = patch_token_sequence(patch, include_context)
        local.add("token_cache_misses")
        out.append((sha, seq))
    return out, local.snapshot()


class TokenSequenceCache:
    """Lazily-computed sha → RNN token-sequence map for one world.

    Tokenization is a pure function of the patch, so the cache is an exact
    optimization: Tables IV and VI re-read the same commits across seeds,
    datasets, and train/test roles, and each is lexed once here instead of
    once per use.  Synthetic patches (which are not world commits but carry
    deterministic shas) go through :meth:`sequence_of`.

    Args:
        world: the world whose commits are cached.
        include_context: tokenize context lines too (off, like the paper).
        persist_path: optional pickle file to preload from (if present)
            and to write via :meth:`save`.  A corrupt or mismatched file is
            treated as a cold cache.
        obs: observability registry; a private one is created if omitted.
        default_workers: default process count for :meth:`sequences` warm-up.
    """

    _FORMAT = "repro-token-cache-v1"

    def __init__(
        self,
        world: World,
        include_context: bool = False,
        persist_path: str | Path | None = None,
        obs: ObsRegistry | None = None,
        default_workers: int | None = None,
    ) -> None:
        self._world = world
        self._include_context = include_context
        self._sequences: dict[str, list[str]] = {}
        self._persist_path = Path(persist_path) if persist_path is not None else None
        self.obs = obs if obs is not None else ObsRegistry()
        self.default_workers = default_workers
        if self._persist_path is not None and self._persist_path.exists():
            self._load(self._persist_path)

    # ---- persistence ------------------------------------------------------

    def _load(self, path: Path) -> None:
        try:
            with path.open("rb") as fh:
                data = pickle.load(fh)
            if (
                not isinstance(data, dict)
                or data.get("format") != self._FORMAT
                or data.get("include_context") != self._include_context
            ):
                return
            sequences = data["sequences"]
            if not isinstance(sequences, dict):
                return
        except Exception:
            return  # a corrupt cache file is just a cold cache
        self._sequences.update(sequences)
        self.obs.add("token_sequences_loaded", len(sequences))

    def save(self, path: str | Path | None = None) -> Path:
        """Write every cached sequence to a pickle file; returns the path.

        Raises:
            ValueError: if no path was given here or at construction.
        """
        target = Path(path) if path is not None else self._persist_path
        if target is None:
            raise ValueError("no persist path configured for TokenSequenceCache.save")
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": self._FORMAT,
            "include_context": self._include_context,
            "sequences": self._sequences,
        }
        with target.open("wb") as fh:
            pickle.dump(payload, fh)
        return target

    # ---- tokenization -----------------------------------------------------

    def sequence(self, sha: str) -> list[str]:
        """The token sequence for one world commit."""
        seq = self._sequences.get(sha)
        if seq is None:
            patch = self._world.patch_for(sha)
            with self.obs.timer("tokenize"):
                seq = patch_token_sequence(patch, self._include_context)
            self._sequences[sha] = seq
            self.obs.add("token_cache_misses")
        else:
            self.obs.add("token_cache_hits")
        return seq

    def sequence_of(self, patch: Patch) -> list[str]:
        """The token sequence for an explicit patch, memoized by its sha.

        Synthetic patches are not world commits, but their shas are
        deterministic functions of (origin, variant, side, site), so the
        same sha always denotes the same patch text.
        """
        seq = self._sequences.get(patch.sha)
        if seq is None:
            with self.obs.timer("tokenize"):
                seq = patch_token_sequence(patch, self._include_context)
            self._sequences[patch.sha] = seq
            self.obs.add("token_cache_misses")
        else:
            self.obs.add("token_cache_hits")
        return seq

    def sequences(self, shas: list[str], workers: int | None = None) -> list[list[str]]:
        """Token sequences for *shas*, in input order (duplicates allowed).

        Args:
            shas: world commits.
            workers: >1 tokenizes missing entries in a process pool;
                ``None`` uses the cache's ``default_workers``.  Results are
                identical to serial tokenization.
        """
        workers = workers if workers is not None else self.default_workers
        fresh: set[str] = set()
        if workers is not None and workers > 1:
            seen: set[str] = set()
            missing = [
                s for s in shas if s not in self._sequences and not (s in seen or seen.add(s))
            ]
            # Below ~2 chunks per worker the pool costs more than it saves.
            if len(missing) >= 2 * workers:
                with self.obs.timer("tokenize_parallel"):
                    fresh = self._tokenize_parallel(missing, workers) or set()
        out = []
        hits = 0
        for s in shas:
            if s in fresh:
                # First access of a worker-tokenized sha: the worker already
                # recorded its miss, so don't double-count it as a hit here.
                fresh.discard(s)
                out.append(self._sequences[s])
            else:
                seq = self._sequences.get(s)
                if seq is None:
                    out.append(self.sequence(s))
                else:
                    # Same count as per-sha ``sequence()`` calls, batched so
                    # warm-cache lookups stay counter-overhead-free.
                    hits += 1
                    out.append(seq)
        if hits:
            self.obs.add("token_cache_hits", hits)
        return out

    def _tokenize_parallel(self, missing: list[str], workers: int) -> set[str] | None:
        """Tokenize *missing* in a process pool; None on any pool failure.

        Returns the set of freshly tokenized shas.  Worker-local obs
        snapshots are merged in chunk order, so the merged ``tokenize``
        timings and ``token_cache_misses`` counts match a serial run.
        """
        n_chunks = min(len(missing), workers * 4)
        chunks = [list(c) for c in np.array_split(np.array(missing, dtype=object), n_chunks)]
        results: dict[str, list[str]] = {}
        snapshots = []
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_token_worker,
                initargs=(self._world, self._include_context),
            ) as pool:
                for pairs, snap in pool.map(_tokenize_chunk, chunks):
                    for sha, seq in pairs:
                        results[sha] = seq
                    snapshots.append(snap)
        except Exception:
            # Nothing merged or cached yet, so the serial fallback in
            # ``sequences`` re-tokenizes (and re-counts) from a clean slate.
            return None
        for snap in snapshots:
            self.obs.merge(snap)
        self._sequences.update(results)
        return set(results)

    def __len__(self) -> int:
        return len(self._sequences)
