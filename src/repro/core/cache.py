"""Feature-vector caching over a world.

Every experiment consumes the same Table I features for the same commits;
this cache computes each sha's vector once and assembles matrices on
demand.  It is deliberately tied to shas (not Patch objects) so the
augmentation loop, baselines, and quality experiments share one cache.
"""

from __future__ import annotations

import numpy as np

from ..corpus.world import World
from ..features.extractor import FeatureExtractor, RepoContext
from ..features.vector import FEATURE_COUNT

__all__ = ["PatchFeatureCache"]


class PatchFeatureCache:
    """Lazily-computed sha → feature-vector map for one world."""

    def __init__(self, world: World, use_repo_context: bool = True) -> None:
        self._world = world
        self._vectors: dict[str, np.ndarray] = {}
        self._extractors: dict[str, FeatureExtractor] = {}
        self._use_context = use_repo_context

    def _extractor_for(self, slug: str) -> FeatureExtractor:
        extractor = self._extractors.get(slug)
        if extractor is None:
            context = None
            if self._use_context:
                files, funcs = self._world.repos[slug].stats_at_head()
                context = RepoContext(total_files=files, total_functions=funcs)
            extractor = FeatureExtractor(context)
            self._extractors[slug] = extractor
        return extractor

    def vector(self, sha: str) -> np.ndarray:
        """The 60-dim feature vector for one commit."""
        vec = self._vectors.get(sha)
        if vec is None:
            label = self._world.label(sha)
            patch = self._world.patch_for(sha)
            vec = self._extractor_for(label.repo_slug).extract(patch)
            self._vectors[sha] = vec
        return vec

    def matrix(self, shas: list[str]) -> np.ndarray:
        """Stack vectors for *shas* into an ``(N, 60)`` matrix."""
        if not shas:
            return np.zeros((0, FEATURE_COUNT), dtype=np.float64)
        return np.vstack([self.vector(s) for s in shas])

    def __len__(self) -> int:
        return len(self._vectors)
