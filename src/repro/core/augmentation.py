"""Human-in-the-loop dataset augmentation (Fig. 2, Table II).

The loop the paper runs five times: select candidates with nearest link
search, send them to the verification panel, fold verified security patches
back into the seed set, drop all reviewed candidates from the unlabeled
pool, and repeat while the security yield stays above a threshold.

``run_schedule`` reproduces the exact Table II protocol — several rounds on
one search range (Set I), then fresh larger ranges (Sets II/III) — and
returns one :class:`RoundResult` per row of the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AugmentationError
from ..features.normalize import weighted_distance_matrix
from .cache import PatchFeatureCache
from .nearest_link import nearest_link_search
from .oracle import VerificationOracle

__all__ = ["RoundResult", "AugmentationOutcome", "DatasetAugmentation", "SearchSet"]


@dataclass(frozen=True, slots=True)
class SearchSet:
    """One unlabeled wild pool with a number of rounds to run on it."""

    name: str
    shas: tuple[str, ...]
    rounds: int

    def __post_init__(self) -> None:
        if self.rounds < 1 or not self.shas:
            raise AugmentationError("SearchSet needs shas and rounds >= 1")


@dataclass(frozen=True, slots=True)
class RoundResult:
    """One row of Table II."""

    round_no: int
    set_name: str
    search_range: int
    candidates: int
    verified_security: int

    @property
    def ratio(self) -> float:
        """Verified security patches / candidates."""
        return self.verified_security / self.candidates if self.candidates else 0.0

    def row(self) -> str:
        """Formatted table row."""
        return (
            f"{self.set_name:>12s}  round {self.round_no}: "
            f"range={self.search_range:>7d} candidates={self.candidates:>6d} "
            f"verified={self.verified_security:>6d} ratio={self.ratio:.0%}"
        )


@dataclass(slots=True)
class AugmentationOutcome:
    """Full outcome of an augmentation run."""

    rounds: list[RoundResult] = field(default_factory=list)
    security_shas: list[str] = field(default_factory=list)
    non_security_shas: list[str] = field(default_factory=list)

    @property
    def wild_security_count(self) -> int:
        """Security patches found in the wild (excludes the seed)."""
        return sum(r.verified_security for r in self.rounds)

    def table(self) -> str:
        """The Table II analogue as text."""
        return "\n".join(r.row() for r in self.rounds)


class DatasetAugmentation:
    """The augmentation loop bound to a world, oracle, and feature cache.

    Args:
        cache: feature cache over the world.
        oracle: the verification panel.
        ratio_threshold: stop early when a round's yield drops below this.
    """

    def __init__(
        self,
        cache: PatchFeatureCache,
        oracle: VerificationOracle,
        ratio_threshold: float = 0.0,
    ) -> None:
        if not 0.0 <= ratio_threshold <= 1.0:
            raise AugmentationError("ratio_threshold must be in [0, 1]")
        self._cache = cache
        self._oracle = oracle
        self.ratio_threshold = ratio_threshold

    def run_round(
        self, security_shas: list[str], pool: list[str]
    ) -> tuple[list[str], list[str]]:
        """One candidate-selection + verification round.

        Args:
            security_shas: the currently verified security patches.
            pool: unlabeled wild shas to search.

        Returns:
            ``(verified_security, rejected)`` partition of the candidates.

        Raises:
            AugmentationError: if the pool is smaller than the seed set.
        """
        if len(pool) < len(security_shas):
            raise AugmentationError(
                f"pool ({len(pool)}) smaller than security set ({len(security_shas)})"
            )
        sec_matrix = self._cache.matrix(security_shas)
        pool_matrix = self._cache.matrix(pool)
        distance = weighted_distance_matrix(sec_matrix, pool_matrix)
        result = nearest_link_search(distance)
        candidate_idx = result.candidate_set
        candidates = [pool[int(i)] for i in candidate_idx]
        verdicts = self._oracle.verify_many(candidates)
        verified = [s for s, v in zip(candidates, verdicts) if v]
        rejected = [s for s, v in zip(candidates, verdicts) if not v]
        return verified, rejected

    def run_schedule(
        self, seed_security_shas: list[str], sets: list[SearchSet]
    ) -> AugmentationOutcome:
        """Run the Table II protocol over the given search sets."""
        outcome = AugmentationOutcome(security_shas=list(seed_security_shas))
        round_no = 0
        for search_set in sets:
            pool = list(search_set.shas)
            for _ in range(search_set.rounds):
                round_no += 1
                verified, rejected = self.run_round(outcome.security_shas, pool)
                reviewed = set(verified) | set(rejected)
                pool = [s for s in pool if s not in reviewed]
                outcome.security_shas.extend(verified)
                outcome.non_security_shas.extend(rejected)
                result = RoundResult(
                    round_no=round_no,
                    set_name=search_set.name,
                    search_range=len(pool) + len(reviewed),
                    candidates=len(reviewed),
                    verified_security=len(verified),
                )
                outcome.rounds.append(result)
                if self.ratio_threshold and result.ratio < self.ratio_threshold:
                    return outcome
        return outcome
