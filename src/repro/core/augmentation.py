"""Human-in-the-loop dataset augmentation (Fig. 2, Table II).

The loop the paper runs five times: select candidates with nearest link
search, send them to the verification panel, fold verified security patches
back into the seed set, drop all reviewed candidates from the unlabeled
pool, and repeat while the security yield stays above a threshold.

``run_schedule`` reproduces the exact Table II protocol — several rounds on
one search range (Set I), then fresh larger ranges (Sets II/III) — and
returns one :class:`RoundResult` per row of the table.

At PatchDB scale the repeated ``M×N`` weighted distance matrix is the cost
center, so the schedule maintains it incrementally through a
:class:`~repro.features.normalize.DistanceEngine`: weights are fitted once
per search set, each round appends rows for the newly verified patches and
deletes columns for the reviewed candidates, and a full refit happens only
when the fitted maxima drift (see the engine docstring).  Results are
numerically equivalent to per-round recomputation; pass
``incremental=False`` to force the from-scratch path (used by tests and the
``benchmarks/test_incremental_distance.py`` baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AugmentationError
from ..features.normalize import DistanceEngine, weighted_distance_matrix
from ..obs import ObsRegistry
from .cache import PatchFeatureCache
from .nearest_link import nearest_link_search
from .oracle import VerificationOracle

__all__ = ["RoundResult", "AugmentationOutcome", "DatasetAugmentation", "SearchSet"]


@dataclass(frozen=True, slots=True)
class SearchSet:
    """One unlabeled wild pool with a number of rounds to run on it."""

    name: str
    shas: tuple[str, ...]
    rounds: int

    def __post_init__(self) -> None:
        if self.rounds < 1 or not self.shas:
            raise AugmentationError("SearchSet needs shas and rounds >= 1")


@dataclass(frozen=True, slots=True)
class RoundResult:
    """One row of Table II."""

    round_no: int
    set_name: str
    search_range: int
    candidates: int
    verified_security: int

    @property
    def ratio(self) -> float:
        """Verified security patches / candidates."""
        return self.verified_security / self.candidates if self.candidates else 0.0

    def row(self) -> str:
        """Formatted table row."""
        return (
            f"{self.set_name:>12s}  round {self.round_no}: "
            f"range={self.search_range:>7d} candidates={self.candidates:>6d} "
            f"verified={self.verified_security:>6d} ratio={self.ratio:.0%}"
        )


@dataclass(slots=True)
class AugmentationOutcome:
    """Full outcome of an augmentation run."""

    rounds: list[RoundResult] = field(default_factory=list)
    security_shas: list[str] = field(default_factory=list)
    non_security_shas: list[str] = field(default_factory=list)

    @property
    def wild_security_count(self) -> int:
        """Security patches found in the wild (excludes the seed)."""
        return sum(r.verified_security for r in self.rounds)

    def table(self) -> str:
        """The Table II analogue as text."""
        return "\n".join(r.row() for r in self.rounds)


class DatasetAugmentation:
    """The augmentation loop bound to a world, oracle, and feature cache.

    Args:
        cache: feature cache over the world.
        oracle: the verification panel.
        ratio_threshold: stop early when a round's yield drops below this.
        incremental: maintain the per-set distance matrix with a
            :class:`DistanceEngine` instead of rebuilding it every round.
        tolerance: the engine's relative drift tolerance before a full
            refit; 0.0 keeps results exactly equivalent to full rebuilds.
        obs: observability registry; defaults to the cache's, so timings and
            counters from extraction and distance work land in one place.
    """

    def __init__(
        self,
        cache: PatchFeatureCache,
        oracle: VerificationOracle,
        ratio_threshold: float = 0.0,
        incremental: bool = True,
        tolerance: float = 0.0,
        obs: ObsRegistry | None = None,
    ) -> None:
        if not 0.0 <= ratio_threshold <= 1.0:
            raise AugmentationError("ratio_threshold must be in [0, 1]")
        self._cache = cache
        self._oracle = oracle
        self.ratio_threshold = ratio_threshold
        self.incremental = incremental
        self.tolerance = tolerance
        self.obs = obs if obs is not None else cache.obs

    # ---- shared helpers ---------------------------------------------------

    def _require_sides(self, n_security: int, n_pool: int) -> None:
        """Reject degenerate rounds before they reach the weighter.

        Raises:
            AugmentationError: empty side, or pool smaller than the seed.
        """
        if not n_security or not n_pool:
            raise AugmentationError(
                f"cannot run an augmentation round with {n_security} "
                f"security shas and {n_pool} pool shas; both sides must be non-empty"
            )
        if n_pool < n_security:
            raise AugmentationError(
                f"pool ({n_pool}) smaller than security set ({n_security})"
            )

    def _review(
        self, distance: np.ndarray, pool: list[str]
    ) -> tuple[list[str], list[str], np.ndarray]:
        """Select candidates from *distance* and have the panel verify them.

        Returns:
            ``(verified, rejected, candidate_idx)`` where ``candidate_idx``
            are the selected column indices into *pool*.
        """
        with self.obs.timer("search"):
            result = nearest_link_search(distance)
        candidate_idx = result.candidate_set
        candidates = [pool[int(i)] for i in candidate_idx]
        with self.obs.timer("verify"):
            verdicts = self._oracle.verify_many(candidates)
        verified = [s for s, v in zip(candidates, verdicts) if v]
        rejected = [s for s, v in zip(candidates, verdicts) if not v]
        return verified, rejected, candidate_idx

    # ---- the public API ---------------------------------------------------

    def run_round(
        self, security_shas: list[str], pool: list[str]
    ) -> tuple[list[str], list[str]]:
        """One stand-alone candidate-selection + verification round.

        Builds the distance matrix from scratch; the incremental engine only
        pays off across the consecutive rounds of :meth:`run_schedule`.

        Args:
            security_shas: the currently verified security patches.
            pool: unlabeled wild shas to search.

        Returns:
            ``(verified_security, rejected)`` partition of the candidates.

        Raises:
            AugmentationError: empty sides, or pool smaller than the seed set.
        """
        self._require_sides(len(security_shas), len(pool))
        sec_matrix = self._cache.matrix(security_shas)
        pool_matrix = self._cache.matrix(pool)
        with self.obs.timer("distance"):
            distance = weighted_distance_matrix(sec_matrix, pool_matrix)
        verified, rejected, _ = self._review(distance, pool)
        return verified, rejected

    def run_schedule(
        self, seed_security_shas: list[str], sets: list[SearchSet]
    ) -> AugmentationOutcome:
        """Run the Table II protocol over the given search sets.

        The run is traced as a span tree — ``augment.schedule`` →
        ``augment.set`` (one per search set) → ``augment.round`` (one per
        row of Table II, annotated with the candidate/verified counts) —
        with the flat ``distance``/``search``/``verify`` phases accumulating
        underneath as before.
        """
        with self.obs.span(
            "augment.schedule", seed_security=len(seed_security_shas), sets=len(sets)
        ):
            return self._run_schedule(seed_security_shas, sets)

    def _run_schedule(
        self, seed_security_shas: list[str], sets: list[SearchSet]
    ) -> AugmentationOutcome:
        outcome = AugmentationOutcome(security_shas=list(seed_security_shas))
        round_no = 0
        for search_set in sets:
            # Incremental mode keeps the pool list (and the engine's column
            # space) fixed and masks reviewed columns; full mode filters the
            # list per round.  Both see the same live pool each round.
            pool = list(search_set.shas)
            n_live = len(pool)
            engine: DistanceEngine | None = None
            # The previous round's delta, folded in at the top of the next
            # round: verified shas become rows, reviewed columns are masked.
            pending_rows: list[str] = []
            pending_drop: np.ndarray = np.empty(0, dtype=np.int64)
            with self.obs.span(
                "augment.set",
                set=search_set.name,
                pool=len(pool),
                rounds=search_set.rounds,
            ):
                for _ in range(search_set.rounds):
                    round_no += 1
                    self._require_sides(len(outcome.security_shas), n_live)
                    with self.obs.span(
                        "augment.round", round=round_no, set=search_set.name
                    ) as round_span:
                        if self.incremental:
                            if engine is None:
                                engine = DistanceEngine(tolerance=self.tolerance, obs=self.obs)
                                sec_matrix = self._cache.matrix(outcome.security_shas)
                                pool_matrix = self._cache.matrix(pool)
                                with self.obs.timer("distance"):
                                    distance = engine.reset(sec_matrix, pool_matrix)
                            else:
                                row_matrix = self._cache.matrix(pending_rows)
                                with self.obs.timer("distance"):
                                    distance = engine.update(row_matrix, pending_drop)
                            verified, rejected, reviewed_idx = self._review(distance, pool)
                            pending_rows = list(verified)
                            pending_drop = reviewed_idx
                        else:
                            verified, rejected = self.run_round(outcome.security_shas, pool)
                            reviewed = set(verified) | set(rejected)
                            pool = [s for s in pool if s not in reviewed]
                        search_range = n_live
                        n_live -= len(verified) + len(rejected)
                        outcome.security_shas.extend(verified)
                        outcome.non_security_shas.extend(rejected)
                        result = RoundResult(
                            round_no=round_no,
                            set_name=search_set.name,
                            search_range=search_range,
                            candidates=len(verified) + len(rejected),
                            verified_security=len(verified),
                        )
                        outcome.rounds.append(result)
                        if round_span is not None:
                            round_span.attributes["candidates"] = result.candidates
                            round_span.attributes["verified"] = result.verified_security
                    if self.ratio_threshold and result.ratio < self.ratio_threshold:
                        return outcome
        return outcome
