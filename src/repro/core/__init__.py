"""PatchDB core: the paper's contributed pipelines.

Nearest link search (Algorithm 1), the human-in-the-loop augmentation
scheme (Fig. 2), the Table III baselines, the verification oracle, the
Table V categorizer, feature caching, and the PatchDB dataset container.
"""

from .augmentation import AugmentationOutcome, DatasetAugmentation, RoundResult, SearchSet
from .baselines import (
    BaselineResult,
    brute_force_candidates,
    evaluate_candidates,
    nearest_link_candidates,
    pseudo_label_candidates,
    uncertainty_candidates,
)
from .cache import PatchFeatureCache, TokenSequenceCache
from .categorize import categorize_many, categorize_patch
from .index import PatchIndex, RecordRenderCache
from .nearest_link import NearestLinkResult, exact_assignment, link_distances, nearest_link_search
from .oracle import VerificationOracle, VerificationStats
from .patchdb import SOURCES, PatchDB, PatchRecord
from .query import PatchQuery, QueryError

__all__ = [
    "AugmentationOutcome",
    "BaselineResult",
    "DatasetAugmentation",
    "NearestLinkResult",
    "PatchDB",
    "PatchFeatureCache",
    "PatchIndex",
    "PatchQuery",
    "PatchRecord",
    "QueryError",
    "RecordRenderCache",
    "RoundResult",
    "SOURCES",
    "SearchSet",
    "TokenSequenceCache",
    "VerificationOracle",
    "VerificationStats",
    "brute_force_candidates",
    "categorize_many",
    "categorize_patch",
    "evaluate_candidates",
    "exact_assignment",
    "link_distances",
    "nearest_link_candidates",
    "nearest_link_search",
    "pseudo_label_candidates",
    "uncertainty_candidates",
]
