"""The NVD patch crawler (§III-A).

Walks CVE entries, extracts GitHub commit URLs from patch-tagged
references, "downloads" each as a ``.patch`` file from the world's
repositories, parses it, and strips non-C/C++ file diffs.  The output is
the NVD-based dataset: ``(cve_id, Patch)`` pairs plus crawl statistics.

The crawler never consults ground truth — like the paper's pipeline it
trusts the NVD, including its wrong links (§V-B), so downstream experiments
inherit that realistic label noise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..corpus.world import World
from ..errors import NvdError
from ..patch.gitformat import parse_patch
from ..patch.model import Patch
from .database import NvdDatabase
from .records import CveRecord

__all__ = ["CrawlResult", "NvdCrawler", "COMMIT_URL_RE"]

#: The commit-URL shape the paper matches on (§III-A).
COMMIT_URL_RE = re.compile(
    r"^https://github\.com/(?P<owner>[\w.-]+)/(?P<repo>[\w.-]+)/commit/(?P<sha>[0-9a-f]{40})$"
)


@dataclass(slots=True)
class CrawlResult:
    """Outcome of one crawl.

    Attributes:
        patches: cve_id → C/C++-filtered patch.
        repos_seen: repository slugs encountered via patch links.
        skipped_no_link: CVEs with no patch-tagged reference.
        skipped_bad_url: patch links not matching the commit-URL pattern.
        skipped_fetch_failed: links whose repository/commit is unavailable.
        skipped_non_c: patches empty after removing non-C/C++ files.
    """

    patches: dict[str, Patch] = field(default_factory=dict)
    repos_seen: set[str] = field(default_factory=set)
    skipped_no_link: int = 0
    skipped_bad_url: int = 0
    skipped_fetch_failed: int = 0
    skipped_non_c: int = 0

    @property
    def security_patches(self) -> list[Patch]:
        """The crawled patches in CVE-id order."""
        return [self.patches[k] for k in sorted(self.patches)]

    def summary(self) -> str:
        """One-line crawl report."""
        return (
            f"{len(self.patches)} patches from {len(self.repos_seen)} repos "
            f"(no-link={self.skipped_no_link}, bad-url={self.skipped_bad_url}, "
            f"fetch-failed={self.skipped_fetch_failed}, non-c={self.skipped_non_c})"
        )


class NvdCrawler:
    """Crawler bound to a world (its repos stand in for github.com)."""

    def __init__(self, world: World) -> None:
        self._world = world

    def fetch_patch_text(self, url: str) -> str:
        """Simulate downloading ``<commit url>.patch``.

        Raises:
            NvdError: if the URL does not resolve to a known commit.
        """
        m = COMMIT_URL_RE.match(url)
        if not m:
            raise NvdError(f"not a commit URL: {url!r}")
        slug = f"{m.group('owner')}/{m.group('repo')}"
        repo = self._world.repos.get(slug)
        if repo is None or m.group("sha") not in repo:
            raise NvdError(f"unavailable commit {url!r}")
        return repo.patch_text(m.group("sha"))

    def crawl(self, nvd: NvdDatabase) -> CrawlResult:
        """Extract the NVD-based security patch dataset."""
        result = CrawlResult()
        for record in nvd.all_records():
            self._crawl_one(record, result)
        return result

    def _crawl_one(self, record: CveRecord, result: CrawlResult) -> None:
        patch_refs = record.patch_references()
        if not patch_refs:
            result.skipped_no_link += 1
            return
        for ref in patch_refs:
            m = COMMIT_URL_RE.match(ref.url)
            if not m:
                result.skipped_bad_url += 1
                continue
            try:
                text = self.fetch_patch_text(ref.url)
            except NvdError:
                result.skipped_fetch_failed += 1
                continue
            slug = f"{m.group('owner')}/{m.group('repo')}"
            patch = parse_patch(text, repo=slug).only_c_cpp()
            result.repos_seen.add(slug)
            if patch.is_empty:
                result.skipped_non_c += 1
                continue
            result.patches[record.cve_id] = patch
            return
