"""CVE record model for the NVD simulator.

Mirrors the fields the paper relies on: the CVE id, reference URLs (only
some of which are tagged "Patch"), CWE classification, and CVSS severity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Reference", "CveRecord", "PATCH_TAG"]

PATCH_TAG = "Patch"


@dataclass(frozen=True, slots=True)
class Reference:
    """An external reference attached to a CVE entry."""

    url: str
    tags: tuple[str, ...] = ()

    @property
    def is_patch(self) -> bool:
        """True if the reference is tagged as a patch link."""
        return PATCH_TAG in self.tags


@dataclass(frozen=True, slots=True)
class CveRecord:
    """One NVD entry.

    Attributes:
        cve_id: e.g. ``CVE-2019-20912``.
        description: vulnerability summary text.
        cwe_id: weakness classification, e.g. ``CWE-787``.
        cvss_score: base severity in [0, 10].
        references: advisory/solution/patch links.
        published: publication date string.
    """

    cve_id: str
    description: str = ""
    cwe_id: str = ""
    cvss_score: float = 5.0
    references: tuple[Reference, ...] = ()
    published: str = ""

    def patch_references(self) -> tuple[Reference, ...]:
        """References tagged as patches."""
        return tuple(r for r in self.references if r.is_patch)

    @property
    def year(self) -> int:
        """The CVE's year component."""
        return int(self.cve_id.split("-")[1])
