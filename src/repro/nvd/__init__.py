"""NVD simulator: CVE records, database builder, and the patch crawler."""

from .crawler import COMMIT_URL_RE, CrawlResult, NvdCrawler
from .database import NvdConfig, NvdDatabase, build_nvd
from .records import PATCH_TAG, CveRecord, Reference

__all__ = [
    "COMMIT_URL_RE",
    "CrawlResult",
    "CveRecord",
    "NvdConfig",
    "NvdCrawler",
    "NvdDatabase",
    "PATCH_TAG",
    "Reference",
    "build_nvd",
]
