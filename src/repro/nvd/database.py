"""The NVD simulator: CVE entries generated from the world's ground truth.

Every security patch the world marked ``cve_id is not None`` becomes a CVE
entry whose references include the GitHub-style commit URL tagged "Patch",
plus advisory-noise references.  Imperfections the paper documents are
reproduced as configuration:

* ``missing_link_fraction`` — CVE entries whose patch link was never filed
  ("the patch information may not be available", §II-B).
* ``wrong_link_fraction`` — patch links pointing at an unrelated commit
  ("up to 1% of patches may not be correct", §V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..corpus.vulnpatterns import PATTERN_NAMES
from ..corpus.world import World
from ..errors import NvdError
from ..ml.base import seeded_rng
from .records import PATCH_TAG, CveRecord, Reference

__all__ = ["NvdConfig", "NvdDatabase", "build_nvd"]

_CWE_BY_TYPE: dict[int, str] = {
    1: "CWE-787",  # out-of-bounds write
    2: "CWE-476",  # NULL dereference
    3: "CWE-20",  # improper input validation
    4: "CWE-190",  # integer overflow
    5: "CWE-908",  # uninitialized resource
    6: "CWE-704",  # incorrect type conversion
    7: "CWE-628",  # wrong arguments
    8: "CWE-362",  # race condition
    9: "CWE-755",  # improper exception handling
    10: "CWE-416",  # use after free
    11: "CWE-693",  # protection mechanism failure
    12: "CWE-710",  # coding standard violation
}

_NOISE_URLS = (
    "https://seclists.org/oss-sec/{year}/q{q}/{n}",
    "https://bugzilla.example.org/show_bug.cgi?id={n}",
    "https://lists.example.org/advisories/{year}/{n}",
)


@dataclass(slots=True)
class NvdConfig:
    """Imperfection dials for the simulated NVD."""

    missing_link_fraction: float = 0.12
    wrong_link_fraction: float = 0.01
    seed: int = 51

    def validate(self) -> None:
        """Raise :class:`NvdError` on out-of-range fractions."""
        for frac in (self.missing_link_fraction, self.wrong_link_fraction):
            if not 0.0 <= frac <= 1.0:
                raise NvdError("fractions must be in [0, 1]")


class NvdDatabase:
    """Queryable container of CVE records."""

    def __init__(self, records: dict[str, CveRecord]) -> None:
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, cve_id: str) -> bool:
        return cve_id in self._records

    def get(self, cve_id: str) -> CveRecord:
        """Look up one record.

        Raises:
            NvdError: if the CVE id is unknown.
        """
        try:
            return self._records[cve_id]
        except KeyError:
            raise NvdError(f"unknown CVE id {cve_id!r}") from None

    def all_records(self) -> list[CveRecord]:
        """All records, ordered by CVE id."""
        return [self._records[k] for k in sorted(self._records)]

    def records_with_patch_links(self) -> list[CveRecord]:
        """Records having at least one patch-tagged reference."""
        return [r for r in self.all_records() if r.patch_references()]


def build_nvd(world: World, config: NvdConfig | None = None) -> NvdDatabase:
    """Create the simulated NVD from the world's CVE-reported patches."""
    config = config or NvdConfig()
    config.validate()
    rng = seeded_rng(config.seed)
    records: dict[str, CveRecord] = {}
    all_shas = world.all_shas()
    for sha in world.nvd_shas():
        label = world.label(sha)
        repo = world.repo_of(sha)
        refs: list[Reference] = []
        year = int(label.cve_id.split("-")[1])
        # Advisory noise links (never patch-tagged).
        for _ in range(int(rng.integers(1, 4))):
            template = _NOISE_URLS[int(rng.integers(0, len(_NOISE_URLS)))]
            refs.append(
                Reference(
                    template.format(year=year, q=int(rng.integers(1, 5)), n=int(rng.integers(1, 10_000)))
                )
            )
        roll = rng.random()
        if roll < config.wrong_link_fraction:
            # A wrong patch link: points at some other commit in the world.
            other = all_shas[int(rng.integers(0, len(all_shas)))]
            url = world.repo_of(other).commit_url(other)
            refs.append(Reference(url, tags=(PATCH_TAG,)))
        elif roll < config.wrong_link_fraction + config.missing_link_fraction:
            pass  # no patch link filed at all
        else:
            refs.append(Reference(repo.commit_url(sha), tags=(PATCH_TAG,)))
        pattern = PATTERN_NAMES.get(label.pattern_type or 0, "unspecified weakness")
        records[label.cve_id] = CveRecord(
            cve_id=label.cve_id,
            description=f"A vulnerability in {repo.slug} allows attackers to trigger "
            f"memory corruption; fixed by: {pattern}.",
            cwe_id=_CWE_BY_TYPE.get(label.pattern_type or 0, "NVD-CWE-noinfo"),
            cvss_score=float(np.round(rng.uniform(3.0, 9.9), 1)),
            references=tuple(refs),
            published=f"{year}-{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 29)):02d}",
        )
    return NvdDatabase(records)
