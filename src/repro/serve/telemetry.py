"""Live telemetry for the serve layer: shards, traces, and /metrics.

Three pieces turn the batch-shaped :mod:`repro.obs` registry into a
long-running server's instrumentation, all bounded in memory and all
lock-free on the request hot path:

* :class:`ShardedObs` — a duck-typed :class:`~repro.obs.ObsRegistry`
  facade that routes every write (``add``/``observe``/``timer``/``span``)
  to a private per-thread shard, so concurrent handler threads never
  contend on a lock and never lose counts to racy read-modify-write
  increments.  Reads (:meth:`ShardedObs.merged`) fold the shards into one
  registry through the existing snapshot/merge protocol; merged counters
  are bit-identical to what a single globally-locked registry would have
  recorded, and order-insensitive across shards (integer sums).  Shards
  are created with a histogram window and span cap, so per-request
  observations can never grow a week-long server's memory.
* :class:`TraceStore` — a bounded sample of finished request traces
  (:class:`~repro.obs.TraceContext` trees): the first *head* requests, a
  ring of the last *tail*, and a min-heap of the *slow* slowest requests
  over a latency threshold.  The stored traces export as the existing
  ``repro-run-manifest-v1`` JSONL (:meth:`TraceStore.export_jsonl`), so
  ``python -m repro trace`` renders live production requests exactly like
  batch runs.
* :func:`render_metrics` — Prometheus text exposition (version 0.0.4)
  over a merged registry: one ``repro_http_requests_total`` counter per
  (endpoint, status family), a fixed-bucket
  ``repro_http_request_duration_seconds`` histogram per endpoint whose
  ``_count``/``_sum`` are exact (the histogram window evicts raw values,
  never the running count/total), gauges for service identity, and every
  merged obs counter as ``repro_counter_total``.  :func:`parse_exposition`
  is the matching grammar checker — the CI smoke job and the hypothesis
  law tests both gate on it.

:class:`ServeTelemetry` ties the three together for
:class:`~repro.serve.service.PatchDBService`: it owns the shard set and
trace store, records per-request accounting (counters, window histogram,
latency bucket counters) without taking any cross-thread lock, and serves
the merged views behind ``/statsz``, ``/healthz`` and ``/metrics``.
"""

from __future__ import annotations

import heapq
import json
import re
import threading
import time
from bisect import bisect_left
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from ..obs import ObsRegistry, TraceContext, histogram_stats

__all__ = [
    "LATENCY_BUCKETS",
    "ServeTelemetry",
    "ShardedObs",
    "TraceEntry",
    "TraceStore",
    "parse_exposition",
    "render_metrics",
    "window_quantiles",
]

#: Fixed latency histogram bucket upper bounds, in seconds (an +Inf bucket
#: is implicit).  Fixed at import time so bucket counters merge across
#: shards and scrapes by simple addition.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Counter-name prefixes the hot path writes per request; the render and
#: rolling-stats readers parse them back out of the merged registry.
_STATUS_PREFIX = "http_status."
_BUCKET_PREFIX = "http_bucket."
#: Histogram-name prefix of per-endpoint request latencies.
_LATENCY_PREFIX = "serve.http."


def window_quantiles(values: list[float], qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
    """Nearest-rank quantiles of a (windowed) observation list.

    Same estimator as :func:`repro.obs.histogram_stats`, extended to p99
    for the rolling endpoint view; returns zeros on an empty window.
    """
    if not values:
        return {f"p{int(q * 100)}": 0.0 for q in qs}
    ordered = sorted(values)
    n = len(ordered)
    out = {}
    for q in qs:
        idx = max(0, -(-int(q * n * 1000000) // 1000000) - 1)  # ceil without float drift
        idx = min(idx, n - 1)
        out[f"p{int(q * 100)}"] = ordered[idx]
    return out


def _safe_snapshot(reg: ObsRegistry):
    """Snapshot a registry that another thread may be writing.

    Shard owners only ever append; CPython's GIL makes each individual
    container operation atomic, but Python-level iteration inside
    ``snapshot`` can still observe a dict resize mid-walk.  The collision
    window is a few microseconds, so a short retry loop converges.
    """
    for _ in range(8):
        try:
            return reg.snapshot()
        except RuntimeError:
            continue
    return reg.snapshot()


class ShardedObs:
    """Per-thread :class:`ObsRegistry` shards behind one write facade.

    Implements the registry's write surface (``add``, ``observe``,
    ``timer``, ``span``, ``merge``) by delegating to the calling thread's
    private shard — no cross-thread locking on any write.  The only lock
    in the class guards the shard list, taken once per *thread* (shard
    creation) and on reads.

    Args:
        enabled: ``False`` turns every shard into a disabled registry —
            the zero-cost baseline of the overhead benchmark.
        hist_window: per-shard histogram window (see
            :class:`~repro.obs.ObsRegistry`).
        span_cap: per-shard span cap.
    """

    def __init__(
        self,
        enabled: bool = True,
        hist_window: int | None = 1024,
        span_cap: int | None = 256,
    ) -> None:
        self.enabled = enabled
        self.hist_window = hist_window
        self.span_cap = span_cap
        self._local = threading.local()
        self._shards: list[ObsRegistry] = []
        #: Parallel to ``_shards``: the thread currently owning each shard.
        self._owners: list[threading.Thread] = []
        self._shards_lock = threading.Lock()

    # ---- write surface (ObsRegistry duck type) ----------------------------

    def shard(self) -> ObsRegistry:
        """The calling thread's private shard.

        A thread-per-connection server creates (and kills) one thread per
        request, so shards are **reclaimed**: a new thread adopts the
        shard of a dead one — its accumulated exact counts carry on —
        and only allocates a fresh registry when every shard's owner is
        still alive.  The shard count is therefore bounded by the peak
        number of concurrent threads, not by total requests served, and
        each shard still has exactly one writer at a time (a dead owner
        has finished every write before ``is_alive`` goes false).
        """
        reg = getattr(self._local, "shard", None)
        if reg is None:
            me = threading.current_thread()
            with self._shards_lock:
                for i, owner in enumerate(self._owners):
                    if not owner.is_alive():
                        self._owners[i] = me
                        reg = self._shards[i]
                        break
                else:
                    reg = ObsRegistry(
                        enabled=self.enabled,
                        hist_window=self.hist_window,
                        span_cap=self.span_cap,
                    )
                    self._shards.append(reg)
                    self._owners.append(me)
            self._local.shard = reg
        return reg

    def add(self, name: str, amount: int = 1) -> None:
        self.shard().add(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.shard().observe(name, value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        with self.shard().timer(name):
            yield

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Any]:
        with self.shard().span(name, **attributes) as record:
            yield record

    def merge(self, other) -> None:
        """Fold a snapshot/registry into the calling thread's shard."""
        self.shard().merge(other)

    # ---- read surface -----------------------------------------------------

    @property
    def n_shards(self) -> int:
        with self._shards_lock:
            return len(self._shards)

    def merged(self, base: ObsRegistry | None = None) -> ObsRegistry:
        """One registry folding *base* (optional) plus every shard.

        The result is a fresh bounded registry; counters are exact integer
        sums (order-insensitive, bit-identical to a single-lock registry),
        histogram ``count``/``total`` are exact, and histogram quantiles
        describe the union of the shards' retained windows.
        """
        out = ObsRegistry(hist_window=self.hist_window, span_cap=self.span_cap)
        if base is not None:
            out.merge(_safe_snapshot(base))
        with self._shards_lock:
            shards = list(self._shards)
        for reg in shards:
            out.merge(_safe_snapshot(reg))
        return out

    def count(self, name: str) -> int:
        """Merged value of one counter across every shard."""
        with self._shards_lock:
            shards = list(self._shards)
        return sum(reg.count(name) for reg in shards)


@dataclass(slots=True)
class TraceEntry:
    """One finished request in the trace store."""

    trace: TraceContext
    endpoint: str
    status: int
    duration_s: float
    seq: int = 0

    def summary(self) -> dict[str, Any]:
        """The JSON row of a trace listing (no spans)."""
        return {
            "trace_id": self.trace.trace_id,
            "endpoint": self.endpoint,
            "status": self.status,
            "duration_s": self.duration_s,
            "started_unix": self.trace.started_unix,
            "n_spans": len(self.trace),
            "spans_dropped": self.trace.dropped,
        }


class TraceStore:
    """Bounded head/tail/slow sample of finished request traces.

    Sampling policy (all three run concurrently, all bounded):

    * **head** — the first *head* requests ever served (startup behavior).
    * **tail** — a ring of the last *tail* requests (what is happening now).
    * **slow** — the *slow* slowest requests at or above
      *slow_threshold_s* (a min-heap, so the fastest of the "slow" set is
      evicted first — the store converges on the worst offenders).

    A request may qualify for more than one set; exports deduplicate by
    arrival order.  Total retained traces ≤ head + tail + slow, each trace
    itself span-capped — a week of traffic cannot grow the store.
    """

    def __init__(
        self,
        head: int = 32,
        tail: int = 256,
        slow: int = 64,
        slow_threshold_s: float = 0.25,
    ) -> None:
        self.head_cap = max(0, head)
        self.tail_cap = max(0, tail)
        self.slow_cap = max(0, slow)
        self.slow_threshold_s = slow_threshold_s
        self._lock = threading.Lock()
        self._head: list[TraceEntry] = []
        self._tail: deque[TraceEntry] = deque(maxlen=self.tail_cap or 1)
        self._slow: list[tuple[float, int, TraceEntry]] = []
        self._seen = 0

    def offer(self, entry: TraceEntry) -> None:
        """Record one finished request (cheap: one short lock, no render)."""
        with self._lock:
            self._seen += 1
            entry.seq = self._seen
            if len(self._head) < self.head_cap:
                self._head.append(entry)
            if self.tail_cap:
                self._tail.append(entry)
            if self.slow_cap and entry.duration_s >= self.slow_threshold_s:
                heapq.heappush(self._slow, (entry.duration_s, entry.seq, entry))
                if len(self._slow) > self.slow_cap:
                    heapq.heappop(self._slow)

    # ---- read access ------------------------------------------------------

    @property
    def seen(self) -> int:
        """Total requests ever offered (sampled or not)."""
        with self._lock:
            return self._seen

    def entries(self) -> list[TraceEntry]:
        """Every retained trace, deduplicated, in arrival order."""
        with self._lock:
            combined = list(self._head) + list(self._tail) + [e for _, _, e in self._slow]
        seen: set[int] = set()
        out = []
        for entry in sorted(combined, key=lambda e: e.seq):
            if entry.seq not in seen:
                seen.add(entry.seq)
                out.append(entry)
        return out

    def get(self, trace_id: str) -> TraceEntry | None:
        """The retained entry with this trace id, if still sampled."""
        for entry in self.entries():
            if entry.trace.trace_id == trace_id:
                return entry
        return None

    def info(self) -> dict[str, Any]:
        """Store occupancy for ``/statsz``."""
        with self._lock:
            return {
                "seen": self._seen,
                "head": len(self._head),
                "tail": len(self._tail),
                "slow": len(self._slow),
                "slow_threshold_s": self.slow_threshold_s,
            }

    # ---- export -----------------------------------------------------------

    def export_jsonl(
        self,
        entries: list[TraceEntry] | None = None,
        manifest: dict[str, Any] | None = None,
    ) -> str:
        """The retained traces as ``repro-run-manifest-v1`` JSONL text.

        Line 1 is a manifest record, then every trace's spans with ids
        remapped into one shared namespace (each request's root span stays
        a root, stamped with its ``trace_id``), then a ``summary`` record
        aggregating per-span-name timers over the exported spans — the
        exact shape :func:`repro.trace.load_trace` parses, so live
        requests render through ``python -m repro trace`` unchanged.
        """
        if entries is None:
            entries = self.entries()
        head = {
            "type": "manifest",
            "format": "repro-run-manifest-v1",
            "command": "serve-traces",
            "created_unix": time.time(),
            "traces": len(entries),
            "requests_seen": self.seen,
        }
        head.update(manifest or {})
        lines = [json.dumps(head, sort_keys=True)]
        timers: dict[str, float] = {}
        calls: dict[str, int] = {}
        hists: dict[str, list[float]] = {}
        offset = 0
        n_spans = 0
        for entry in entries:
            dicts = entry.trace.span_dicts(id_offset=offset)
            for d in dicts:
                lines.append(json.dumps(d, sort_keys=True))
                if d["duration"] >= 0:
                    name = d["name"]
                    timers[name] = timers.get(name, 0.0) + d["duration"]
                    calls[name] = calls.get(name, 0) + 1
                    hists.setdefault(name, []).append(d["duration"])
            offset += len(dicts)
            n_spans += len(dicts)
        summary = {
            "type": "summary",
            "format": "repro-obs-stats-v1",
            "timers": dict(sorted(timers.items())),
            "timer_calls": dict(sorted(calls.items())),
            "counters": {"traces_exported": len(entries)},
            "histograms": {name: histogram_stats(v) for name, v in sorted(hists.items())},
            "n_spans": n_spans,
        }
        lines.append(json.dumps(summary, sort_keys=True))
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    """An obs counter name as a legal Prometheus label value component."""
    clean = _SANITIZE_RE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def bucket_label(index: int) -> str:
    """The ``le`` label of bucket *index* (``len(LATENCY_BUCKETS)`` = +Inf)."""
    if index >= len(LATENCY_BUCKETS):
        return "+Inf"
    return format(LATENCY_BUCKETS[index], "g")


def bucket_index(elapsed_s: float) -> int:
    """The index of the first bucket whose bound is ≥ *elapsed_s*."""
    return bisect_left(LATENCY_BUCKETS, elapsed_s)


def _endpoint_rollup(merged: ObsRegistry) -> dict[str, dict[str, Any]]:
    """Per-endpoint request/status/bucket/latency facts from the merged
    registry's counter and histogram names."""
    out: dict[str, dict[str, Any]] = {}

    def slot(endpoint: str) -> dict[str, Any]:
        return out.setdefault(
            endpoint, {"families": {}, "buckets": {}, "count": 0, "sum": 0.0, "window": []}
        )

    for name, value in merged.counters.items():
        if name.startswith(_STATUS_PREFIX):
            endpoint, _, family = name[len(_STATUS_PREFIX) :].rpartition(".")
            if endpoint:
                slot(endpoint)["families"][family] = value
        elif name.startswith(_BUCKET_PREFIX):
            endpoint, _, idx = name[len(_BUCKET_PREFIX) :].rpartition(".")
            if endpoint and idx.isdigit():
                slot(endpoint)["buckets"][int(idx)] = value
    for name in merged.histograms:
        if name.startswith(_LATENCY_PREFIX):
            endpoint = name[len(_LATENCY_PREFIX) :]
            s = slot(endpoint)
            s["count"] = merged.hist_count(name)
            s["sum"] = merged.hist_total(name)
            s["window"] = merged.histograms[name]
    return out


def render_metrics(
    merged: ObsRegistry,
    gauges: dict[str, float] | None = None,
) -> str:
    """Prometheus text exposition (format 0.0.4) of a merged registry.

    Emits, in order: per-endpoint request counters by status family,
    per-endpoint fixed-bucket latency histograms (cumulative buckets,
    exact ``_count``/``_sum``), caller-supplied gauges, and every merged
    obs counter under ``repro_counter_total``.  Output is deterministic
    (sorted label sets) so scrapes diff cleanly.
    """
    rollup = _endpoint_rollup(merged)
    lines: list[str] = []

    lines.append("# HELP repro_http_requests_total HTTP requests served, by endpoint and status family.")
    lines.append("# TYPE repro_http_requests_total counter")
    for endpoint in sorted(rollup):
        for family in sorted(rollup[endpoint]["families"]):
            value = rollup[endpoint]["families"][family]
            lines.append(
                f'repro_http_requests_total{{endpoint="{_escape_label(endpoint)}",'
                f'family="{_escape_label(family)}"}} {_fmt_value(value)}'
            )

    lines.append(
        "# HELP repro_http_request_duration_seconds Request latency, fixed buckets per endpoint."
    )
    lines.append("# TYPE repro_http_request_duration_seconds histogram")
    for endpoint in sorted(rollup):
        facts = rollup[endpoint]
        if not facts["buckets"] and not facts["count"]:
            continue
        label = _escape_label(endpoint)
        cumulative = 0
        for i in range(len(LATENCY_BUCKETS)):
            cumulative += facts["buckets"].get(i, 0)
            lines.append(
                f'repro_http_request_duration_seconds_bucket{{endpoint="{label}",'
                f'le="{bucket_label(i)}"}} {cumulative}'
            )
        total = sum(facts["buckets"].values())
        lines.append(
            f'repro_http_request_duration_seconds_bucket{{endpoint="{label}",le="+Inf"}} {total}'
        )
        lines.append(
            f'repro_http_request_duration_seconds_count{{endpoint="{label}"}} {facts["count"]}'
        )
        lines.append(
            f'repro_http_request_duration_seconds_sum{{endpoint="{label}"}} '
            f"{_fmt_value(facts['sum'])}"
        )

    for name in sorted(gauges or {}):
        metric = f"repro_{_metric_name(name)}"
        lines.append(f"# HELP {metric} Service gauge {name}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt_value((gauges or {})[name])}")

    lines.append("# HELP repro_counter_total Merged observability counters, by name.")
    lines.append("# TYPE repro_counter_total counter")
    for name, value in sorted(merged.counters.items()):
        lines.append(
            f'repro_counter_total{{name="{_escape_label(name)}"}} {_fmt_value(value)}'
        )
    return "\n".join(lines) + "\n"


#: One exposition line: metric name, optional label set, value.  The label
#: block must skip quoted strings wholesale — a raw ``}`` is legal inside a
#: quoted label value (only ``\\``, ``"`` and newline are escaped), so the
#: closing brace is the first ``}`` *outside* quotes, not the first overall.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[^\"}]|\"(?:[^\"\\]|\\.)*\")*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse Prometheus text exposition; raises ``ValueError`` on any
    grammar violation.

    Returns ``{metric name: [(labels, value), ...]}``.  This is the gate
    the hypothesis law tests and the CI smoke job run over ``/metrics``:
    every non-comment line must match the name/label/value grammar, label
    sets must re-parse exactly, and values must be floats (``+Inf``/
    ``NaN`` allowed).
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    # Exposition lines are \n-delimited only; str.splitlines would also
    # split on control characters (\x1c-\x1e, \x85, ...) that are legal
    # raw bytes inside label values.
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: not a valid sample line: {line!r}")
        labels: dict[str, str] = {}
        raw = m.group("labels")
        if raw:
            consumed = 0
            while consumed < len(raw):
                lm = _LABEL_RE.match(raw, consumed)
                if lm is None:
                    raise ValueError(f"line {lineno}: malformed label set: {raw!r}")
                labels[lm.group(1)] = lm.group(2)
                consumed = lm.end()
                if consumed < len(raw) and raw[consumed] == ",":
                    consumed += 1
        value_text = m.group("value")
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(value_text)
            except ValueError as exc:
                raise ValueError(f"line {lineno}: bad sample value {value_text!r}") from exc
        samples.setdefault(m.group("name"), []).append((labels, value))
    if not samples:
        raise ValueError("no samples in exposition")
    return samples


# ---------------------------------------------------------------------------
# The service-facing bundle.
# ---------------------------------------------------------------------------

#: Accepted inbound trace ids: 8–64 hex chars / dashes (uuid-shaped).
_TRACE_ID_RE = re.compile(r"^[0-9a-fA-F-]{8,64}$")


class ServeTelemetry:
    """Request-scoped tracing + sharded live metrics for one service.

    Args:
        enabled: ``False`` disables everything — no traces, no shard
            writes — the paired baseline of ``bench-serve --overhead``.
        hist_window: per-shard histogram window (raw latency samples kept
            per phase; exact count/total always preserved).
        span_cap: per-shard registry span cap.
        max_spans_per_trace: span budget of each request's trace.
        trace_head / trace_tail / trace_slow / slow_threshold_s: the
            :class:`TraceStore` sampling policy.
    """

    TRACE_HEADER = "X-Repro-Trace-Id"

    def __init__(
        self,
        enabled: bool = True,
        hist_window: int = 1024,
        span_cap: int = 256,
        max_spans_per_trace: int = 128,
        trace_head: int = 32,
        trace_tail: int = 256,
        trace_slow: int = 64,
        slow_threshold_s: float = 0.25,
    ) -> None:
        self.enabled = enabled
        self.max_spans_per_trace = max_spans_per_trace
        self.router = ShardedObs(enabled=enabled, hist_window=hist_window, span_cap=span_cap)
        self.traces = TraceStore(
            head=trace_head, tail=trace_tail, slow=trace_slow, slow_threshold_s=slow_threshold_s
        )
        self.started_unix = time.time()
        self._stats_cache: tuple[float, dict] | None = None
        self._stats_lock = threading.Lock()
        #: (endpoint, family, bucket) -> pre-formatted counter names; the
        #: key space is tiny (endpoints x 5 families x 14 buckets) and the
        #: cache saves four string formats per request on the hot path.
        self._names: dict[tuple[str, str, int], tuple[str, str, str, str]] = {}

    # ---- request lifecycle -------------------------------------------------

    def new_trace(self, header_value: str | None = None) -> TraceContext | None:
        """A trace for one inbound request; adopts a well-formed header id,
        generates otherwise.  ``None`` when telemetry is disabled."""
        if not self.enabled:
            return None
        trace_id = None
        if header_value and _TRACE_ID_RE.match(header_value.strip()):
            trace_id = header_value.strip().lower()
        return TraceContext(trace_id=trace_id, max_spans=self.max_spans_per_trace)

    def record_request(
        self,
        endpoint: str,
        status: int,
        elapsed_s: float,
        trace: TraceContext | None = None,
    ) -> None:
        """Fold one finished request into this thread's shard (lock-free)
        and offer its trace to the bounded store."""
        if not self.enabled:
            return
        obs = self.router.shard()
        family = f"{min(max(status // 100, 1), 5)}xx"
        bucket = bucket_index(elapsed_s)
        names = self._names.get((endpoint, family, bucket))
        if names is None:
            names = (
                f"http_{endpoint}",
                f"{_STATUS_PREFIX}{endpoint}.{family}",
                f"{_BUCKET_PREFIX}{endpoint}.{bucket}",
                f"{_LATENCY_PREFIX}{endpoint}",
            )
            self._names[(endpoint, family, bucket)] = names
        obs.add("http_requests")
        obs.add(names[0])
        if status >= 500:
            obs.add("http_5xx")
        elif status >= 400:
            obs.add("http_4xx")
        obs.add(names[1])
        obs.add(names[2])
        obs.observe(names[3], elapsed_s)
        if trace is not None:
            self.traces.offer(
                TraceEntry(trace=trace, endpoint=endpoint, status=status, duration_s=elapsed_s)
            )

    # ---- merged views ------------------------------------------------------

    def merged(self, base: ObsRegistry | None = None) -> ObsRegistry:
        """Shards (plus *base*) folded into one readable registry."""
        return self.router.merged(base)

    def endpoint_stats(
        self, merged: ObsRegistry | None = None, max_age_s: float = 0.5
    ) -> dict[str, dict[str, Any]]:
        """Rolling per-endpoint latency quantiles and error rates.

        Quantiles (p50/p95/p99) are nearest-rank over the merged shard
        windows — i.e. the most recent ~``hist_window`` samples per shard —
        while ``requests`` and ``error_rate`` are exact.  Results are
        cached for *max_age_s* so hot callers (``/healthz``) pay the merge
        at most twice a second; pass a pre-merged registry to bypass the
        cache (``/statsz`` does, keeping its sections consistent).
        """
        if merged is None:
            now = time.monotonic()
            with self._stats_lock:
                cached = self._stats_cache
                if cached is not None and now - cached[0] < max_age_s:
                    return cached[1]
            stats = self._compute_endpoint_stats(self.merged())
            with self._stats_lock:
                self._stats_cache = (time.monotonic(), stats)
            return stats
        return self._compute_endpoint_stats(merged)

    @staticmethod
    def _compute_endpoint_stats(merged: ObsRegistry) -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        for endpoint, facts in _endpoint_rollup(merged).items():
            requests = sum(facts["families"].values())
            n_5xx = facts["families"].get("5xx", 0)
            n_4xx = facts["families"].get("4xx", 0)
            window = facts["window"]
            q = window_quantiles(window)
            out[endpoint] = {
                "requests": requests,
                "error_rate": (n_5xx / requests) if requests else 0.0,
                "rate_4xx": (n_4xx / requests) if requests else 0.0,
                "p50_ms": round(q["p50"] * 1e3, 3),
                "p95_ms": round(q["p95"] * 1e3, 3),
                "p99_ms": round(q["p99"] * 1e3, 3),
                "window": len(window),
            }
        return out

    def metrics_text(
        self, base: ObsRegistry | None = None, gauges: dict[str, float] | None = None
    ) -> str:
        """The ``/metrics`` payload over the merged registry."""
        merged = self.merged(base)
        all_gauges = {"uptime_seconds": time.time() - self.started_unix}
        all_gauges.update(gauges or {})
        all_gauges.setdefault("trace_store_size", float(len(self.traces.entries())))
        return render_metrics(merged, gauges=all_gauges)
