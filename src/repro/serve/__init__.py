"""PatchDB as a long-running service.

The "millions of users" direction of the ROADMAP: a stdlib
:class:`~http.server.ThreadingHTTPServer` over a built experiment world
and its PatchDB, answering dataset queries (through the unified
:class:`~repro.core.query.PatchQuery` surface), streaming JSONL releases,
classifying submitted ``.patch`` bodies against a persisted fitted model
(no per-request training), and exposing its run manifest, merged live
telemetry, Prometheus ``/metrics``, and sampled request traces over
``/healthz``/``/statsz``/``/metrics``/``/v1/traces``.

Layering:

* :mod:`repro.serve.service` — the framework-independent core
  (:class:`PatchDBService`) plus the classify micro-batcher.
* :mod:`repro.serve.telemetry` — per-thread shard registries, the bounded
  trace store, and the Prometheus exposition behind ``/metrics``.
* :mod:`repro.serve.http` — route translation, per-request trace
  propagation (``X-Repro-Trace-Id``), and the server itself.
* :mod:`repro.serve.bench` — the load generator behind ``bench-serve``
  and the CI smoke job (writes ``BENCH_serve.json``), plus the paired
  telemetry-overhead runner (``BENCH_serve_obs.json``).
"""

from .bench import (
    BenchEndpoint,
    EndpointResult,
    default_endpoints,
    run_load,
    run_overhead,
    selective_endpoints,
    write_bench,
)
from .http import TRACE_HEADER, PatchDBServer, make_server
from .service import MODEL_CONFIG, ClassifyBatcher, PatchDBService
from .telemetry import (
    LATENCY_BUCKETS,
    ServeTelemetry,
    ShardedObs,
    TraceStore,
    parse_exposition,
    render_metrics,
)

__all__ = [
    "BenchEndpoint",
    "ClassifyBatcher",
    "EndpointResult",
    "LATENCY_BUCKETS",
    "MODEL_CONFIG",
    "PatchDBServer",
    "PatchDBService",
    "ServeTelemetry",
    "ShardedObs",
    "TRACE_HEADER",
    "TraceStore",
    "default_endpoints",
    "make_server",
    "parse_exposition",
    "render_metrics",
    "run_load",
    "run_overhead",
    "selective_endpoints",
    "write_bench",
]
