"""PatchDB as a long-running service.

The "millions of users" direction of the ROADMAP: a stdlib
:class:`~http.server.ThreadingHTTPServer` over a built experiment world
and its PatchDB, answering dataset queries (through the unified
:class:`~repro.core.query.PatchQuery` surface), streaming JSONL releases,
classifying submitted ``.patch`` bodies against a persisted fitted model
(no per-request training), and exposing its run manifest and obs registry
over ``/healthz``/``/statsz``.

Layering:

* :mod:`repro.serve.service` — the framework-independent core
  (:class:`PatchDBService`) plus the classify micro-batcher.
* :mod:`repro.serve.http` — route translation and the server itself.
* :mod:`repro.serve.bench` — the load generator behind ``bench-serve``
  and the CI smoke job (writes ``BENCH_serve.json``).
"""

from .bench import (
    BenchEndpoint,
    EndpointResult,
    default_endpoints,
    run_load,
    selective_endpoints,
    write_bench,
)
from .http import PatchDBServer, make_server
from .service import MODEL_CONFIG, ClassifyBatcher, PatchDBService

__all__ = [
    "BenchEndpoint",
    "ClassifyBatcher",
    "EndpointResult",
    "MODEL_CONFIG",
    "PatchDBServer",
    "PatchDBService",
    "default_endpoints",
    "make_server",
    "run_load",
    "selective_endpoints",
    "write_bench",
]
