"""The framework-independent service core behind ``python -m repro serve``.

:class:`PatchDBService` owns everything the HTTP layer exposes: a built
:class:`~repro.analysis.experiments.ExperimentWorld`, the
:class:`~repro.core.patchdb.PatchDB` it serves, and a persisted
:class:`~repro.ml.model_cache.FittedModelCache` holding the classify-on-
demand model.  The HTTP handler in :mod:`repro.serve.http` is a thin
translation layer over this class, so every endpoint is equally usable as a
plain method call (tests drive both).

Three design points:

* **One query surface.**  Every record-returning entry point takes a
  :class:`~repro.core.query.PatchQuery`; the HTTP layer parses query
  strings into the same object the CLI and library use, so filter
  semantics cannot drift between access paths.
* **No per-request training.**  :meth:`warm` fits (or loads) the classify
  model exactly once, keyed by the sha of the served training set.  With a
  persisted model cache, a restart against the same dataset loads the
  pickle and never calls ``fit`` at all.
* **Micro-batched classification.**  Concurrent classify requests funnel
  through one :class:`ClassifyBatcher` worker that stacks their feature
  rows into a single ``predict_proba`` call — the per-row predictions are
  independent, so batched responses are bit-identical to serial ones.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Iterator

import numpy as np

from ..analysis.experiments import ExperimentWorld
from ..core.categorize import categorize_patch
from ..core.patchdb import PatchDB, PatchRecord
from ..core.query import PatchQuery
from ..corpus.vulnpatterns import PATTERN_NAMES
from ..errors import ReproError
from ..features.extractor import extract_features
from ..features.vector import FEATURE_NAMES
from ..ml import RandomForestClassifier
from ..ml.model_cache import FittedModelCache, training_key
from ..obs import ObsRegistry
from ..patch.gitformat import parse_patch
from ..staticcheck import lint_patch

__all__ = ["ClassifyBatcher", "PatchDBService", "MODEL_CONFIG"]

#: Hyperparameters of the served classifier; part of the model cache key,
#: so changing them can never serve a stale fit.
MODEL_CONFIG = {
    "estimator": "RandomForestClassifier",
    "n_estimators": 40,
    "max_depth": 14,
    "features": "table1-60-contextfree",
}


class ClassifyBatcher:
    """Micro-batches concurrent single-row predictions into stacked calls.

    Requests land in a queue; one worker thread drains it — first request
    blocks, then up to ``max_batch - 1`` more are collected for at most
    ``max_wait_s`` — and resolves every request's future from one
    ``predict_batch`` call over the stacked rows.  Per-row predictions are
    independent, so a batched response is bit-identical to the serial one;
    batching only amortizes the per-call model overhead across concurrent
    requests (the ``fit_many`` trick, applied to inference).

    Args:
        predict_batch: ``(N, F) matrix -> (N,) probabilities`` callable.
        max_batch: largest batch assembled per model call.
        max_wait_s: how long the worker waits for co-batchable requests
            after the first one arrives.
        obs: registry for ``classify_batches`` / ``classify_batched_requests``
            counters and the per-batch ``classify_batch`` size histogram.
    """

    def __init__(
        self,
        predict_batch: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        obs: ObsRegistry | None = None,
    ) -> None:
        self._predict = predict_batch
        self._max_batch = max(1, max_batch)
        self._max_wait = max(0.0, max_wait_s)
        self.obs = obs if obs is not None else ObsRegistry()
        self._queue: queue.Queue = queue.Queue()
        self._obs_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="classify-batcher", daemon=True
        )
        self._closed = False
        self._worker.start()

    def submit(self, row: np.ndarray) -> "Future[float]":
        """Enqueue one feature row; the future resolves to its probability."""
        if self._closed:
            raise ReproError("ClassifyBatcher is closed")
        future: Future[float] = Future()
        self._queue.put((row, future))
        return future

    def close(self) -> None:
        """Drain outstanding requests and stop the worker."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=10.0)

    # ---- worker -----------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            deadline = time.monotonic() + self._max_wait
            stop = False
            while len(batch) < self._max_batch:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    # One non-blocking sweep so an already-full queue still
                    # batches even with a zero wait window.
                    timeout = 0.0
                try:
                    nxt = self._queue.get(timeout=timeout) if timeout else self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            self._process(batch)
            if stop:
                return

    def _process(self, batch: list[tuple[np.ndarray, "Future[float]"]]) -> None:
        X = np.vstack([row for row, _ in batch])
        try:
            probs = self._predict(X)
        except Exception as exc:  # propagate the failure to every waiter
            for _, future in batch:
                future.set_exception(exc)
            return
        for (_, future), p in zip(batch, probs):
            future.set_result(float(p))
        with self._obs_lock:
            self.obs.add("classify_batches")
            self.obs.add("classify_batched_requests", len(batch))
            self.obs.observe("classify_batch", float(len(batch)))


def _record_meta(
    record: PatchRecord, include_patch: bool = False, patch_text: str | None = None
) -> dict:
    """The JSON shape of one record on the query endpoint (metadata-first;
    the full patch text rides along only on request, rendered through the
    dataset's render cache when the caller supplies it)."""
    out = {
        "sha": record.patch.sha,
        "repo": record.patch.repo,
        "source": record.source,
        "is_security": record.is_security,
        "pattern_type": record.pattern_type,
        "cve_id": record.cve_id,
        "subject": record.patch.subject,
        "files_changed": len(record.patch.files),
    }
    if include_patch:
        if patch_text is None:
            from ..patch.gitformat import render_mbox_patch

            patch_text = render_mbox_patch(record.patch)
        out["patch_text"] = patch_text
    return out


class PatchDBService:
    """Query + classify + observability over one built world and dataset.

    Args:
        ew: the experiment world the dataset was built from (manifest,
            digest, and obs identity come from here).
        db: the PatchDB being served.
        model_cache: persisted fitted-model cache; a fresh in-memory one
            is created if omitted.
        obs: registry every endpoint records into; defaults to ``ew.obs``.
        max_batch: classify micro-batch cap.
        batch_wait_s: classify co-batching window.
    """

    def __init__(
        self,
        ew: ExperimentWorld,
        db: PatchDB,
        model_cache: FittedModelCache | None = None,
        obs: ObsRegistry | None = None,
        max_batch: int = 64,
        batch_wait_s: float = 0.002,
    ) -> None:
        self.ew = ew
        self.db = db
        self.obs = obs if obs is not None else ew.obs
        # Dataset-level index/render-cache hits count into this service's
        # registry, so they surface on /statsz alongside the HTTP counters.
        db.rebind_obs(self.obs)
        self.models = (
            model_cache if model_cache is not None else FittedModelCache(obs=self.obs)
        )
        self.models.obs = self.obs
        self._records: list[PatchRecord] = db.records()
        self._max_batch = max_batch
        self._batch_wait_s = batch_wait_s
        self._model: RandomForestClassifier | None = None
        self._model_key: str | None = None
        self._model_was_cached: bool | None = None
        self._batcher: ClassifyBatcher | None = None
        self._started_unix = time.time()
        self._lock = threading.Lock()

    # ---- model warm-up ----------------------------------------------------

    def _training_set(self) -> tuple[list[PatchRecord], list[int]]:
        """The natural (non-synthetic) records and their labels."""
        natural = [r for r in self._records if r.source != "synthetic"]
        return natural, [int(r.is_security) for r in natural]

    def warm(self) -> dict:
        """Fit or load the classify model and start the batch worker.

        The model is keyed by the sha256 of the served training set (sorted
        ``(sha, label)`` pairs) plus :data:`MODEL_CONFIG`, so a cache hit is
        guaranteed to be the fit this exact dataset would produce; on a hit
        no feature extraction or training happens at all.  Returns a
        warm-up summary for the startup log and the manifest.
        """
        natural, labels = self._training_set()
        if not natural:
            raise ReproError("cannot warm the classify model: dataset has no natural records")
        key = training_key([r.patch.sha for r in natural], labels, MODEL_CONFIG)
        before = len(self.models)

        def fit() -> RandomForestClassifier:
            X = np.vstack([extract_features(r.patch) for r in natural])
            y = np.array(labels)
            model = RandomForestClassifier(
                n_estimators=MODEL_CONFIG["n_estimators"],
                max_depth=MODEL_CONFIG["max_depth"],
                seed=self.ew.seed,
                obs=self.obs,
            )
            model.fit(X, y)
            return model

        start = time.perf_counter()
        model = self.models.get_or_fit(key, fit)
        with self._lock:
            self._model = model
            self._model_key = key
            self._model_was_cached = len(self.models) == before
            if self._batcher is not None:
                self._batcher.close()
            self._batcher = ClassifyBatcher(
                model.decision_scores,
                max_batch=self._max_batch,
                max_wait_s=self._batch_wait_s,
                obs=self.obs,
            )
        return {
            "model_key": key,
            "cached": self._model_was_cached,
            "n_train": len(natural),
            "warm_s": round(time.perf_counter() - start, 3),
        }

    @property
    def model_key(self) -> str | None:
        """The training-set sha key of the active model (None before warm)."""
        return self._model_key

    def close(self) -> None:
        """Stop the classify worker (idempotent)."""
        with self._lock:
            if self._batcher is not None:
                self._batcher.close()
                self._batcher = None

    # ---- query ------------------------------------------------------------

    def query(self, query: PatchQuery, include_patch: bool = False) -> dict:
        """The paginated query endpoint: metadata rows + match accounting.

        Both the match count and the page come from the dataset's
        posting-list index (O(smallest posting list), not O(N)); requested
        patch text is served from the render-once cache.
        """
        with self.obs.timer("serve.query"):
            total = self.db.count(query)
            rows = [
                _record_meta(
                    r,
                    include_patch,
                    patch_text=self.db.record_mbox(r) if include_patch else None,
                )
                for r in self.db.records(query)
            ]
        return {
            "query": query.to_dict(),
            "total_matching": total,
            "count": len(rows),
            "records": rows,
        }

    def query_stream(self, query: PatchQuery) -> Iterator[str]:
        """Matching records as JSONL lines (full ``git format-patch`` text).

        The same one-record-at-a-time shape as
        :meth:`~repro.core.patchdb.PatchDB.write_jsonl`, so arbitrarily
        large responses stream in constant memory on the wire; each line
        renders at most once ever (the render cache is shared with
        :meth:`query` and :meth:`~repro.core.patchdb.PatchDB.save_jsonl`),
        so repeated streams of the same records cost bytes-out only.
        """
        for record in self.db.records(query):
            yield self.db.record_json(record) + "\n"

    # ---- classify ---------------------------------------------------------

    def classify(self, patch_text: str, batched: bool = True) -> dict:
        """Feature-extract + categorize + lint + model-classify one patch.

        Args:
            patch_text: a ``git format-patch``/unified-diff body.
            batched: route the prediction through the micro-batch worker
                (the HTTP path); ``False`` predicts inline — results are
                bit-identical, which the parity tests assert.

        Raises:
            ReproError: unparsable patch (HTTP 400) or un-warmed service.
        """
        with self._lock:
            model, batcher = self._model, self._batcher
        if model is None:
            raise ReproError("service is not warmed: no classify model loaded")
        with self.obs.timer("serve.classify"):
            patch = parse_patch(patch_text)
            vec = extract_features(patch)
            if batched and batcher is not None:
                prob = batcher.submit(vec).result(timeout=30.0)
            else:
                prob = float(model.decision_scores(vec[np.newaxis, :])[0])
            pattern = categorize_patch(patch)
            lint = lint_patch(patch, obs=self.obs)
        findings = lint.findings()
        return {
            "sha": patch.sha,
            "subject": patch.subject,
            "files_changed": len(patch.files),
            "is_security": bool(prob >= 0.5),
            "security_probability": prob,
            "pattern_type": pattern,
            "pattern_name": PATTERN_NAMES[pattern],
            "lint": {
                "n_findings": len(findings),
                "by_checker": lint.counts_by_checker(),
                "findings": [f.render() for f in findings[:25]],
            },
            "features": {
                name: float(v)
                for name, v in zip(FEATURE_NAMES, vec)
                if v != 0
            },
            "model_key": self._model_key,
        }

    # ---- lint -------------------------------------------------------------

    def lint(self, patch_text: str) -> dict:
        """Run the static-analysis suite over one patch's post-image.

        Unlike :meth:`classify` this needs no warmed model — it is pure
        analysis, usable the moment the service is constructed.  Findings
        carry their stable ids so callers can build ``lint --baseline``
        files straight from the endpoint.

        Raises:
            ReproError: unparsable patch (HTTP 400).
        """
        with self.obs.timer("serve.lint"):
            self.obs.add("lint.request")
            patch = parse_patch(patch_text)
            report = lint_patch(patch, obs=self.obs)
        findings = report.findings()
        self.obs.add("lint.findings", len(findings))
        return {
            "sha": patch.sha,
            "subject": patch.subject,
            "files_changed": len(patch.files),
            "n_findings": len(findings),
            "by_checker": report.counts_by_checker(),
            "findings": [f.to_dict() for f in findings],
        }

    # ---- observability ----------------------------------------------------

    def healthz(self) -> dict:
        """Liveness: records served, model state, uptime."""
        return {
            "status": "ok",
            "records": len(self._records),
            "model_warm": self._model is not None,
            "uptime_s": round(time.time() - self._started_unix, 3),
        }

    def summary(self) -> dict:
        """The dataset's headline counts (the ``stats`` CLI view)."""
        return {"summary": self.db.summary()}

    def manifest(self) -> dict:
        """The run manifest of the served world + serving identity."""
        return self.ew.manifest(
            command="serve",
            records=len(self._records),
            model_key=self._model_key,
            model_cached=self._model_was_cached,
        )

    def statsz(self) -> dict:
        """The obs registry's machine-readable summary + service identity."""
        payload = self.obs.to_dict()
        payload["service"] = self.healthz()
        return payload

    def record_request(self, endpoint: str, status: int, elapsed_s: float) -> None:
        """Fold one HTTP request into the registry (single writer lock, so
        concurrent handler threads never lose counts)."""
        with self._lock:
            self.obs.add("http_requests")
            self.obs.add(f"http_{endpoint}")
            if status >= 500:
                self.obs.add("http_5xx")
            elif status >= 400:
                self.obs.add("http_4xx")
            self.obs.observe(f"serve.http.{endpoint}", elapsed_s)
