"""The framework-independent service core behind ``python -m repro serve``.

:class:`PatchDBService` owns everything the HTTP layer exposes: a built
:class:`~repro.analysis.experiments.ExperimentWorld`, the
:class:`~repro.core.patchdb.PatchDB` it serves, and a persisted
:class:`~repro.ml.model_cache.FittedModelCache` holding the classify-on-
demand model.  The HTTP handler in :mod:`repro.serve.http` is a thin
translation layer over this class, so every endpoint is equally usable as a
plain method call (tests drive both).

Three design points:

* **One query surface.**  Every record-returning entry point takes a
  :class:`~repro.core.query.PatchQuery`; the HTTP layer parses query
  strings into the same object the CLI and library use, so filter
  semantics cannot drift between access paths.
* **No per-request training.**  :meth:`warm` fits (or loads) the classify
  model exactly once, keyed by the sha of the served training set.  With a
  persisted model cache, a restart against the same dataset loads the
  pickle and never calls ``fit`` at all.
* **Micro-batched classification.**  Concurrent classify requests funnel
  through one :class:`ClassifyBatcher` worker that stacks their feature
  rows into a single ``predict_proba`` call — the per-row predictions are
  independent, so batched responses are bit-identical to serial ones.
* **Lock-free live telemetry.**  Every per-request observation (HTTP
  counters, latency histograms, dataset index/render-cache hits, lint and
  batcher counters) routes through a :class:`~repro.serve.telemetry.ServeTelemetry`
  shard router — one private registry per handler thread, merged on read —
  so the hot path never takes a cross-thread lock and a week-long server
  never grows its histograms.  Request traces (:class:`~repro.obs.TraceContext`)
  thread from the HTTP handler through query/classify/lint down into the
  index, render cache, model cache, and across the batcher's thread
  handoff; finished traces land in a bounded store exportable as
  ``repro-run-manifest-v1`` JSONL (``/v1/traces`` → ``python -m repro trace``).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Iterator

import numpy as np

from ..analysis.experiments import ExperimentWorld
from ..core.categorize import categorize_patch
from ..core.patchdb import PatchDB, PatchRecord
from ..core.query import PatchQuery
from ..corpus.vulnpatterns import PATTERN_NAMES
from ..errors import ReproError
from ..features.extractor import extract_features
from ..features.vector import FEATURE_NAMES
from ..ml import RandomForestClassifier
from ..ml.model_cache import FittedModelCache, training_key
from ..obs import ObsRegistry, TraceContext, current_trace_site, trace_span
from ..patch.gitformat import parse_patch
from ..staticcheck import lint_patch
from .telemetry import ServeTelemetry

__all__ = ["ClassifyBatcher", "PatchDBService", "MODEL_CONFIG"]

#: Hyperparameters of the served classifier; part of the model cache key,
#: so changing them can never serve a stale fit.
MODEL_CONFIG = {
    "estimator": "RandomForestClassifier",
    "n_estimators": 40,
    "max_depth": 14,
    "features": "table1-60-contextfree",
}


class ClassifyBatcher:
    """Micro-batches concurrent single-row predictions into stacked calls.

    Requests land in a queue; one worker thread drains it — first request
    blocks, then up to ``max_batch - 1`` more are collected for at most
    ``max_wait_s`` — and resolves every request's future from one
    ``predict_batch`` call over the stacked rows.  Per-row predictions are
    independent, so a batched response is bit-identical to the serial one;
    batching only amortizes the per-call model overhead across concurrent
    requests (the ``fit_many`` trick, applied to inference).

    Args:
        predict_batch: ``(N, F) matrix -> (N,) probabilities`` callable.
        max_batch: largest batch assembled per model call.
        max_wait_s: how long the worker waits for co-batchable requests
            after the first one arrives.
        obs: registry for ``classify_batches`` / ``classify_batched_requests``
            counters and the per-batch ``classify_batch`` size histogram.
    """

    def __init__(
        self,
        predict_batch: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        obs: ObsRegistry | None = None,
    ) -> None:
        self._predict = predict_batch
        self._max_batch = max(1, max_batch)
        self._max_wait = max(0.0, max_wait_s)
        self.obs = obs if obs is not None else ObsRegistry()
        self._queue: queue.Queue = queue.Queue()
        self._obs_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="classify-batcher", daemon=True
        )
        self._closed = False
        self._worker.start()

    def submit(self, row: np.ndarray) -> "Future[float]":
        """Enqueue one feature row; the future resolves to its probability.

        The caller's active trace site (if any) is captured here and
        carried across the thread handoff: the worker attaches a
        ``model.predict`` span to each waiter's trace after the shared
        batch call, so request traces show the prediction they waited on
        even though it ran on the batcher thread.
        """
        if self._closed:
            raise ReproError("ClassifyBatcher is closed")
        future: Future[float] = Future()
        self._queue.put((row, future, current_trace_site()))
        return future

    def close(self) -> None:
        """Drain outstanding requests and stop the worker."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=10.0)

    # ---- worker -----------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            deadline = time.monotonic() + self._max_wait
            stop = False
            while len(batch) < self._max_batch:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    # One non-blocking sweep so an already-full queue still
                    # batches even with a zero wait window.
                    timeout = 0.0
                try:
                    nxt = self._queue.get(timeout=timeout) if timeout else self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            self._process(batch)
            if stop:
                return

    def _process(
        self, batch: list[tuple[np.ndarray, "Future[float]", tuple[TraceContext, str | None] | None]]
    ) -> None:
        X = np.vstack([row for row, _, _ in batch])
        start = time.perf_counter()
        try:
            probs = self._predict(X)
        except Exception as exc:  # propagate the failure to every waiter
            for _, future, _ in batch:
                future.set_exception(exc)
            return
        duration = time.perf_counter() - start
        # Stitch the shared model call into every waiting request's trace
        # before resolving the futures, so a sampled trace read right after
        # the response always contains its predict span.
        for _, _, site in batch:
            if site is not None:
                trace, parent_id = site
                trace.add_span(
                    "model.predict",
                    parent_id,
                    start,
                    duration,
                    batch_size=len(batch),
                    batched=True,
                )
        for (_, future, _), p in zip(batch, probs):
            future.set_result(float(p))
        with self._obs_lock:
            self.obs.add("classify_batches")
            self.obs.add("classify_batched_requests", len(batch))
            self.obs.observe("classify_batch", float(len(batch)))


def _record_meta(
    record: PatchRecord, include_patch: bool = False, patch_text: str | None = None
) -> dict:
    """The JSON shape of one record on the query endpoint (metadata-first;
    the full patch text rides along only on request, rendered through the
    dataset's render cache when the caller supplies it)."""
    out = {
        "sha": record.patch.sha,
        "repo": record.patch.repo,
        "source": record.source,
        "is_security": record.is_security,
        "pattern_type": record.pattern_type,
        "cve_id": record.cve_id,
        "subject": record.patch.subject,
        "files_changed": len(record.patch.files),
    }
    if include_patch:
        if patch_text is None:
            from ..patch.gitformat import render_mbox_patch

            patch_text = render_mbox_patch(record.patch)
        out["patch_text"] = patch_text
    return out


class PatchDBService:
    """Query + classify + observability over one built world and dataset.

    Args:
        ew: the experiment world the dataset was built from (manifest,
            digest, and obs identity come from here).
        db: the PatchDB being served.
        model_cache: persisted fitted-model cache; a fresh in-memory one
            is created if omitted.
        obs: base registry (build-time history); defaults to ``ew.obs``.
            Per-request observations go to the telemetry shard router, not
            here — ``/statsz`` merges both.
        max_batch: classify micro-batch cap.
        batch_wait_s: classify co-batching window.
        telemetry: live-telemetry bundle (shard router + trace store); a
            default-configured one is created if omitted.  Pass
            ``ServeTelemetry(enabled=False)`` for the zero-instrumentation
            baseline of the overhead benchmark.
    """

    def __init__(
        self,
        ew: ExperimentWorld,
        db: PatchDB,
        model_cache: FittedModelCache | None = None,
        obs: ObsRegistry | None = None,
        max_batch: int = 64,
        batch_wait_s: float = 0.002,
        telemetry: ServeTelemetry | None = None,
    ) -> None:
        self.ew = ew
        self.db = db
        self.obs = obs if obs is not None else ew.obs
        self.telemetry = telemetry if telemetry is not None else ServeTelemetry()
        # Every per-request write goes to the calling thread's private
        # shard — lock-free — and is folded back in on /statsz//metrics
        # reads.  Dataset index/render-cache hits, lint counters, and the
        # batcher's stats all route through the same shards.
        self._router = self.telemetry.router
        db.rebind_obs(self._router)
        self.models = (
            model_cache if model_cache is not None else FittedModelCache(obs=self.obs)
        )
        self.models.obs = self._router
        self._records: list[PatchRecord] = db.records()
        self._max_batch = max_batch
        self._batch_wait_s = batch_wait_s
        self._model: RandomForestClassifier | None = None
        self._model_key: str | None = None
        self._model_was_cached: bool | None = None
        self._batcher: ClassifyBatcher | None = None
        self._started_unix = time.time()
        self._lock = threading.Lock()

    # ---- model warm-up ----------------------------------------------------

    def _training_set(self) -> tuple[list[PatchRecord], list[int]]:
        """The natural (non-synthetic) records and their labels."""
        natural = [r for r in self._records if r.source != "synthetic"]
        return natural, [int(r.is_security) for r in natural]

    def warm(self) -> dict:
        """Fit or load the classify model and start the batch worker.

        The model is keyed by the sha256 of the served training set (sorted
        ``(sha, label)`` pairs) plus :data:`MODEL_CONFIG`, so a cache hit is
        guaranteed to be the fit this exact dataset would produce; on a hit
        no feature extraction or training happens at all.  Returns a
        warm-up summary for the startup log and the manifest.
        """
        natural, labels = self._training_set()
        if not natural:
            raise ReproError("cannot warm the classify model: dataset has no natural records")
        key = training_key([r.patch.sha for r in natural], labels, MODEL_CONFIG)
        before = len(self.models)

        def fit() -> RandomForestClassifier:
            X = np.vstack([extract_features(r.patch) for r in natural])
            y = np.array(labels)
            model = RandomForestClassifier(
                n_estimators=MODEL_CONFIG["n_estimators"],
                max_depth=MODEL_CONFIG["max_depth"],
                seed=self.ew.seed,
                obs=self.obs,
            )
            model.fit(X, y)
            return model

        start = time.perf_counter()
        model = self.models.get_or_fit(key, fit)
        with self._lock:
            self._model = model
            self._model_key = key
            self._model_was_cached = len(self.models) == before
            if self._batcher is not None:
                self._batcher.close()
            self._batcher = ClassifyBatcher(
                model.decision_scores,
                max_batch=self._max_batch,
                max_wait_s=self._batch_wait_s,
                obs=self._router,
            )
        return {
            "model_key": key,
            "cached": self._model_was_cached,
            "n_train": len(natural),
            "warm_s": round(time.perf_counter() - start, 3),
        }

    @property
    def model_key(self) -> str | None:
        """The training-set sha key of the active model (None before warm)."""
        return self._model_key

    def close(self) -> None:
        """Stop the classify worker (idempotent)."""
        with self._lock:
            if self._batcher is not None:
                self._batcher.close()
                self._batcher = None

    # ---- query ------------------------------------------------------------

    def query(self, query: PatchQuery, include_patch: bool = False) -> dict:
        """The paginated query endpoint: metadata rows + match accounting.

        Both the match count and the page come from the dataset's
        posting-list index (O(smallest posting list), not O(N)); requested
        patch text is served from the render-once cache.
        """
        with self._router.timer("serve.query"), trace_span(
            "service.query", include_patch=include_patch
        ):
            with trace_span("query.count"):
                total = self.db.count(query)
            with trace_span("query.page"):
                rows = [
                    _record_meta(
                        r,
                        include_patch,
                        patch_text=self.db.record_mbox(r) if include_patch else None,
                    )
                    for r in self.db.records(query)
                ]
        return {
            "query": query.to_dict(),
            "total_matching": total,
            "count": len(rows),
            "records": rows,
        }

    def query_stream(self, query: PatchQuery) -> Iterator[str]:
        """Matching records as JSONL lines (full ``git format-patch`` text).

        The same one-record-at-a-time shape as
        :meth:`~repro.core.patchdb.PatchDB.write_jsonl`, so arbitrarily
        large responses stream in constant memory on the wire; each line
        renders at most once ever (the render cache is shared with
        :meth:`query` and :meth:`~repro.core.patchdb.PatchDB.save_jsonl`),
        so repeated streams of the same records cost bytes-out only.
        """
        for record in self.db.records(query):
            yield self.db.record_json(record) + "\n"

    # ---- classify ---------------------------------------------------------

    def classify(self, patch_text: str, batched: bool = True) -> dict:
        """Feature-extract + categorize + lint + model-classify one patch.

        Args:
            patch_text: a ``git format-patch``/unified-diff body.
            batched: route the prediction through the micro-batch worker
                (the HTTP path); ``False`` predicts inline — results are
                bit-identical, which the parity tests assert.

        Raises:
            ReproError: unparsable patch (HTTP 400) or un-warmed service.
        """
        with self._lock:
            model, batcher = self._model, self._batcher
        if model is None:
            raise ReproError("service is not warmed: no classify model loaded")
        with self._router.timer("serve.classify"), trace_span("service.classify"):
            with trace_span("patch.parse"):
                patch = parse_patch(patch_text)
            with trace_span("features.extract"):
                vec = extract_features(patch)
            if batched and batcher is not None:
                # The worker thread attaches the model.predict child span
                # to this trace via the site captured in submit().
                with trace_span("classify.batch"):
                    prob = batcher.submit(vec).result(timeout=30.0)
            else:
                with trace_span("model.predict", batched=False):
                    prob = float(model.decision_scores(vec[np.newaxis, :])[0])
            with trace_span("categorize"):
                pattern = categorize_patch(patch)
            with trace_span("lint.patch"):
                lint = lint_patch(patch, obs=self._router)
        findings = lint.findings()
        return {
            "sha": patch.sha,
            "subject": patch.subject,
            "files_changed": len(patch.files),
            "is_security": bool(prob >= 0.5),
            "security_probability": prob,
            "pattern_type": pattern,
            "pattern_name": PATTERN_NAMES[pattern],
            "lint": {
                "n_findings": len(findings),
                "by_checker": lint.counts_by_checker(),
                "findings": [f.render() for f in findings[:25]],
            },
            "features": {
                name: float(v)
                for name, v in zip(FEATURE_NAMES, vec)
                if v != 0
            },
            "model_key": self._model_key,
        }

    # ---- lint -------------------------------------------------------------

    def lint(self, patch_text: str) -> dict:
        """Run the static-analysis suite over one patch's post-image.

        Unlike :meth:`classify` this needs no warmed model — it is pure
        analysis, usable the moment the service is constructed.  Findings
        carry their stable ids so callers can build ``lint --baseline``
        files straight from the endpoint.

        Raises:
            ReproError: unparsable patch (HTTP 400).
        """
        with self._router.timer("serve.lint"), trace_span("service.lint"):
            self._router.add("lint.request")
            with trace_span("patch.parse"):
                patch = parse_patch(patch_text)
            with trace_span("lint.patch"):
                report = lint_patch(patch, obs=self._router)
        findings = report.findings()
        self._router.add("lint.findings", len(findings))
        return {
            "sha": patch.sha,
            "subject": patch.subject,
            "files_changed": len(patch.files),
            "n_findings": len(findings),
            "by_checker": report.counts_by_checker(),
            "findings": [f.to_dict() for f in findings],
        }

    # ---- observability ----------------------------------------------------

    def healthz(self) -> dict:
        """Liveness: records served, model state, uptime, rolling latency.

        The per-endpoint block (p50/p95/p99 over the shard windows, exact
        request counts and error rates) comes from the telemetry stats
        cache, so polling ``/healthz`` at high rate pays the shard merge
        at most twice a second.
        """
        out = {
            "status": "ok",
            "records": len(self._records),
            "model_warm": self._model is not None,
            "uptime_s": round(time.time() - self._started_unix, 3),
        }
        if self.telemetry.enabled:
            out["endpoints"] = self.telemetry.endpoint_stats()
        return out

    def summary(self) -> dict:
        """The dataset's headline counts (the ``stats`` CLI view)."""
        return {"summary": self.db.summary()}

    def manifest(self) -> dict:
        """The run manifest of the served world + serving identity."""
        return self.ew.manifest(
            command="serve",
            records=len(self._records),
            model_key=self._model_key,
            model_cached=self._model_was_cached,
        )

    def statsz(self) -> dict:
        """Machine-readable telemetry: merged registry + service identity.

        The payload folds the base registry (build/warm history) together
        with every live shard, so counters here are exactly what a single
        globally-locked registry would have recorded, plus the rolling
        per-endpoint latency table and trace-store occupancy.
        """
        if self.telemetry.enabled:
            merged = self.telemetry.merged(self.obs)
            payload = merged.to_dict()
            payload["endpoints"] = self.telemetry.endpoint_stats(merged)
            payload["traces"] = self.telemetry.traces.info()
        else:
            payload = self.obs.to_dict()
        payload["service"] = self.healthz()
        return payload

    def metrics_text(self) -> str:
        """The Prometheus text exposition served on ``/metrics``."""
        gauges = {
            "records": float(len(self._records)),
            "model_warm": 1.0 if self._model is not None else 0.0,
            "model_cached": 1.0 if self._model_was_cached else 0.0,
        }
        return self.telemetry.metrics_text(base=self.obs, gauges=gauges)

    def traces_jsonl(self, trace_id: str | None = None) -> str:
        """Sampled request traces as ``repro-run-manifest-v1`` JSONL.

        Optionally filtered to one trace id; the output feeds straight
        into ``python -m repro trace`` (via ``--url`` or a saved file).
        """
        store = self.telemetry.traces
        entries = store.entries()
        if trace_id:
            entries = [e for e in entries if e.trace.trace_id == trace_id]
        return store.export_jsonl(
            entries,
            manifest={"records": len(self._records), "model_key": self._model_key},
        )

    def counter(self, name: str) -> int:
        """One counter's merged value across the base registry and every
        telemetry shard (what ``/statsz`` would report for it)."""
        return self.obs.count(name) + self.telemetry.router.count(name)

    def record_request(
        self,
        endpoint: str,
        status: int,
        elapsed_s: float,
        trace: TraceContext | None = None,
    ) -> None:
        """Fold one HTTP request into the calling thread's telemetry shard
        (no cross-thread locking; merged reads are bit-identical to the
        old single-lock registry) and sample its trace into the store."""
        self.telemetry.record_request(endpoint, status, elapsed_s, trace=trace)
