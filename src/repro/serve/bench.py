"""Load generator for the serve layer: sustained req/s and p50/p95 latency.

Drives a running server (any URL — in-process or remote) with concurrent
stdlib ``urllib`` clients, one endpoint at a time, and reports per-endpoint
sustained request rate and nearest-rank latency quantiles (the same
estimator :func:`repro.obs.histogram_stats` uses everywhere else).  The CLI
``bench-serve`` subcommand and the CI ``serve-smoke`` job both run this and
write the results as ``BENCH_serve.json``; any 5xx (or transport error)
fails the smoke run.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from ..obs import histogram_stats

__all__ = [
    "BenchEndpoint",
    "EndpointResult",
    "default_endpoints",
    "selective_endpoints",
    "run_load",
    "run_overhead",
    "write_bench",
]


@dataclass(frozen=True, slots=True)
class BenchEndpoint:
    """One endpoint under load.

    Attributes:
        name: result key (``query``, ``classify``, …).
        path: URL path + query string, joined to the base URL.
        method: HTTP method.
        body: request body for POST endpoints.
    """

    name: str
    path: str
    method: str = "GET"
    body: str | None = None


@dataclass(slots=True)
class EndpointResult:
    """Aggregated outcome of one endpoint's load phase."""

    name: str
    requests: int = 0
    errors: int = 0
    status_counts: dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def req_per_s(self) -> float:
        """Sustained completed-request rate over the phase."""
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def n_5xx(self) -> int:
        """Server-error responses observed."""
        return sum(n for code, n in self.status_counts.items() if code.startswith("5"))

    def to_dict(self) -> dict:
        """JSON-ready row of ``BENCH_serve.json``."""
        stats = histogram_stats(self.latencies_s)
        return {
            "endpoint": self.name,
            "requests": self.requests,
            "errors": self.errors,
            "status_counts": dict(sorted(self.status_counts.items())),
            "duration_s": round(self.duration_s, 4),
            "req_per_s": round(self.req_per_s, 2),
            "latency_ms": {
                "p50": round(stats.get("p50", 0.0) * 1000, 3),
                "p95": round(stats.get("p95", 0.0) * 1000, 3),
                "max": round(stats.get("max", 0.0) * 1000, 3),
                "mean": round(stats.get("mean", 0.0) * 1000, 3),
            },
        }


def default_endpoints(classify_body: str | None = None) -> list[BenchEndpoint]:
    """The standard load mix: paged query, filtered query, JSONL stream,
    manifest, health, and (when a patch body is supplied) classify."""
    endpoints = [
        BenchEndpoint("healthz", "/healthz"),
        BenchEndpoint("query", "/v1/patches?limit=20"),
        BenchEndpoint("query_filtered", "/v1/patches?is_security=1&limit=20"),
        BenchEndpoint("stream", "/v1/patches.jsonl?limit=50"),
        BenchEndpoint("manifest", "/v1/manifest"),
    ]
    if classify_body is not None:
        endpoints.append(BenchEndpoint("classify", "/v1/classify", "POST", classify_body))
    return endpoints


def selective_endpoints(base_url: str) -> list[BenchEndpoint]:
    """The selective-filter load mix: queries the posting-list index serves.

    Samples one real record from the running server and builds the
    high-selectivity phases around its field values — a ``repo`` slug
    query, a ``sha`` point lookup, a ``pattern_type`` filter, a ``cve_id``
    point lookup (when the record carries one), and a selective JSONL
    stream.  Every phase would be a full scan without the index; with it,
    each request costs O(smallest posting list).  Returns ``[]`` when no
    record could be sampled (empty dataset or unreachable server).
    """
    url = f"{base_url.rstrip('/')}/v1/patches.jsonl?limit=1"
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            line = resp.readline().decode("utf-8")
        record = json.loads(line) if line.strip() else None
    except Exception:
        return []
    if not record:
        return []
    repo_q = urllib.parse.quote(record.get("repo") or "", safe="")
    sha_q = urllib.parse.quote(record.get("sha") or "", safe="")
    endpoints = [
        BenchEndpoint("query_repo", f"/v1/patches?repo={repo_q}&limit=20"),
        BenchEndpoint("query_sha", f"/v1/patches?sha={sha_q}"),
        BenchEndpoint("query_pattern", "/v1/patches?is_security=1&pattern_type=1&limit=20"),
        BenchEndpoint("stream_repo", f"/v1/patches.jsonl?repo={repo_q}&limit=50"),
    ]
    cve_id = record.get("cve_id")
    if cve_id:
        cve_q = urllib.parse.quote(cve_id, safe="")
        endpoints.insert(2, BenchEndpoint("query_cve", f"/v1/patches?cve_id={cve_q}"))
    return endpoints


def sample_patch_text(base_url: str) -> str | None:
    """A natural record's full patch text, fetched from the server itself
    (feeds the classify phase of the load mix)."""
    url = f"{base_url.rstrip('/')}/v1/patches.jsonl?source=nvd&limit=1"
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            line = resp.readline().decode("utf-8")
        return json.loads(line)["patch_text"] if line.strip() else None
    except Exception:
        return None


def _hit(base_url: str, ep: BenchEndpoint, result: EndpointResult, lock: threading.Lock) -> None:
    data = ep.body.encode("utf-8") if ep.body is not None else None
    req = urllib.request.Request(
        f"{base_url.rstrip('/')}{ep.path}", data=data, method=ep.method
    )
    if data is not None:
        req.add_header("Content-Type", "text/x-patch")
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            resp.read()
            status = resp.status
    except urllib.error.HTTPError as exc:
        status = exc.code
    except Exception:
        status = None
    elapsed = time.perf_counter() - start
    with lock:
        result.requests += 1
        result.latencies_s.append(elapsed)
        if status is None:
            result.errors += 1
        else:
            key = str(status)
            result.status_counts[key] = result.status_counts.get(key, 0) + 1


def run_load(
    base_url: str,
    endpoints: list[BenchEndpoint] | None = None,
    duration_s: float = 3.0,
    concurrency: int = 4,
) -> list[EndpointResult]:
    """Drive every endpoint for *duration_s* with *concurrency* threads.

    Endpoints run one after another (not interleaved) so each row's req/s
    measures that endpoint alone.  Returns one result per endpoint.
    """
    if endpoints is None:
        classify_body = sample_patch_text(base_url)
        endpoints = default_endpoints(classify_body)
    results = []
    for ep in endpoints:
        result = EndpointResult(name=ep.name)
        lock = threading.Lock()
        deadline = time.monotonic() + duration_s

        def worker() -> None:
            while time.monotonic() < deadline:
                _hit(base_url, ep, result, lock)

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(concurrency)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        result.duration_s = time.perf_counter() - start
        results.append(result)
    return results


def run_overhead(
    server_factory,
    reps: int = 3,
    duration_s: float = 1.0,
    concurrency: int = 4,
    endpoints: list[BenchEndpoint] | None = None,
) -> dict:
    """Paired telemetry-on/off load runs; the tracing+metrics cost as a ratio.

    *server_factory* is called with ``enabled: bool`` and must return
    ``(base_url, cleanup)`` for a server whose telemetry is on or off;
    each of *reps* repetitions runs the same endpoint mix against both,
    back to back, so machine drift hits both sides of every pair.  Which
    mode goes first **alternates per rep** — whoever runs first in a pair
    pays the colder OS/allocator state, so a fixed order would bias the
    ratio — and each server gets a short discarded warm-up pass (render
    cache, index memo, first-GC effects) before its measured window.  The
    headline number is the **median of per-(endpoint, rep) mean-latency
    ratios** — the same robust estimator the batch obs-overhead benchmark
    uses — reported as ``overhead`` (ratio − 1; 0.01 = 1% slower with
    telemetry on).

    Returns the JSON-ready payload of ``BENCH_serve_obs.json``.
    """
    per_endpoint: dict[str, dict[str, list[float]]] = {}
    for rep in range(max(1, reps)):
        order = (("on_ms", True), ("off_ms", False))
        if rep % 2:
            order = tuple(reversed(order))
        for mode, enabled in order:
            base_url, cleanup = server_factory(enabled)
            try:
                eps = endpoints
                if eps is None:
                    eps = default_endpoints(sample_patch_text(base_url))
                run_load(  # discarded warm-up pass
                    base_url,
                    eps,
                    duration_s=min(0.25, duration_s),
                    concurrency=concurrency,
                )
                results = run_load(
                    base_url, eps, duration_s=duration_s, concurrency=concurrency
                )
            finally:
                cleanup()
            for r in results:
                mean = sum(r.latencies_s) / len(r.latencies_s) if r.latencies_s else 0.0
                slot = per_endpoint.setdefault(r.name, {"on_ms": [], "off_ms": []})
                slot[mode].append(round(mean * 1e3, 4))
    ratios = []
    for name, slot in per_endpoint.items():
        for on_ms, off_ms in zip(slot["on_ms"], slot["off_ms"]):
            if on_ms > 0 and off_ms > 0:
                ratios.append(round(on_ms / off_ms, 4))
    ratios.sort()
    median = ratios[len(ratios) // 2] if ratios else 1.0
    return {
        "format": "repro-bench-serve-obs-v1",
        "reps": reps,
        "duration_s": duration_s,
        "concurrency": concurrency,
        "per_endpoint": {name: per_endpoint[name] for name in sorted(per_endpoint)},
        "ratios": ratios,
        "median_ratio": median,
        "overhead": round(median - 1.0, 4),
    }


def write_bench(
    path: str | Path,
    results: list[EndpointResult],
    meta: dict | None = None,
) -> Path:
    """Write ``BENCH_serve.json``: one row per endpoint + run metadata."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": "repro-bench-serve-v1",
        "created_unix": time.time(),
        "meta": meta or {},
        "endpoints": [r.to_dict() for r in results],
        "total_requests": sum(r.requests for r in results),
        "total_5xx": sum(r.n_5xx for r in results),
        "total_errors": sum(r.errors for r in results),
    }
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def render_results(results: list[EndpointResult]) -> str:
    """Human-readable per-endpoint table for the CLI."""
    out = [
        f"{'endpoint':<16s} {'req':>6s} {'req/s':>8s} {'p50 ms':>8s} "
        f"{'p95 ms':>8s} {'max ms':>8s} {'5xx':>4s} {'err':>4s}"
    ]
    for r in results:
        row = r.to_dict()
        lat = row["latency_ms"]
        out.append(
            f"{r.name:<16s} {r.requests:>6d} {row['req_per_s']:>8.1f} "
            f"{lat['p50']:>8.2f} {lat['p95']:>8.2f} {lat['max']:>8.2f} "
            f"{r.n_5xx:>4d} {r.errors:>4d}"
        )
    return "\n".join(out)
