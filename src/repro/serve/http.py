"""The stdlib HTTP layer over :class:`~repro.serve.service.PatchDBService`.

A :class:`ThreadingHTTPServer` (one thread per connection, no new
dependencies) translating routes to service methods:

====================  ======  ==================================================
``/healthz``          GET     liveness + model state
``/statsz``           GET     obs registry summary (timers/counters/histograms)
``/v1/manifest``      GET     run manifest of the served world
``/v1/summary``       GET     dataset headline counts
``/v1/patches``       GET     paginated metadata query (``PatchQuery`` params)
``/v1/patches.jsonl`` GET     streaming JSONL of full records (same params)
``/v1/classify``      POST    ``.patch`` body -> features+categorize+lint+model
``/v1/lint``          POST    ``.patch`` body -> findings JSON with stable ids
====================  ======  ==================================================

Query strings parse into the same :class:`~repro.core.query.PatchQuery`
the library uses, so HTTP filters cannot drift from the programmatic API;
parse errors surface as JSON 400s.  The JSONL endpoint writes one record
per line as it is produced (the connection close delimits the stream), so
responses of any size run in constant memory at both ends.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from ..errors import ReproError
from ..core.query import PatchQuery, QueryError
from .service import PatchDBService

__all__ = ["PatchDBServer", "make_server"]

#: Largest accepted POST request body (a .patch file), in bytes.
MAX_BODY_BYTES = 4 * 1024 * 1024


class PatchDBServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`PatchDBService`."""

    daemon_threads = True
    #: Lets tests and the CLI bind port 0 and restart quickly.
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: PatchDBService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def make_server(
    service: PatchDBService, host: str = "127.0.0.1", port: int = 0
) -> PatchDBServer:
    """Bind a server for *service*; ``port=0`` picks a free port.

    The caller drives ``serve_forever()`` (the CLI does so on the main
    thread; tests run it on a daemon thread and ``shutdown()`` it).
    """
    return PatchDBServer((host, port), service)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"

    # ---- plumbing ---------------------------------------------------------

    @property
    def service(self) -> PatchDBService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        """Per-request stderr logging is obs's job, not the socket layer's."""

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _finish(self, endpoint: str, status: int, started: float) -> None:
        self.service.record_request(endpoint, status, time.perf_counter() - started)

    def _query(self, raw_query: str) -> PatchQuery:
        params = dict(parse_qsl(raw_query, keep_blank_values=True))
        include = params.pop("include_patch", "")
        query = PatchQuery.from_params(params)
        self._include_patch = include.strip().lower() in ("1", "true", "yes", "on")
        return query

    # ---- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler protocol
        started = time.perf_counter()
        url = urlsplit(self.path)
        route = url.path.rstrip("/") or "/"
        endpoint = {
            "/healthz": "healthz",
            "/statsz": "statsz",
            "/v1/manifest": "manifest",
            "/v1/summary": "summary",
            "/v1/patches": "query",
            "/v1/patches.jsonl": "stream",
        }.get(route)
        if endpoint is None:
            self._send_json(404, {"error": f"no such endpoint: {url.path}"})
            self._finish("unknown", 404, started)
            return
        status = 200
        try:
            if endpoint == "healthz":
                self._send_json(200, self.service.healthz())
            elif endpoint == "statsz":
                self._send_json(200, self.service.statsz())
            elif endpoint == "manifest":
                self._send_json(200, self.service.manifest())
            elif endpoint == "summary":
                self._send_json(200, self.service.summary())
            elif endpoint == "query":
                query = self._query(url.query)
                self._send_json(200, self.service.query(query, self._include_patch))
            else:  # stream
                query = self._query(url.query)
                self._stream_jsonl(query)
        except QueryError as exc:
            status = 400
            self._send_json(status, {"error": str(exc)})
        except BrokenPipeError:
            status = 499  # client went away mid-stream; nothing to send
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            status = 500
            try:
                self._send_json(status, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass
        self._finish(endpoint, status, started)

    #: POST routes: endpoint name + the service method the body goes to.
    _POST_ROUTES = {
        "/v1/classify": ("classify", "classify"),
        "/v1/lint": ("lint", "lint"),
    }

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler protocol
        started = time.perf_counter()
        route = urlsplit(self.path).path.rstrip("/")
        entry = self._POST_ROUTES.get(route)
        if entry is None:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            self._finish("unknown", 404, started)
            return
        endpoint, method = entry
        status = 200
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise QueryError(f"{endpoint} requires a non-empty .patch request body")
            if length > MAX_BODY_BYTES:
                raise QueryError(f"request body exceeds {MAX_BODY_BYTES} bytes")
            body = self.rfile.read(length).decode("utf-8", errors="replace")
            self._send_json(200, getattr(self.service, method)(body))
        except QueryError as exc:
            status = 400
            self._send_json(status, {"error": str(exc)})
        except ReproError as exc:
            # Unparsable patch, un-warmed model: the request is at fault.
            status = 400
            self._send_json(status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            status = 500
            try:
                self._send_json(status, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass
        self._finish(endpoint, status, started)

    # ---- streaming --------------------------------------------------------

    def _stream_jsonl(self, query: PatchQuery) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        for line in self.service.query_stream(query):
            self.wfile.write(line.encode("utf-8"))
        self.wfile.flush()
