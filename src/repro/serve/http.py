"""The stdlib HTTP layer over :class:`~repro.serve.service.PatchDBService`.

A :class:`ThreadingHTTPServer` (one thread per connection, no new
dependencies) translating routes to service methods:

====================  ======  ==================================================
``/healthz``          GET     liveness + model state + rolling endpoint latency
``/statsz``           GET     merged obs summary (timers/counters/histograms)
``/metrics``          GET     Prometheus text exposition (format 0.0.4)
``/v1/manifest``      GET     run manifest of the served world
``/v1/summary``       GET     dataset headline counts
``/v1/patches``       GET     paginated metadata query (``PatchQuery`` params)
``/v1/patches.jsonl`` GET     streaming JSONL of full records (same params)
``/v1/traces``        GET     sampled request traces as run-manifest JSONL
``/v1/classify``      POST    ``.patch`` body -> features+categorize+lint+model
``/v1/lint``          POST    ``.patch`` body -> findings JSON with stable ids
====================  ======  ==================================================

Query strings parse into the same :class:`~repro.core.query.PatchQuery`
the library uses, so HTTP filters cannot drift from the programmatic API;
parse errors surface as JSON 400s.  The JSONL endpoint writes one record
per line as it is produced (the connection close delimits the stream), so
responses of any size run in constant memory at both ends.

Every request gets a trace: the handler adopts a well-formed
``X-Repro-Trace-Id`` request header (or generates an id), opens the root
``http.<endpoint>`` span, and activates it for the handler thread so the
service/index/model spans below parent correctly.  The id is echoed in
the ``X-Repro-Trace-Id`` response header on **every** response — 200s,
400s, 404s, 500s, and streams — so callers can always correlate a
response with its sampled trace on ``/v1/traces``.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from ..errors import ReproError
from ..core.query import PatchQuery, QueryError
from ..obs import activate_trace, deactivate_trace, trace_span
from .service import PatchDBService

__all__ = ["PatchDBServer", "make_server", "TRACE_HEADER"]

#: Request/response header carrying the request's trace id.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Largest accepted POST request body (a .patch file), in bytes.
MAX_BODY_BYTES = 4 * 1024 * 1024


class PatchDBServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`PatchDBService`."""

    daemon_threads = True
    #: Lets tests and the CLI bind port 0 and restart quickly.
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: PatchDBService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def make_server(
    service: PatchDBService, host: str = "127.0.0.1", port: int = 0
) -> PatchDBServer:
    """Bind a server for *service*; ``port=0`` picks a free port.

    The caller drives ``serve_forever()`` (the CLI does so on the main
    thread; tests run it on a daemon thread and ``shutdown()`` it).
    """
    return PatchDBServer((host, port), service)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"

    # ---- plumbing ---------------------------------------------------------

    @property
    def service(self) -> PatchDBService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        """Per-request stderr logging is obs's job, not the socket layer's."""

    def _send_trace_header(self) -> None:
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header(TRACE_HEADER, trace_id)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._record_outcome(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self._send_trace_header()
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._record_outcome(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self._send_trace_header()
        self.end_headers()
        self.wfile.write(body)

    def _begin(self, endpoint: str, method: str) -> float:
        """Open this request's trace (adopting the inbound header id if
        well-formed) and activate it on the handler thread.  Returns the
        perf-counter start time."""
        self._endpoint = endpoint
        self._recorded = False
        self._trace = None
        self._trace_token = None
        self._root_span = None
        self._trace_id = None
        trace = self.service.telemetry.new_trace(self.headers.get(TRACE_HEADER))
        if trace is not None:
            self._trace = trace
            self._trace_id = trace.trace_id
            root = trace.start_span(f"http.{endpoint}", method=method, path=self.path[:200])
            self._root_span = root
            self._trace_token = activate_trace(trace, root.span_id if root else None)
        self._started = time.perf_counter()
        return self._started

    def _record_outcome(self, status: int) -> None:
        """Fold this request into telemetry exactly once.

        Called just *before* the response bytes go out (from ``_send_json``
        / ``_send_text``), so a client that has received a response always
        finds it counted in a subsequent ``/statsz`` read — no racing the
        handler thread.  The ``_finish`` call at the end of each ``do_*``
        is the fallback for paths that never sent a body (broken pipes,
        streams, send failures) and is a no-op when already recorded.
        """
        if getattr(self, "_recorded", True):
            return
        self._recorded = True
        trace = self._trace
        if trace is not None:
            if self._root_span is not None:
                self._root_span.attributes["status"] = status
                trace.end_span(self._root_span)
            deactivate_trace(self._trace_token)
            self._trace = None
            self._trace_token = None
            self._root_span = None
        self.service.record_request(
            self._endpoint, status, time.perf_counter() - self._started, trace=trace
        )

    def _finish(self, endpoint: str, status: int, started: float) -> None:
        self._record_outcome(status)

    def _query(self, raw_query: str) -> PatchQuery:
        params = dict(parse_qsl(raw_query, keep_blank_values=True))
        include = params.pop("include_patch", "")
        query = PatchQuery.from_params(params)
        self._include_patch = include.strip().lower() in ("1", "true", "yes", "on")
        return query

    # ---- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler protocol
        url = urlsplit(self.path)
        route = url.path.rstrip("/") or "/"
        endpoint = {
            "/healthz": "healthz",
            "/statsz": "statsz",
            "/metrics": "metrics",
            "/v1/manifest": "manifest",
            "/v1/summary": "summary",
            "/v1/patches": "query",
            "/v1/patches.jsonl": "stream",
            "/v1/traces": "traces",
        }.get(route)
        started = self._begin(endpoint or "unknown", "GET")
        if endpoint is None:
            self._send_json(404, {"error": f"no such endpoint: {url.path}"})
            self._finish("unknown", 404, started)
            return
        status = 200
        try:
            if endpoint == "healthz":
                self._send_json(200, self.service.healthz())
            elif endpoint == "statsz":
                self._send_json(200, self.service.statsz())
            elif endpoint == "metrics":
                self._send_text(
                    200,
                    self.service.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif endpoint == "traces":
                params = dict(parse_qsl(url.query, keep_blank_values=True))
                self._send_text(
                    200,
                    self.service.traces_jsonl(params.get("trace_id") or None),
                    "application/x-ndjson",
                )
            elif endpoint == "manifest":
                self._send_json(200, self.service.manifest())
            elif endpoint == "summary":
                self._send_json(200, self.service.summary())
            elif endpoint == "query":
                query = self._query(url.query)
                self._send_json(200, self.service.query(query, self._include_patch))
            else:  # stream
                query = self._query(url.query)
                self._stream_jsonl(query)
        except QueryError as exc:
            status = 400
            self._send_json(status, {"error": str(exc)})
        except BrokenPipeError:
            status = 499  # client went away mid-stream; nothing to send
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            status = 500
            try:
                self._send_json(status, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass
        self._finish(endpoint, status, started)

    #: POST routes: endpoint name + the service method the body goes to.
    _POST_ROUTES = {
        "/v1/classify": ("classify", "classify"),
        "/v1/lint": ("lint", "lint"),
    }

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler protocol
        route = urlsplit(self.path).path.rstrip("/")
        entry = self._POST_ROUTES.get(route)
        started = self._begin(entry[0] if entry else "unknown", "POST")
        if entry is None:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            self._finish("unknown", 404, started)
            return
        endpoint, method = entry
        status = 200
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise QueryError(f"{endpoint} requires a non-empty .patch request body")
            if length > MAX_BODY_BYTES:
                raise QueryError(f"request body exceeds {MAX_BODY_BYTES} bytes")
            body = self.rfile.read(length).decode("utf-8", errors="replace")
            self._send_json(200, getattr(self.service, method)(body))
        except QueryError as exc:
            status = 400
            self._send_json(status, {"error": str(exc)})
        except ReproError as exc:
            # Unparsable patch, un-warmed model: the request is at fault.
            status = 400
            self._send_json(status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            status = 500
            try:
                self._send_json(status, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass
        self._finish(endpoint, status, started)

    # ---- streaming --------------------------------------------------------

    def _stream_jsonl(self, query: PatchQuery) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self._send_trace_header()
        self.end_headers()
        with trace_span("service.stream") as sp:
            n = 0
            for line in self.service.query_stream(query):
                self.wfile.write(line.encode("utf-8"))
                n += 1
            if sp is not None:
                sp.attributes["records"] = n
        self.wfile.flush()
