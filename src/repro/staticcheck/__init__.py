"""Visitor-based static analysis over corpus files, patches, and synthesis
output.

The framework plays three roles in the reproduction (§III of the paper
assumes its inputs are well-formed; this package *checks* that):

* **Validation gate** (:mod:`~repro.staticcheck.gate`) — every corpus file
  must parse, no ``_SYS_`` scaffold identifier may leak outside synthesis
  output, no condition may carry side effects, and every Fig. 5 variant
  must be CFG-equivalent to its original after descaffolding.
* **Feature channel** (:mod:`~repro.staticcheck.delta`) — per-patch
  removed/introduced finding counts form a 16-dim extension block over the
  60-dim Table I vector, evaluated in a Table VI-style ablation.
* **CLI surface** — ``python -m repro lint`` runs the suite over a world,
  a ``.jsonl`` dataset, or a directory of ``.patch`` files, serially or in
  a chunked process pool, and emits text or JSON reports.

Checkers work on the :mod:`repro.lang` AST where the parser models the
code, and fall back to token-level analysis inside opaque regions, so
coverage does not stop at the parser's limits.
"""

from .analyzer import (
    CODE_SUFFIXES,
    analyze_source,
    lint_patch,
    lint_sources,
    lint_world,
    patch_fragments,
)
from .checkers import CHECKER_IDS, Checker, make_checkers
from .delta import (
    DELTA_FEATURE_COUNT,
    DELTA_FEATURE_NAMES,
    CheckerDeltaCache,
    extend_matrix,
)
from .equivalence import cfg_equivalent, cfg_signature, descaffolded_signature
from .gate import GateResult, run_gate
from .model import FileReport, Finding, LintReport, Severity, shifted_finding_ids
from .seeding import (
    DATAFLOW_FP_CHECKERS,
    FP_OPAQUE_FIXTURE,
    OPAQUE_FIXTURE,
    PAYLOAD_MARKERS,
    SEEDABLE_CHECKERS,
    inject_false_positive,
    inject_violation,
    plant_violation,
    score_fixtures,
    seed_all,
    seed_false_positives,
)

__all__ = [
    "CHECKER_IDS",
    "CODE_SUFFIXES",
    "Checker",
    "CheckerDeltaCache",
    "DATAFLOW_FP_CHECKERS",
    "DELTA_FEATURE_COUNT",
    "DELTA_FEATURE_NAMES",
    "FP_OPAQUE_FIXTURE",
    "FileReport",
    "Finding",
    "GateResult",
    "LintReport",
    "OPAQUE_FIXTURE",
    "PAYLOAD_MARKERS",
    "SEEDABLE_CHECKERS",
    "Severity",
    "analyze_source",
    "cfg_equivalent",
    "cfg_signature",
    "descaffolded_signature",
    "extend_matrix",
    "inject_false_positive",
    "inject_violation",
    "lint_patch",
    "lint_sources",
    "lint_world",
    "make_checkers",
    "patch_fragments",
    "plant_violation",
    "run_gate",
    "score_fixtures",
    "seed_all",
    "seed_false_positives",
    "shifted_finding_ids",
]
