"""The per-file analysis context shared by every checker.

One :class:`CheckContext` is built per file: the source is lexed once and
parsed once, and derived views (conditions, per-function token slices,
opaque-region metrics) are computed lazily and memoized.  Checkers consume
the context read-only, so a single pass over a file runs the whole suite
without re-lexing.

The parser is robust rather than complete: top-level constructs it does not
model are skipped as *opaque regions*.  The context exposes those regions
both as metrics (``code_lines``/``opaque_lines``) and through
``tokens`` — token-level checkers therefore still cover code the AST does
not, which is the "token-level fallback" half of the framework.
"""

from __future__ import annotations

from ..lang.ast_nodes import (
    DoWhileStmt,
    Expr,
    FunctionDef,
    IfStmt,
    Node,
    SwitchStmt,
    WhileStmt,
    walk,
)
from ..lang.lexer import code_tokens
from ..lang.parser import parse_translation_unit
from ..lang.tokens import Token
from .dataflow import FunctionFlow

__all__ = ["CondSite", "CheckContext"]


class CondSite:
    """One condition expression and where it came from.

    Attributes:
        kind: ``"if"``, ``"while"``, ``"do-while"``, ``"switch"``, or
            ``"for"`` (the middle clause of a ``for`` header).
        text: the condition's source text.
        line: 1-based line of the owning statement.
        function: enclosing function name.
    """

    __slots__ = ("kind", "text", "line", "function")

    def __init__(self, kind: str, text: str, line: int, function: str) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.function = function


class CheckContext:
    """Lazily computed per-file analysis state.

    Args:
        path: file path (used in findings and for suffix-based decisions).
        source: full file text.
        is_fragment: the source is a patch fragment, not a complete file;
            coverage metrics are advisory only and parse failures are not
            gate-class.
    """

    def __init__(self, path: str, source: str, is_fragment: bool = False) -> None:
        self.path = path
        self.source = source
        self.is_fragment = is_fragment
        self._tokens: list[Token] | None = None
        self._unit = None
        self._parse_attempted = False
        self.parse_error: str | None = None
        self._cond_sites: list[CondSite] | None = None
        self._coverage: tuple[int, int] | None = None
        self._fn_tokens: dict[int, list[Token]] | None = None
        self._flows: dict[int, FunctionFlow | None] | None = None

    # ---- lexing / parsing ---------------------------------------------

    @property
    def tokens(self) -> list[Token]:
        """Code tokens of the whole file (comments/preprocessor stripped)."""
        if self._tokens is None:
            self._tokens = code_tokens(self.source)
        return self._tokens

    @property
    def unit(self):
        """The parsed :class:`TranslationUnit`, or None on parse failure."""
        if not self._parse_attempted:
            self._parse_attempted = True
            try:
                self._unit = parse_translation_unit(self.source, self.path)
            except Exception as exc:  # robust mode: record, don't raise
                self.parse_error = f"{type(exc).__name__}: {exc}"
                self._unit = None
        return self._unit

    @property
    def functions(self) -> list[FunctionDef]:
        """Parsed function definitions (empty on parse failure)."""
        unit = self.unit
        return list(unit.functions) if unit is not None else []

    def function_at(self, line: int) -> str:
        """Name of the function whose span contains *line* ('' if none)."""
        for fn in self.functions:
            if fn.span_contains(line):
                return fn.name
        return ""

    def function_tokens(self, fn: FunctionDef) -> list[Token]:
        """The file's code tokens restricted to one function's line span."""
        if self._fn_tokens is None:
            self._fn_tokens = {}
        cached = self._fn_tokens.get(id(fn))
        if cached is None:
            cached = [t for t in self.tokens if fn.start_line <= t.line <= fn.end_line]
            self._fn_tokens[id(fn)] = cached
        return cached

    def flow(self, fn: FunctionDef) -> FunctionFlow | None:
        """Memoized dataflow facts for one parsed function.

        Returns None when CFG construction or an analysis fails on the
        function — checkers fall back to their heuristic answer rather
        than crashing, mirroring the robust-parse philosophy.
        """
        if self._flows is None:
            self._flows = {}
        key = id(fn)
        if key not in self._flows:
            try:
                self._flows[key] = FunctionFlow(fn)
            except Exception:  # robust mode: facts unavailable, not fatal
                self._flows[key] = None
        return self._flows[key]

    # ---- conditions ---------------------------------------------------

    def condition_sites(self) -> list[CondSite]:
        """Every condition expression in the file, in source order.

        Covers ``if``/``while``/``do-while``/``switch`` conditions plus the
        middle clause of well-formed ``for`` headers.
        """
        if self._cond_sites is not None:
            return self._cond_sites
        sites: list[CondSite] = []
        for fn in self.functions:
            for node in walk(fn):
                site = self._site_of(node, fn.name)
                if site is not None:
                    sites.append(site)
        sites.sort(key=lambda s: s.line)
        self._cond_sites = sites
        return sites

    @staticmethod
    def _site_of(node: Node, fn_name: str) -> CondSite | None:
        if isinstance(node, IfStmt):
            return CondSite("if", node.cond.text, node.start_line, fn_name)
        if isinstance(node, WhileStmt):
            return CondSite("while", node.cond.text, node.start_line, fn_name)
        if isinstance(node, DoWhileStmt):
            return CondSite("do-while", node.cond.text, node.start_line, fn_name)
        if isinstance(node, SwitchStmt):
            return CondSite("switch", node.cond.text, node.start_line, fn_name)
        from ..lang.ast_nodes import ForStmt

        if isinstance(node, ForStmt):
            clauses = node.clauses.split(";")
            if len(clauses) == 3:  # only well-formed headers have a test clause
                return CondSite("for", clauses[1].strip(), node.start_line, fn_name)
        return None

    # ---- parse coverage -----------------------------------------------

    def coverage(self) -> tuple[int, int]:
        """(code_lines, opaque_lines) for the file.

        A *code line* carries at least one code token; it is *opaque* when
        it lies outside every parsed function span — i.e. the recursive
        descent skipped it as a top-level construct it does not model.
        """
        if self._coverage is not None:
            return self._coverage
        code_line_numbers = {t.line for t in self.tokens}
        spans = [(fn.start_line, fn.end_line) for fn in self.functions]
        opaque = sum(
            1
            for line in code_line_numbers
            if not any(lo <= line <= hi for lo, hi in spans)
        )
        self._coverage = (len(code_line_numbers), opaque)
        return self._coverage

    @property
    def expr_nodes(self) -> list[Expr]:
        """All expression nodes in parsed functions."""
        return [n for fn in self.functions for n in walk(fn) if isinstance(n, Expr)]
