"""Seeded-violation and false-positive fixtures for the checker suite.

``inject_violation`` plants exactly one violation of a chosen checker class
into an existing (clean) source file; ``seed_all`` does so for every
checker.  The recall test lints each mutated file and asserts the matching
checker fires — a per-checker known-answer harness that keeps heuristic
drift honest: any future tightening of a checker that stops it catching its
canonical instance fails the suite immediately.

``inject_false_positive`` is the precision-side mirror: it plants a *clean*
statement block that merely looks like a violation of the chosen checker.
For the dataflow-upgraded checkers (:data:`DATAFLOW_FP_CHECKERS`) the
lookalike trips the token/AST heuristic but is vetoed by dataflow facts, so
:func:`score_fixtures` pins the precision gap between the two modes; for
the remaining checkers the lookalike is clean in both modes, documenting
the discrimination the heuristic already has.

Payloads are chosen to trip *their* checker without tripping the others,
so the tests can also assert precision on the injected line.
"""

from __future__ import annotations

from ..errors import StaticCheckError
from ..lang.parser import parse_translation_unit
from .analyzer import analyze_source
from .checkers import CHECKER_IDS, make_checkers
from .model import LintReport, shifted_finding_ids

__all__ = [
    "SEEDABLE_CHECKERS",
    "DATAFLOW_FP_CHECKERS",
    "OPAQUE_FIXTURE",
    "FP_OPAQUE_FIXTURE",
    "PAYLOAD_MARKERS",
    "inject_violation",
    "inject_false_positive",
    "plant_violation",
    "seed_all",
    "seed_false_positives",
    "score_fixtures",
]

#: One canonical violating statement block per checker (indented two levels
#: deep is fine anywhere inside a function body).
_PAYLOADS: dict[str, list[str]] = {
    "dangerous-api": ["    strcpy(seed_dst, seed_src);"],
    "missing-check": ["    seed_arr[seed_idx] = 0;"],
    "side-effect-cond": ["    if (seed_flag++) { seed_flag = 0; }"],
    "unreachable": ["    do { continue; seed_skip = 1; } while (0);"],
    "alloc-free": ["    char *seed_leak = malloc(8);"],
    "scaffold-leak": ["    int _SYS_SEED_leak = 0;"],
    "decl-use": ["    seed_late = 3;", "    int seed_late;"],
}

#: Checkers with an injectable in-function payload (all but parse-coverage,
#: which gets a standalone fixture file instead).
SEEDABLE_CHECKERS: tuple[str, ...] = tuple(
    c for c in CHECKER_IDS if c in _PAYLOADS
)

#: One identifier unique to each checker's payload.  The autofix oracle's
#: ground truth is "marker absent": a repair has removed the planted flaw
#: exactly when its marker no longer appears in the text.
PAYLOAD_MARKERS: dict[str, str] = {
    "dangerous-api": "seed_dst",
    "missing-check": "seed_arr",
    "side-effect-cond": "seed_flag",
    "unreachable": "seed_skip",
    "alloc-free": "seed_leak",
    "scaffold-leak": "_SYS_SEED_leak",
    "decl-use": "seed_late",
}

#: One clean-but-suspicious statement block per checker.  Each block is a
#: non-violation that resembles the checker's target pattern; the three
#: dataflow-upgraded checkers' blocks trip the heuristic mode only.
_FP_PAYLOADS: dict[str, list[str]] = {
    # memcpy with a sizeof-derived length is bounded.
    "dangerous-api": ["    memcpy(fp_dst, fp_src, sizeof(fp_dst));"],
    # Every definition reaching the index is a literal constant.
    "missing-check": [
        "    int fp_idx = 3;",
        "    fp_buf[fp_idx] = 0;",
    ],
    # sizeof is a keyword application, not a side-effecting call.
    "side-effect-cond": ["    if (sizeof(fp_sz) > 4) { fp_use = 1; }"],
    # The continue is branch-guarded; the following statement is reachable.
    "unreachable": ["    do { if (fp_u) { continue; } fp_u = 2; } while (0);"],
    # The pointer is re-pointed at a fresh allocation between the frees.
    "alloc-free": [
        "    char *fp_buf2 = malloc(4);",
        "    free(fp_buf2);",
        "    fp_buf2 = malloc(8);",
        "    free(fp_buf2);",
    ],
    # Contains the scaffold namespace as a substring without being in it.
    "scaffold-leak": ["    int fp_SYS_marker = 0;"],
    # The declaration reaches the use through the gotos despite line order.
    "decl-use": [
        "    int fp_r = 0;",
        "    goto fp_setup;",
        "fp_use:",
        "    fp_r = fp_late + 1;",
        "    goto fp_done;",
        "fp_setup:",
        "    int fp_late = 4;",
        "    goto fp_use;",
        "fp_done:",
        "    fp_r = fp_r + 1;",
    ],
}

#: Checkers whose false-positive payload trips the heuristic mode but is
#: vetoed by dataflow facts — the measurable precision win of the upgrade.
DATAFLOW_FP_CHECKERS: tuple[str, ...] = ("missing-check", "alloc-free", "decl-use")

#: A standalone file the parser models none of: every code line is opaque,
#: which is exactly what the parse-coverage checker reports.
OPAQUE_FIXTURE = (
    "__attribute__((packed)) struct seed_a { int x; };\n"
    "__attribute__((packed)) struct seed_b { int y; };\n"
    "__attribute__((packed)) struct seed_c { int z; };\n"
    "__attribute__((packed)) struct seed_d { int w; };\n"
    "__attribute__((packed)) struct seed_e { int v; };\n"
    "__attribute__((packed)) struct seed_f { int u; };\n"
)

#: The precision-side mirror of OPAQUE_FIXTURE: one opaque top-level region
#: in a file that is otherwise parsed, keeping the ratio under threshold.
FP_OPAQUE_FIXTURE = (
    "__attribute__((packed)) struct fp_a { int x; };\n"
    "int fp_host(void) {\n"
    "    int fp_x = 0;\n"
    "    fp_x = fp_x + 1;\n"
    "    fp_x = fp_x + 2;\n"
    "    fp_x = fp_x + 3;\n"
    "    return fp_x;\n"
    "}\n"
)


def inject_violation(source: str, checker_id: str, path: str = "seed.c") -> str:
    """Plant one *checker_id* violation at the top of the first function.

    Args:
        source: a parseable C file with at least one function.
        checker_id: one of :data:`SEEDABLE_CHECKERS`.
        path: path used for parse diagnostics.

    Raises:
        StaticCheckError: for an unseedable checker id or a source with no
            parseable function to host the payload.
    """
    payload = _PAYLOADS.get(checker_id)
    if payload is None:
        raise StaticCheckError(
            f"checker {checker_id!r} has no injectable payload "
            f"(seedable: {', '.join(SEEDABLE_CHECKERS)})"
        )
    return _inject(source, payload, path)[0]


def plant_violation(source: str, checker_id: str, path: str = "seed.c") -> tuple[str, int, int]:
    """Like :func:`inject_violation`, but also reports where.

    Returns:
        (mutated text, insertion line, payload line count) — the insertion
        line is 1-based and the payload occupies the lines just below it,
        which is exactly what the autofix pipeline needs to attribute
        findings to the plant and to shift a pre-plant baseline.
    """
    payload = _PAYLOADS.get(checker_id)
    if payload is None:
        raise StaticCheckError(
            f"checker {checker_id!r} has no injectable payload "
            f"(seedable: {', '.join(SEEDABLE_CHECKERS)})"
        )
    return _inject(source, payload, path)


def inject_false_positive(source: str, checker_id: str, path: str = "seed.c") -> str:
    """Plant one clean *checker_id* lookalike at the top of the first
    function (see :data:`_FP_PAYLOADS` for what each block resembles).

    Raises:
        StaticCheckError: for a checker without a lookalike payload or a
            source with no parseable function to host it.
    """
    payload = _FP_PAYLOADS.get(checker_id)
    if payload is None:
        raise StaticCheckError(
            f"checker {checker_id!r} has no false-positive payload "
            f"(available: {', '.join(sorted(_FP_PAYLOADS))})"
        )
    return _inject(source, payload, path)[0]


def _inject(source: str, payload: list[str], path: str) -> tuple[str, int, int]:
    """Insert *payload* first in the first function's body.

    Returns (mutated text, insertion line, payload length) — the latter two
    feed :func:`repro.staticcheck.model.shifted_finding_ids`.
    """
    unit = parse_translation_unit(source, path)
    if not unit.functions:
        raise StaticCheckError(f"{path}: no function to host a seeded violation")
    body = unit.functions[0].body
    lines = source.splitlines()
    # Insert right after the body's opening line, i.e. first in the block.
    insert_at = body.start_line
    out = lines[:insert_at] + payload + lines[insert_at:]
    return (
        "\n".join(out) + ("\n" if source.endswith("\n") else ""),
        insert_at,
        len(payload),
    )


def seed_all(source: str, path: str = "seed.c") -> dict[str, str]:
    """One mutated copy of *source* per seedable checker, plus the opaque
    fixture under ``"parse-coverage"``."""
    out = {c: inject_violation(source, c, path) for c in SEEDABLE_CHECKERS}
    out["parse-coverage"] = OPAQUE_FIXTURE
    return out


def seed_false_positives(source: str, path: str = "seed.c") -> dict[str, str]:
    """One clean-lookalike copy of *source* per checker with a
    false-positive payload, plus the sub-threshold opaque fixture under
    ``"parse-coverage"``."""
    out = {c: inject_false_positive(source, c, path) for c in sorted(_FP_PAYLOADS)}
    out["parse-coverage"] = FP_OPAQUE_FIXTURE
    return out


def score_fixtures(source: str, path: str = "seed.c", dataflow: bool = True) -> dict[str, dict]:
    """Per-checker precision/recall over the seeded + lookalike fixtures.

    For every checker with both payloads, the seeded copy contributes the
    recall side (did the checker fire on its canonical violation?) and the
    lookalike copy the precision side (did it stay quiet on the clean
    twin?).  Findings pre-existing in *source* are subtracted by
    shift-adjusted stable id so only payload-attributable findings count.

    Returns:
        ``{checker: {"tp", "fp", "fn", "precision", "recall"}}`` where
        precision is ``tp / (tp + fp)`` (1.0 when nothing fired at all).
    """
    checkers = make_checkers(dataflow=dataflow)
    baseline = LintReport(files=[analyze_source(path, source, checkers)])
    scores: dict[str, dict] = {}
    for checker_id in SEEDABLE_CHECKERS:
        seeded, insert_at, added = _inject(source, _PAYLOADS[checker_id], path)
        base_ids = shifted_finding_ids(baseline, insert_at, added)
        seeded_new = [
            f
            for f in analyze_source(path, seeded, checkers).findings
            if f.stable_id not in base_ids
        ]
        tp = sum(1 for f in seeded_new if f.checker == checker_id)
        fp = 0
        if checker_id in _FP_PAYLOADS:
            lookalike, insert_at, added = _inject(source, _FP_PAYLOADS[checker_id], path)
            base_ids = shifted_finding_ids(baseline, insert_at, added)
            fp = sum(
                1
                for f in analyze_source(path, lookalike, checkers).findings
                if f.stable_id not in base_ids and f.checker == checker_id
            )
        scores[checker_id] = {
            "tp": tp,
            "fp": fp,
            "fn": 0 if tp else 1,
            "precision": tp / (tp + fp) if (tp + fp) else 1.0,
            "recall": 1.0 if tp else 0.0,
        }
    return scores
