"""Seeded-violation fixtures: known-answer tests for the checker suite.

``inject_violation`` plants exactly one violation of a chosen checker class
into an existing (clean) source file; ``seed_all`` does so for every
checker.  The recall test lints each mutated file and asserts the matching
checker fires — a per-checker known-answer harness that keeps heuristic
drift honest: any future tightening of a checker that stops it catching its
canonical instance fails the suite immediately.

Payloads are chosen to trip *their* checker without tripping the others,
so the tests can also assert precision on the injected line.
"""

from __future__ import annotations

from ..errors import StaticCheckError
from ..lang.parser import parse_translation_unit
from .checkers import CHECKER_IDS

__all__ = ["SEEDABLE_CHECKERS", "OPAQUE_FIXTURE", "inject_violation", "seed_all"]

#: One canonical violating statement block per checker (indented two levels
#: deep is fine anywhere inside a function body).
_PAYLOADS: dict[str, list[str]] = {
    "dangerous-api": ["    strcpy(seed_dst, seed_src);"],
    "missing-check": ["    seed_arr[seed_idx] = 0;"],
    "side-effect-cond": ["    if (seed_flag++) { seed_flag = 0; }"],
    "unreachable": ["    do { continue; seed_skip = 1; } while (0);"],
    "alloc-free": ["    char *seed_leak = malloc(8);"],
    "scaffold-leak": ["    int _SYS_SEED_leak = 0;"],
    "decl-use": ["    seed_late = 3;", "    int seed_late;"],
}

#: Checkers with an injectable in-function payload (all but parse-coverage,
#: which gets a standalone fixture file instead).
SEEDABLE_CHECKERS: tuple[str, ...] = tuple(
    c for c in CHECKER_IDS if c in _PAYLOADS
)

#: A standalone file the parser models none of: every code line is opaque,
#: which is exactly what the parse-coverage checker reports.
OPAQUE_FIXTURE = (
    "__attribute__((packed)) struct seed_a { int x; };\n"
    "__attribute__((packed)) struct seed_b { int y; };\n"
    "__attribute__((packed)) struct seed_c { int z; };\n"
    "__attribute__((packed)) struct seed_d { int w; };\n"
    "__attribute__((packed)) struct seed_e { int v; };\n"
    "__attribute__((packed)) struct seed_f { int u; };\n"
)


def inject_violation(source: str, checker_id: str, path: str = "seed.c") -> str:
    """Plant one *checker_id* violation at the top of the first function.

    Args:
        source: a parseable C file with at least one function.
        checker_id: one of :data:`SEEDABLE_CHECKERS`.
        path: path used for parse diagnostics.

    Raises:
        StaticCheckError: for an unseedable checker id or a source with no
            parseable function to host the payload.
    """
    payload = _PAYLOADS.get(checker_id)
    if payload is None:
        raise StaticCheckError(
            f"checker {checker_id!r} has no injectable payload "
            f"(seedable: {', '.join(SEEDABLE_CHECKERS)})"
        )
    unit = parse_translation_unit(source, path)
    if not unit.functions:
        raise StaticCheckError(f"{path}: no function to host a seeded violation")
    body = unit.functions[0].body
    lines = source.splitlines()
    # Insert right after the body's opening line, i.e. first in the block.
    insert_at = body.start_line
    out = lines[:insert_at] + payload + lines[insert_at:]
    return "\n".join(out) + ("\n" if source.endswith("\n") else "")


def seed_all(source: str, path: str = "seed.c") -> dict[str, str]:
    """One mutated copy of *source* per seedable checker, plus the opaque
    fixture under ``"parse-coverage"``."""
    out = {c: inject_violation(source, c, path) for c in SEEDABLE_CHECKERS}
    out["parse-coverage"] = OPAQUE_FIXTURE
    return out
