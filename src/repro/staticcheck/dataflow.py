"""Per-function control-flow graphs and classic dataflow analyses.

The checker suite started as token/AST heuristics; this module gives the
suite real dataflow facts to consult.  For each parsed
:class:`~repro.lang.ast_nodes.FunctionDef` it builds a statement-level CFG
(*atoms* — declarations, expression statements, conditions, returns —
connected by control-flow edges including loops, switch dispatch, break/
continue, and resolved gotos) and runs three textbook analyses over it:

* **reaching definitions** — which assignments of a variable can reach a
  use, with each definition classified (``const``/``addr``/``alloc``/
  ``param``/``decl``/``other``) so checkers can reason about what a value
  *is* at the use site;
* **liveness** — which variables may still be read after a point, the
  backward analysis behind :meth:`FunctionFlow.dead_stores`;
* **must-declared** — on every path from the entry, which locals have
  already passed their declaration (an intersection analysis, so
  goto-reordered code is handled correctly where raw line order is not).

Checkers use these facts to *veto* heuristic findings (a constant index
needs no bounds check; a re-pointed pointer makes a second ``free`` safe; a
declaration reached through a ``goto`` is not use-before-decl), which is
why the dataflow-backed modes are strictly more precise than the
heuristics while preserving their recall by construction.

The module is self-contained over :mod:`repro.lang` so that both
``checkers`` and ``context`` can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast_nodes import (
    BlockStmt,
    BreakStmt,
    CaseLabel,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GotoStmt,
    IfStmt,
    LabelStmt,
    NullStmt,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    WhileStmt,
)
from ..lang.lexer import code_tokens
from ..lang.tokens import ASSIGNMENT_OPERATORS, Token, TokenKind

__all__ = [
    "ALLOCATORS",
    "FREES",
    "Atom",
    "Cfg",
    "Definition",
    "FunctionFlow",
    "build_cfg",
    "declared_names",
    "param_names",
]

#: Allocators whose result should be freed, returned, or escape the function.
ALLOCATORS = frozenset(
    {"malloc", "calloc", "realloc", "strdup", "strndup", "kmalloc", "kzalloc", "vmalloc"}
)

#: Deallocation entry points.
FREES = frozenset({"free", "kfree", "vfree"})

#: Definition kinds, from most to least informative.
DEF_KINDS = ("param", "const", "addr", "alloc", "decl", "update", "other")


@dataclass(frozen=True, slots=True)
class Definition:
    """One definition of a variable.

    Attributes:
        var: the defined identifier.
        atom: index of the defining atom (the entry atom for parameters).
        line: 1-based source line of the definition.
        kind: ``param`` (function parameter), ``const`` (literal-only
            right-hand side), ``addr`` (``&``-of right-hand side), ``alloc``
            (allocator call on the right-hand side), ``decl`` (declaration
            without initializer), ``update`` (compound assignment or
            increment, which also reads the target), or ``other``.
    """

    var: str
    atom: int
    line: int
    kind: str


@dataclass(slots=True)
class Atom:
    """One CFG node: a statement-level unit with a source line."""

    index: int
    kind: str  # entry/exit/join/decl/expr/cond/case/return/goto/break/continue/label
    text: str
    line: int


class Cfg:
    """A per-function control-flow graph over :class:`Atom` nodes."""

    __slots__ = ("atoms", "succs", "preds", "entry", "exit")

    def __init__(self, atoms: list[Atom], succs: list[list[int]], entry: int, exit: int) -> None:
        self.atoms = atoms
        self.succs = succs
        self.entry = entry
        self.exit = exit
        preds: list[list[int]] = [[] for _ in atoms]
        for a, outs in enumerate(succs):
            for b in outs:
                preds[b].append(a)
        self.preds = preds

    def reachable(self) -> list[int]:
        """Atom indices reachable from the entry, in BFS order."""
        seen = [False] * len(self.atoms)
        order: list[int] = []
        queue = [self.entry]
        seen[self.entry] = True
        while queue:
            a = queue.pop(0)
            order.append(a)
            for b in self.succs[a]:
                if not seen[b]:
                    seen[b] = True
                    queue.append(b)
        return order


class _Builder:
    """Recursive CFG construction over one function's statement tree."""

    def __init__(self, fn: FunctionDef) -> None:
        self.fn = fn
        self.atoms: list[Atom] = []
        self.succs: list[list[int]] = []
        self._labels: dict[str, int] = {}
        self._gotos: list[tuple[int, str]] = []
        self._exits: list[int] = []  # atoms that jump straight to the exit
        self._breaks: list[list[int]] = []
        self._continues: list[list[int]] = []
        self._switch_conds: list[int] = []

    def _new(self, kind: str, text: str, line: int) -> int:
        idx = len(self.atoms)
        self.atoms.append(Atom(idx, kind, text, line))
        self.succs.append([])
        return idx

    def _edge(self, a: int, b: int) -> None:
        if b not in self.succs[a]:
            self.succs[a].append(b)

    def _connect(self, frontier: list[int], target: int) -> None:
        for a in frontier:
            self._edge(a, target)

    def build(self) -> Cfg:
        entry = self._new("entry", "", self.fn.start_line)
        frontier = self._stmt(self.fn.body, [entry])
        exit_ = self._new("exit", "", self.fn.end_line)
        self._connect(frontier, exit_)
        self._connect(self._exits, exit_)
        for goto_atom, label in self._gotos:
            self._edge(goto_atom, self._labels.get(label, exit_))
        return Cfg(self.atoms, self.succs, entry, exit_)

    def _stmt(self, stmt: Stmt | None, frontier: list[int]) -> list[int]:
        if stmt is None:
            return frontier
        if isinstance(stmt, BlockStmt):
            for s in stmt.stmts:
                frontier = self._stmt(s, frontier)
            return frontier
        if isinstance(stmt, (DeclStmt, ExprStmt)):
            kind = "decl" if isinstance(stmt, DeclStmt) else "expr"
            a = self._new(kind, stmt.text, stmt.start_line)
            self._connect(frontier, a)
            return [a]
        if isinstance(stmt, NullStmt):
            return frontier
        if isinstance(stmt, ReturnStmt):
            a = self._new("return", stmt.value_text, stmt.start_line)
            self._connect(frontier, a)
            self._exits.append(a)
            return []
        if isinstance(stmt, GotoStmt):
            a = self._new("goto", "", stmt.start_line)
            self._connect(frontier, a)
            self._gotos.append((a, stmt.label))
            return []
        if isinstance(stmt, BreakStmt):
            a = self._new("break", "", stmt.start_line)
            self._connect(frontier, a)
            if self._breaks:
                self._breaks[-1].append(a)
            else:
                self._exits.append(a)  # stray break: robustly treated as exit
            return []
        if isinstance(stmt, ContinueStmt):
            a = self._new("continue", "", stmt.start_line)
            self._connect(frontier, a)
            if self._continues:
                self._continues[-1].append(a)
            else:
                self._exits.append(a)
            return []
        if isinstance(stmt, IfStmt):
            c = self._new("cond", stmt.cond.text, stmt.start_line)
            self._connect(frontier, c)
            then_out = self._stmt(stmt.then, [c])
            else_out = self._stmt(stmt.orelse, [c]) if stmt.orelse is not None else [c]
            return _merge(then_out, else_out)
        if isinstance(stmt, WhileStmt):
            c = self._new("cond", stmt.cond.text, stmt.start_line)
            self._connect(frontier, c)
            self._breaks.append([])
            self._continues.append([])
            body_out = self._stmt(stmt.body, [c])
            self._connect(body_out, c)
            self._connect(self._continues.pop(), c)
            return _merge([c], self._breaks.pop())
        if isinstance(stmt, DoWhileStmt):
            head = self._new("join", "", stmt.start_line)
            self._connect(frontier, head)
            self._breaks.append([])
            self._continues.append([])
            body_out = self._stmt(stmt.body, [head])
            c = self._new("cond", stmt.cond.text, stmt.end_line)
            self._connect(body_out, c)
            self._connect(self._continues.pop(), c)
            self._edge(c, head)
            return _merge([c], self._breaks.pop())
        if isinstance(stmt, ForStmt):
            return self._for(stmt, frontier)
        if isinstance(stmt, SwitchStmt):
            c = self._new("cond", stmt.cond.text, stmt.start_line)
            self._connect(frontier, c)
            self._breaks.append([])
            self._switch_conds.append(c)
            body_out = self._stmt(stmt.body, [c])
            self._switch_conds.pop()
            # [c] covers the no-matching-case path (an over-approximation
            # when a default label exists, which is safe for every analysis
            # here: may-analyses gain paths, must-analyses lose facts).
            return _merge(body_out, _merge(self._breaks.pop(), [c]))
        if isinstance(stmt, CaseLabel):
            a = self._new("case", stmt.label_text, stmt.start_line)
            self._connect(frontier, a)
            if self._switch_conds:
                self._edge(self._switch_conds[-1], a)
            return [a]
        if isinstance(stmt, LabelStmt):
            a = self._new("label", "", stmt.start_line)
            self._connect(frontier, a)
            self._labels[stmt.name] = a
            return self._stmt(stmt.stmt, [a]) if stmt.stmt is not None else [a]
        # Unknown statement kind: treat as an opaque straight-line atom.
        a = self._new("expr", "", stmt.start_line)
        self._connect(frontier, a)
        return [a]

    def _for(self, stmt: ForStmt, frontier: list[int]) -> list[int]:
        clauses = stmt.clauses.split(";")
        init, test, update = (
            (clauses[0], clauses[1], clauses[2]) if len(clauses) == 3 else ("", stmt.clauses, "")
        )
        if init.strip():
            a = self._new("expr", init.strip(), stmt.start_line)
            self._connect(frontier, a)
            frontier = [a]
        c = self._new("cond", test.strip(), stmt.start_line)
        self._connect(frontier, c)
        self._breaks.append([])
        self._continues.append([])
        body_out = self._stmt(stmt.body, [c])
        conts = self._continues.pop()
        if update.strip():
            u = self._new("expr", update.strip(), stmt.start_line)
            self._connect(body_out, u)
            self._connect(conts, u)
            self._edge(u, c)
        else:
            self._connect(body_out, c)
            self._connect(conts, c)
        # for (;;) only exits through break.
        exits = [c] if test.strip() else []
        return _merge(exits, self._breaks.pop())


def _merge(a: list[int], b: list[int]) -> list[int]:
    """Order-preserving union of two frontiers."""
    return a + [x for x in b if x not in a]


def build_cfg(fn: FunctionDef) -> Cfg:
    """Build the statement-level CFG of one parsed function."""
    return _Builder(fn).build()


# ---- token-level def/use extraction ------------------------------------


def declared_names(decl_text: str) -> list[str]:
    """Declared identifiers in a declaration statement's source text."""
    toks = code_tokens(decl_text)
    names: list[str] = []
    depth = 0
    for i, tok in enumerate(toks):
        if tok.text in ("(", "["):
            depth += 1
            continue
        if tok.text in (")", "]"):
            depth -= 1
            continue
        if depth or tok.kind is not TokenKind.IDENTIFIER:
            continue
        prev = toks[i - 1] if i > 0 else None
        nxt = toks[i + 1].text if i + 1 < len(toks) else ";"
        # A name position: not the leading type word, and terminated like a
        # declarator ('int a, b = 2;' -> a, b; 'size_t tmp;' -> tmp).
        if nxt in (",", ";", "=", "["):
            if prev is not None and prev.kind is TokenKind.IDENTIFIER and i == 1:
                names.append(tok.text)  # 'size_t tmp' — tmp is the declarator
            elif prev is None:
                continue  # first token can't be a declarator
            else:
                names.append(tok.text)
    return names


def param_names(params_text: str) -> list[str]:
    """Parameter names in a parameter list's source text.

    Accepts the list with or without its surrounding parentheses
    (``FunctionDef.params_text`` keeps them).
    """
    out: list[str] = []
    stripped = params_text.strip()
    if stripped.startswith("(") and stripped.endswith(")"):
        stripped = stripped[1:-1]
    toks = code_tokens(stripped)
    depth = 0
    for i, tok in enumerate(toks):
        if tok.text in ("(", "["):
            depth += 1
            continue
        if tok.text in (")", "]"):
            depth -= 1
            continue
        if depth or tok.kind is not TokenKind.IDENTIFIER:
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        # The declarator name is the identifier right before ',' or the end.
        if nxt in (",", "") and tok.text not in ("void",):
            out.append(tok.text)
    return out


def _classify_rhs(toks: list[Token], allocators: frozenset[str]) -> str:
    """Classify an initializer/assignment right-hand side's tokens."""
    if not toks:
        return "other"
    if toks[0].text == "&":
        return "addr"
    for i, tok in enumerate(toks):
        if (
            tok.kind is TokenKind.IDENTIFIER
            and tok.text in allocators
            and i + 1 < len(toks)
            and toks[i + 1].text == "("
        ):
            return "alloc"
    if all(
        tok.kind in (TokenKind.NUMBER, TokenKind.CHAR) or tok.text in ("-", "+", "(", ")", "~")
        for tok in toks
    ):
        return "const"
    return "other"


def _rhs_span(toks: list[Token], op_idx: int) -> list[Token]:
    """Tokens of the right-hand side following the operator at *op_idx*."""
    out: list[Token] = []
    depth = 0
    for tok in toks[op_idx + 1 :]:
        if tok.text in ("(", "["):
            depth += 1
        elif tok.text in (")", "]"):
            depth -= 1
        elif tok.text in (";", ",") and depth <= 0:
            break
        out.append(tok)
    return out


class FunctionFlow:
    """Dataflow facts for one function: CFG + the three analyses.

    Args:
        fn: a parsed function definition.
        allocators / frees: call names treated as allocation/deallocation
            when classifying definitions (defaults cover the checker suite).
    """

    def __init__(
        self,
        fn: FunctionDef,
        allocators: frozenset[str] = ALLOCATORS,
        frees: frozenset[str] = FREES,
    ) -> None:
        self.fn = fn
        self.cfg = build_cfg(fn)
        self._allocators = allocators
        self._frees = frees
        self._params = tuple(dict.fromkeys(param_names(fn.params_text)))
        n = len(self.cfg.atoms)
        self._defs: list[tuple[Definition, ...]] = [() for _ in range(n)]
        self._uses: list[frozenset[str]] = [frozenset() for _ in range(n)]
        self._decls: list[frozenset[str]] = [frozenset() for _ in range(n)]
        self._frees_at: list[tuple[str, ...]] = [() for _ in range(n)]
        for atom in self.cfg.atoms:
            self._scan_atom(atom)
        self._reach_in: list[dict[str, frozenset[Definition]]] | None = None
        self._live_out: list[frozenset[str]] | None = None
        self._declared_in: list[frozenset[str]] | None = None

    # ---- per-atom facts ------------------------------------------------

    def _scan_atom(self, atom: Atom) -> None:
        if atom.kind == "entry":
            self._defs[atom.index] = tuple(
                Definition(p, atom.index, atom.line, "param") for p in self._params
            )
            return
        if atom.kind not in ("decl", "expr", "cond", "return", "case"):
            return
        toks = code_tokens(atom.text)
        if atom.kind == "decl":
            self._scan_decl(atom, toks)
            return
        defs: list[Definition] = []
        uses: set[str] = set()
        if atom.kind == "expr":
            defs, uses = self._scan_expr(atom, toks)
        else:
            uses = self._ident_uses(toks)
        self._defs[atom.index] = tuple(defs)
        self._uses[atom.index] = frozenset(uses)
        self._frees_at[atom.index] = self._scan_frees(toks)

    def _scan_decl(self, atom: Atom, toks: list[Token]) -> None:
        names = declared_names(atom.text)
        defs: list[Definition] = []
        uses: set[str] = set()
        for name in names:
            kind = "decl"
            for i, tok in enumerate(toks):
                if tok.kind is TokenKind.IDENTIFIER and tok.text == name:
                    if i + 1 < len(toks) and toks[i + 1].text == "=":
                        rhs = _rhs_span(toks, i + 1)
                        kind = _classify_rhs(rhs, self._allocators)
                        uses |= self._ident_uses(rhs)
                    break
            defs.append(Definition(name, atom.index, atom.line, kind))
        self._defs[atom.index] = tuple(defs)
        self._uses[atom.index] = frozenset(uses - set(names))
        self._decls[atom.index] = frozenset(names)
        self._frees_at[atom.index] = self._scan_frees(toks)

    def _scan_expr(self, atom: Atom, toks: list[Token]) -> tuple[list[Definition], set[str]]:
        defs: list[Definition] = []
        uses: set[str] = set()
        for i, tok in enumerate(toks):
            if tok.kind is not TokenKind.IDENTIFIER:
                continue
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if nxt == "(":  # callee name, not a variable
                continue
            if prev in (".", "->"):  # member access never defines the base
                uses.add(tok.text)
                continue
            if nxt in ASSIGNMENT_OPERATORS and prev not in ("*",):
                rhs = _rhs_span(toks, i + 1)
                kind = _classify_rhs(rhs, self._allocators) if nxt == "=" else "update"
                defs.append(Definition(tok.text, atom.index, tok.line, kind))
                if nxt != "=":
                    uses.add(tok.text)  # compound assignment reads the target
                continue
            if nxt in ("++", "--") or prev in ("++", "--"):
                defs.append(Definition(tok.text, atom.index, tok.line, "update"))
                uses.add(tok.text)
                continue
            uses.add(tok.text)
        return defs, uses

    def _ident_uses(self, toks: list[Token]) -> set[str]:
        out: set[str] = set()
        for i, tok in enumerate(toks):
            if tok.kind is not TokenKind.IDENTIFIER:
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if nxt == "(":
                continue
            out.add(tok.text)
        return out

    def _scan_frees(self, toks: list[Token]) -> tuple[str, ...]:
        freed: list[str] = []
        for i, tok in enumerate(toks):
            if (
                tok.kind is TokenKind.IDENTIFIER
                and tok.text in self._frees
                and i + 2 < len(toks)
                and toks[i + 1].text == "("
                and toks[i + 2].kind is TokenKind.IDENTIFIER
            ):
                freed.append(toks[i + 2].text)
        return tuple(freed)

    # ---- analyses ------------------------------------------------------

    def _reaching(self) -> list[dict[str, frozenset[Definition]]]:
        if self._reach_in is not None:
            return self._reach_in
        cfg = self.cfg
        n = len(cfg.atoms)
        reach_in: list[dict[str, frozenset[Definition]]] = [{} for _ in range(n)]
        reach_out: list[dict[str, frozenset[Definition]]] = [{} for _ in range(n)]
        order = cfg.reachable()
        changed = True
        while changed:
            changed = False
            for a in order:
                merged: dict[str, set[Definition]] = {}
                for p in cfg.preds[a]:
                    for var, defs in reach_out[p].items():
                        merged.setdefault(var, set()).update(defs)
                new_in = {var: frozenset(defs) for var, defs in merged.items()}
                new_out = dict(new_in)
                for d in self._defs[a]:
                    new_out[d.var] = frozenset({d})
                if new_in != reach_in[a] or new_out != reach_out[a]:
                    reach_in[a] = new_in
                    reach_out[a] = new_out
                    changed = True
        self._reach_in = reach_in
        return reach_in

    def _liveness(self) -> list[frozenset[str]]:
        if self._live_out is not None:
            return self._live_out
        cfg = self.cfg
        n = len(cfg.atoms)
        live_in: list[frozenset[str]] = [frozenset() for _ in range(n)]
        live_out: list[frozenset[str]] = [frozenset() for _ in range(n)]
        order = list(reversed(cfg.reachable()))
        changed = True
        while changed:
            changed = False
            for a in order:
                out: set[str] = set()
                for s in cfg.succs[a]:
                    out |= live_in[s]
                defs = {d.var for d in self._defs[a]}
                new_in = frozenset(self._uses[a] | (out - defs))
                new_out = frozenset(out)
                if new_in != live_in[a] or new_out != live_out[a]:
                    live_in[a] = new_in
                    live_out[a] = new_out
                    changed = True
        self._live_out = live_out
        return live_out

    def _declared(self) -> list[frozenset[str]]:
        """Must-declared: locals declared on *every* path to each atom."""
        if self._declared_in is not None:
            return self._declared_in
        cfg = self.cfg
        n = len(cfg.atoms)
        all_vars = frozenset(v for decls in self._decls for v in decls) | set(self._params)
        declared_in: list[frozenset[str]] = [all_vars] * n
        declared_out: list[frozenset[str]] = [all_vars] * n
        declared_in[cfg.entry] = frozenset()
        declared_out[cfg.entry] = frozenset(self._params)
        order = cfg.reachable()
        changed = True
        while changed:
            changed = False
            for a in order:
                if a == cfg.entry:
                    continue
                preds = cfg.preds[a]
                if preds:
                    acc = declared_out[preds[0]]
                    for p in preds[1:]:
                        acc = acc & declared_out[p]
                else:
                    acc = frozenset()
                new_in = acc
                new_out = acc | self._decls[a]
                if new_in != declared_in[a] or new_out != declared_out[a]:
                    declared_in[a] = new_in
                    declared_out[a] = new_out
                    changed = True
        self._declared_in = declared_in
        return declared_in

    # ---- checker-facing queries ---------------------------------------

    def atoms_at(self, line: int) -> list[Atom]:
        """Atoms whose source line is *line*."""
        return [a for a in self.cfg.atoms if a.line == line and a.kind not in ("entry", "exit")]

    def reaching_for(self, line: int, var: str) -> frozenset[Definition] | None:
        """Definitions of *var* that may reach its mention at *line*.

        Returns None when no atom at that line mentions *var* — the caller
        should treat that as "unknown" and not suppress anything.
        """
        reach = self._reaching()
        found = False
        out: set[Definition] = set()
        for atom in self.atoms_at(line):
            mentions = var in self._uses[atom.index] or any(
                d.var == var for d in self._defs[atom.index]
            )
            if not mentions:
                continue
            found = True
            out |= reach[atom.index].get(var, frozenset())
        return frozenset(out) if found else None

    def declared_before(self, line: int, var: str) -> bool:
        """True when *var*'s declaration reaches every path to its mention
        at *line* (e.g. through a ``goto``), despite raw line order."""
        declared = self._declared()
        for atom in self.atoms_at(line):
            mentions = var in self._uses[atom.index] or any(
                d.var == var for d in self._defs[atom.index]
            )
            if mentions and var in declared[atom.index]:
                return True
        return False

    def free_atoms(self, var: str) -> list[int]:
        """Indices of atoms that call a deallocator on *var*, in atom order."""
        return [a.index for a in self.cfg.atoms if var in self._frees_at[a.index]]

    def reaching_at_atom(self, atom: int, var: str) -> frozenset[Definition]:
        """Definitions of *var* reaching atom *atom* (reach-in)."""
        return self._reaching()[atom].get(var, frozenset())

    def live_out(self, atom: int) -> frozenset[str]:
        """Variables that may still be read after atom *atom*."""
        return self._liveness()[atom]

    def dead_stores(self) -> list[Definition]:
        """Plain assignments whose value can never be read.

        Declarations without initializers and parameters are not stores,
        and compound assignments / increments (kind ``update``) read their
        target, so only plain ``=`` assignments and initializers with a
        dead left-hand side are reported.  Variables whose address is taken
        anywhere are skipped entirely (aliased reads are invisible to the
        token scan).
        """
        live = self._liveness()
        addr_taken = self._address_taken()
        out: list[Definition] = []
        reachable = set(self.cfg.reachable())
        for atom in self.cfg.atoms:
            if atom.index not in reachable:
                continue
            for d in self._defs[atom.index]:
                if d.kind in ("param", "decl", "update"):
                    continue
                if d.var in addr_taken:
                    continue
                if d.var not in live[atom.index]:
                    out.append(d)
        return out

    def _address_taken(self) -> frozenset[str]:
        taken: set[str] = set()
        for atom in self.cfg.atoms:
            toks = code_tokens(atom.text)
            for i, tok in enumerate(toks):
                if tok.text == "&" and i + 1 < len(toks) and toks[i + 1].kind is TokenKind.IDENTIFIER:
                    prev = toks[i - 1] if i > 0 else None
                    # '&' is address-of when not a binary operator position.
                    if prev is None or prev.kind is TokenKind.OPERATOR or prev.text in ("(", ",", "=", "return", ";"):
                        taken.add(toks[i + 1].text)
        return frozenset(taken)
