"""Running the checker suite over files, worlds, and patches.

Three entry points share one core:

* :func:`analyze_source` — one (path, text) pair → :class:`FileReport`.
* :func:`lint_sources` — many pairs, optionally fanned out to a chunked
  process pool (same shape as the feature/token caches in
  :mod:`repro.core.cache`: worker initializer carries the checker ids,
  chunks amortize IPC, any pool failure falls back to serial, and results
  are identical to a serial run).
* :func:`lint_world` / :func:`lint_patch` — adapters that collect the
  (path, text) pairs from a corpus world's head trees or from a parsed
  patch's added lines.

Reports list files in sorted path order regardless of worker count, so
``--workers N`` output is byte-identical to serial output.
"""

from __future__ import annotations

import concurrent.futures

from ..obs import ObsRegistry, ObsSnapshot
from ..patch.model import Patch
from .checkers import CHECKER_IDS, Checker, make_checkers
from .context import CheckContext
from .model import FileReport, LintReport

__all__ = [
    "CODE_SUFFIXES",
    "analyze_source",
    "lint_sources",
    "lint_world",
    "lint_patch",
    "patch_fragments",
]

#: File suffixes the linter considers source code.
CODE_SUFFIXES = (".c", ".h", ".cc", ".cpp", ".hpp", ".cxx")

# Per-process state for pool workers: the instantiated checker list.
_LINT_WORKER_STATE: list[Checker] | None = None


def _init_lint_worker(checker_ids: tuple[str, ...], dataflow: bool = True) -> None:
    global _LINT_WORKER_STATE
    _LINT_WORKER_STATE = make_checkers(checker_ids, dataflow=dataflow)


def _lint_chunk(items: list[tuple[str, str, bool]]) -> tuple[list[FileReport], ObsSnapshot]:
    """Lint one chunk in a worker, timing each file into a local registry
    (per-file ``lint`` latencies, matching the serial path) whose snapshot
    rides back with the reports."""
    assert _LINT_WORKER_STATE is not None
    local = ObsRegistry()
    reports = []
    for path, source, fragment in items:
        with local.timer("lint"):
            reports.append(
                analyze_source(path, source, _LINT_WORKER_STATE, is_fragment=fragment)
            )
    return reports, local.snapshot()


def analyze_source(
    path: str,
    source: str,
    checkers: list[Checker] | None = None,
    is_fragment: bool = False,
) -> FileReport:
    """Run the checker suite over one file's text.

    Args:
        path: file path recorded in findings.
        source: full file text (or patch fragment).
        checkers: suite to run; the full registry when None.
        is_fragment: the text is a patch fragment — parse failures are
            advisory rather than gate-class and coverage is not reported.
    """
    if checkers is None:
        checkers = make_checkers()
    ctx = CheckContext(path, source, is_fragment=is_fragment)
    findings = [f for checker in checkers for f in checker.check(ctx)]
    findings.sort(key=lambda f: (f.line, f.checker, f.message))
    code, opaque = ctx.coverage() if not is_fragment else (0, 0)
    return FileReport(
        path=path,
        findings=tuple(findings),
        parse_failed=ctx.parse_error is not None,
        code_lines=code,
        opaque_lines=opaque,
    )


def lint_sources(
    items: list[tuple[str, str]],
    checkers: list[Checker] | None = None,
    workers: int | None = None,
    obs: ObsRegistry | None = None,
    fragments: bool = False,
) -> LintReport:
    """Lint many (path, source) pairs into one report.

    Args:
        items: (path, text) pairs; duplicated paths are linted once each.
        checkers: suite to run; the full registry when None.
        workers: >1 lints in a process pool.  Output is identical to the
            serial run; any pool failure silently falls back to serial.
        obs: observability registry for ``lint``/``lint_parallel`` timers
            and ``files_linted``/``lint_findings`` counters.
        fragments: treat every item as a patch fragment.
    """
    obs = obs if obs is not None else ObsRegistry()
    tagged = sorted(
        ((path, text, fragments) for path, text in items), key=lambda item: item[0]
    )
    reports: list[FileReport] | None = None
    # Below ~2 chunks per worker the pool costs more than it saves.
    if workers is not None and workers > 1 and len(tagged) >= 2 * workers:
        with obs.timer("lint_parallel"):
            reports = _lint_parallel(tagged, checkers, workers, obs)
    if reports is None:
        checker_objs = checkers if checkers is not None else make_checkers()
        reports = []
        for path, text, frag in tagged:
            with obs.timer("lint"):
                reports.append(analyze_source(path, text, checker_objs, is_fragment=frag))
    obs.add("files_linted", len(reports))
    report = LintReport(files=reports)
    obs.add("lint_findings", len(report.findings()))
    for checker_id, n in report.counts_by_checker().items():
        obs.add(f"lint_{checker_id.replace('-', '_')}", n)
    return report


def _lint_parallel(
    tagged: list[tuple[str, str, bool]],
    checkers: list[Checker] | None,
    workers: int,
    obs: ObsRegistry,
) -> list[FileReport] | None:
    """Lint *tagged* items in a process pool; None on any pool failure.

    Worker-local obs snapshots are merged in chunk order, so the merged
    per-file ``lint`` timings match a serial run.
    """
    ids = tuple(c.id for c in checkers) if checkers is not None else CHECKER_IDS
    # Workers rebuild checkers from ids, so the dataflow mode must ride
    # along for parallel output to match a serial run of the same suite.
    dataflow = (
        all(getattr(c, "dataflow", True) for c in checkers) if checkers is not None else True
    )
    # Enough chunks that stragglers rebalance, big enough to amortize IPC.
    n_chunks = min(len(tagged), workers * 4)
    chunks: list[list[tuple[str, str, bool]]] = [[] for _ in range(n_chunks)]
    for i, item in enumerate(tagged):
        chunks[i % n_chunks].append(item)
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_lint_worker,
            initargs=(ids, dataflow),
        ) as pool:
            reports = []
            snapshots = []
            for part, snap in pool.map(_lint_chunk, chunks):
                reports.extend(part)
                snapshots.append(snap)
    except Exception:
        return None
    for snap in snapshots:
        obs.merge(snap)
    reports.sort(key=lambda fr: fr.path)
    return reports


def lint_world(
    world,
    checkers: list[Checker] | None = None,
    workers: int | None = None,
    obs: ObsRegistry | None = None,
) -> LintReport:
    """Lint every code file at every repository head of a corpus world.

    Paths are namespaced ``slug/path`` so findings are attributable across
    repositories.
    """
    items: list[tuple[str, str]] = []
    for slug in sorted(world.repos):
        repo = world.repos[slug]
        tree = repo.checkout(repo.head)
        for path in sorted(tree):
            if path.endswith(CODE_SUFFIXES):
                items.append((f"{slug}/{path}", tree[path]))
    return lint_sources(items, checkers=checkers, workers=workers, obs=obs)


def patch_fragments(patch: Patch) -> list[tuple[str, str]]:
    """The added-side text of each touched code file in a patch.

    Each fragment is the concatenation of the added lines of every hunk of
    one file — not a complete compilation unit, hence linted with
    ``fragments=True``.
    """
    out: list[tuple[str, str]] = []
    for fd in patch.files:
        if not fd.new_path.endswith(CODE_SUFFIXES):
            continue
        added = [text for hunk in fd.hunks for text in hunk.added]
        if added:
            out.append((fd.new_path, "\n".join(added) + "\n"))
    return out


def lint_patch(
    patch: Patch,
    checkers: list[Checker] | None = None,
    obs: ObsRegistry | None = None,
) -> LintReport:
    """Lint the added lines of a patch as per-file fragments."""
    return lint_sources(patch_fragments(patch), checkers=checkers, obs=obs, fragments=True)
