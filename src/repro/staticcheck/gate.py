"""The corpus/synthesis validation gate.

``run_gate`` answers one question for a built world: *is everything the
downstream pipeline consumes well-formed?*  Concretely it enforces:

1. **Lint gate** — every code file at every repository head is linted; any
   gate-class finding (parse failure, ``_SYS_`` scaffold leak,
   side-effecting condition) fails the gate.  A clean corpus generator
   produces zero of these, so a hit is a generator regression.
2. **Variant equivalence** — for a sample of security patches, every
   applicable Fig. 5 variant is applied and the transformed text is
   descaffolded and CFG-compared against the original
   (:func:`~repro.staticcheck.equivalence.cfg_equivalent`).  A template
   that changes control flow fails the gate.

The CI lint-gate job and ``python -m repro lint`` (with no target) are thin
wrappers over this function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import ObsRegistry
from ..synthesis.engine import synthesize_from_texts
from ..synthesis.variants import VARIANTS
from .analyzer import CODE_SUFFIXES, lint_world
from .checkers import Checker
from .equivalence import cfg_equivalent
from .model import LintReport

__all__ = ["GateResult", "run_gate"]


@dataclass(slots=True)
class GateResult:
    """Outcome of one validation-gate run.

    Attributes:
        report: the full lint report over the world's head files.
        variant_checks: number of (patch, variant, side) equivalence checks.
        variant_failures: human-readable descriptions of non-equivalent
            transformations (empty on a healthy synthesis engine).
    """

    report: LintReport
    variant_checks: int = 0
    variant_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when there are no gate findings and no equivalence failures."""
        return not self.report.gate_findings and not self.variant_failures

    def summary(self) -> dict:
        """Headline numbers for rendering / JSON embedding."""
        return {
            "passed": self.passed,
            "gate_findings": len(self.report.gate_findings),
            "variant_checks": self.variant_checks,
            "variant_failures": len(self.variant_failures),
            **{f"lint_{k}": v for k, v in self.report.summary().items()},
        }

    def render_text(self, max_findings: int | None = 50) -> str:
        """Human-readable gate outcome."""
        lines = [self.report.render_text(max_findings=max_findings)]
        lines.append(
            f"variant equivalence: {self.variant_checks} checks, "
            f"{len(self.variant_failures)} failures"
        )
        lines.extend(f"  NOT EQUIVALENT: {msg}" for msg in self.variant_failures)
        lines.append(f"gate: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def run_gate(
    world,
    checkers: list[Checker] | None = None,
    workers: int | None = None,
    variant_sample: int = 25,
    seed: int = 0,
    obs: ObsRegistry | None = None,
) -> GateResult:
    """Run the full validation gate over a built world.

    Args:
        world: a :class:`~repro.corpus.world.World`.
        checkers: lint suite; the full registry when None.
        workers: parallelize the lint half in a process pool.
        variant_sample: how many security patches to equivalence-check
            (each against all eight variants, both sides); 0 disables the
            equivalence half.
        seed: sampling seed (the sample is deterministic given the world).
        obs: observability registry.
    """
    obs = obs if obs is not None else ObsRegistry()
    with obs.timer("gate"):
        report = lint_world(world, checkers=checkers, workers=workers, obs=obs)
        checks, failures = _check_variants(world, variant_sample, seed, obs)
    return GateResult(report=report, variant_checks=checks, variant_failures=failures)


def _check_variants(
    world, variant_sample: int, seed: int, obs: ObsRegistry
) -> tuple[int, list[str]]:
    """Equivalence-check sampled security patches under all variants."""
    if variant_sample <= 0:
        return 0, []
    shas = sorted(world.security_shas())
    if len(shas) > variant_sample:
        rng = np.random.default_rng(seed)
        shas = [shas[i] for i in sorted(rng.choice(len(shas), variant_sample, replace=False))]
    checks = 0
    failures: list[str] = []
    for sha in shas:
        repo = world.repo_of(sha)
        before_tree, after_tree = repo.before_after(sha)
        patch = world.patch_for(sha)
        for fdiff in patch.files:
            path = fdiff.path
            if not path.endswith(CODE_SUFFIXES):
                continue
            before = before_tree.get(path, "")
            after = after_tree.get(path, "")
            for variant in VARIANTS:
                for side in ("after", "before"):
                    result = synthesize_from_texts(before, after, path, variant, side)
                    if result is None:
                        continue
                    original = after if side == "after" else before
                    transformed = result[1] if side == "after" else result[0]
                    checks += 1
                    obs.add("variant_equiv_checks")
                    if not cfg_equivalent(original, transformed):
                        obs.add("variant_equiv_failures")
                        failures.append(
                            f"{sha[:10]} {path} variant {variant.variant_id} ({side})"
                        )
    return checks, failures
