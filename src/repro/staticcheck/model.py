"""Findings, per-file reports, and the aggregate lint report.

The model is deliberately flat and JSON-friendly: a CI job consumes the
report as an artifact (``--format json``), the gate consumes the severity
partition, and the feature channel consumes per-checker counts — all from
the same :class:`LintReport`.
"""

from __future__ import annotations

import enum
import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field

from ..errors import StaticCheckError

__all__ = ["Severity", "Finding", "FileReport", "LintReport", "shifted_finding_ids"]

#: Report format tag; bumped when the JSON layout changes.
REPORT_FORMAT = "repro-lint-report-v1"


class Severity(enum.Enum):
    """How a finding participates in the validation gate.

    ``GATE`` findings fail the gate (parse failures, scaffold leaks,
    side-effecting conditions); ``WARNING``/``INFO`` are advisory and feed
    the feature channel.
    """

    GATE = "gate"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True, slots=True)
class Finding:
    """One checker hit.

    Attributes:
        checker: the reporting checker's id.
        severity: gate participation class.
        path: file the finding is in.
        line: 1-based source line.
        message: human-readable description.
        function: enclosing function name, when known.
    """

    checker: str
    severity: Severity
    path: str
    line: int
    message: str
    function: str = ""

    @property
    def stable_id(self) -> str:
        """Deterministic 16-hex id over (checker, path, line, span hash).

        The span hash digests the finding's message and enclosing function
        — a stable proxy for the flagged source span — so re-running the
        same suite over the same text always yields the same id, and a
        baseline file can suppress previously recorded findings across
        runs and machines.
        """
        span = hashlib.sha1(f"{self.message}|{self.function}".encode()).hexdigest()[:8]
        key = f"{self.checker}|{self.path}|{self.line}|{span}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]

    def render(self) -> str:
        """One-line ``path:line [severity/checker] message`` form."""
        where = f"{self.path}:{self.line}"
        fn = f" in {self.function}()" if self.function else ""
        return f"{where} [{self.severity.value}/{self.checker}] {self.message}{fn}"

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "id": self.stable_id,
            "checker": self.checker,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "function": self.function,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(
            checker=data["checker"],
            severity=Severity(data["severity"]),
            path=data["path"],
            line=int(data["line"]),
            message=data["message"],
            function=data.get("function", ""),
        )


def shifted_finding_ids(report: "LintReport", insert_line: int, added: int) -> frozenset[str]:
    """Stable ids of *report*'s findings after a line insertion.

    When *added* lines are spliced in just below line *insert_line*
    (1-based; lines 1..insert_line keep their numbers), every finding
    below the splice moves down by *added* — this recomputes each id at
    its post-insertion line so a pre-mutation baseline can be subtracted
    from a post-mutation report without the shift masquerading as churn.
    """
    import dataclasses

    out = set()
    for fr in report.files:
        for f in fr.findings:
            line = f.line + added if f.line > insert_line else f.line
            out.add(dataclasses.replace(f, line=line).stable_id)
    return frozenset(out)


@dataclass(frozen=True, slots=True)
class FileReport:
    """All findings plus parse-coverage metrics for one file.

    Attributes:
        path: the analyzed file.
        findings: checker hits, ordered by (line, checker).
        parse_failed: the parser raised (gate-class condition).
        code_lines: lines carrying at least one code token.
        opaque_lines: code lines outside every parsed function (skipped as
            opaque by the recursive-descent parser).
    """

    path: str
    findings: tuple[Finding, ...] = ()
    parse_failed: bool = False
    code_lines: int = 0
    opaque_lines: int = 0

    @property
    def opaque_ratio(self) -> float:
        """Fraction of code lines the parser skipped (0.0 for empty files)."""
        if self.code_lines <= 0:
            return 0.0
        return self.opaque_lines / self.code_lines

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "parse_failed": self.parse_failed,
            "code_lines": self.code_lines,
            "opaque_lines": self.opaque_lines,
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            path=data["path"],
            findings=tuple(Finding.from_dict(f) for f in data["findings"]),
            parse_failed=bool(data.get("parse_failed", False)),
            code_lines=int(data.get("code_lines", 0)),
            opaque_lines=int(data.get("opaque_lines", 0)),
        )


@dataclass(slots=True)
class LintReport:
    """The aggregate result of one lint run."""

    files: list[FileReport] = field(default_factory=list)

    # ---- views --------------------------------------------------------

    def findings(self, severity: Severity | None = None) -> list[Finding]:
        """All findings, optionally restricted to one severity."""
        out = [f for fr in self.files for f in fr.findings]
        if severity is not None:
            out = [f for f in out if f.severity is severity]
        return out

    @property
    def gate_findings(self) -> list[Finding]:
        """The findings that fail the validation gate."""
        return self.findings(Severity.GATE)

    def counts_by_checker(self) -> dict[str, int]:
        """``checker id -> number of findings`` over the whole run."""
        return dict(Counter(f.checker for fr in self.files for f in fr.findings))

    def finding_ids(self) -> frozenset[str]:
        """The stable ids of every finding in the report."""
        return frozenset(f.stable_id for fr in self.files for f in fr.findings)

    def apply_baseline(self, baseline_ids: frozenset[str] | set[str]) -> "LintReport":
        """A copy of the report without findings recorded in a baseline.

        File entries (and their coverage metrics) are kept even when all of
        a file's findings are suppressed, so summaries stay comparable.
        """
        files = [
            FileReport(
                path=fr.path,
                findings=tuple(f for f in fr.findings if f.stable_id not in baseline_ids),
                parse_failed=fr.parse_failed,
                code_lines=fr.code_lines,
                opaque_lines=fr.opaque_lines,
            )
            for fr in self.files
        ]
        return LintReport(files=files)

    @property
    def code_lines(self) -> int:
        """Total code lines across analyzed files."""
        return sum(fr.code_lines for fr in self.files)

    @property
    def opaque_lines(self) -> int:
        """Total opaque code lines across analyzed files."""
        return sum(fr.opaque_lines for fr in self.files)

    @property
    def opaque_ratio(self) -> float:
        """Corpus-wide fraction of code lines skipped as opaque."""
        total = self.code_lines
        return self.opaque_lines / total if total else 0.0

    # ---- rendering ----------------------------------------------------

    def summary(self) -> dict:
        """Headline numbers (also embedded in the JSON form)."""
        findings = self.findings()
        return {
            "files": len(self.files),
            "findings": len(findings),
            "gate_findings": sum(1 for f in findings if f.severity is Severity.GATE),
            "parse_failures": sum(1 for fr in self.files if fr.parse_failed),
            "by_checker": self.counts_by_checker(),
            "opaque_ratio": round(self.opaque_ratio, 6),
        }

    def render_text(self, max_findings: int | None = None) -> str:
        """Human-readable report: findings then a summary block."""
        lines: list[str] = []
        shown = 0
        for fr in self.files:
            for f in fr.findings:
                if max_findings is not None and shown >= max_findings:
                    lines.append(f"... ({len(self.findings()) - shown} more findings)")
                    break
                lines.append(f.render())
                shown += 1
            else:
                continue
            break
        s = self.summary()
        lines.append(
            f"{s['files']} files, {s['findings']} findings "
            f"({s['gate_findings']} gate-class), "
            f"opaque ratio {s['opaque_ratio']:.1%}"
        )
        for checker, n in sorted(s["by_checker"].items()):
            lines.append(f"  {checker:>18s}: {n}")
        return "\n".join(lines)

    # ---- persistence --------------------------------------------------

    def to_json(self) -> str:
        """Serialize the full report (files + summary) to JSON."""
        return json.dumps(
            {
                "format": REPORT_FORMAT,
                "summary": self.summary(),
                "files": [fr.to_dict() for fr in self.files],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        """Parse a report produced by :meth:`to_json`.

        Raises:
            StaticCheckError: when the payload is not a lint report.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StaticCheckError(f"invalid lint report JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("format") != REPORT_FORMAT:
            raise StaticCheckError("not a repro lint report")
        return cls(files=[FileReport.from_dict(fr) for fr in data["files"]])
