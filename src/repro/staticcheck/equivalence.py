"""CFG-equivalence checking for Fig. 5 synthesis output.

A variant-transformed function must branch exactly like the original: the
scaffolding (constant guards, hoisted flags, flag-setting ``if``s) changes
the *syntax* of one condition, never the *control flow*.  This module
verifies that by descaffolding: it parses the transformed text, strips the
``_SYS_`` scaffold declarations and flag-toggle ``if``s, substitutes each of
the eight known template shapes back to the original condition, and
compares the resulting statement-level signature against the original's.

The signature is a nested tuple per function — statement kinds plus
token-normalized expression text — i.e. a control-flow skeleton.  Equal
skeletons mean every branch tests the same (normalized) condition and every
branch arm contains the same statements in the same order.

This is the second half of the validation gate: parse-coverage proves the
corpus is analyzable, :func:`cfg_equivalent` proves the synthesis
transformations are sound.
"""

from __future__ import annotations

from ..lang.ast_nodes import (
    BlockStmt,
    BreakStmt,
    CaseLabel,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GotoStmt,
    IfStmt,
    LabelStmt,
    NullStmt,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    WhileStmt,
)
from ..lang.lexer import code_tokens
from .checkers import SCAFFOLD_PREFIX

__all__ = ["cfg_signature", "descaffolded_signature", "cfg_equivalent"]


def _norm(text: str) -> str:
    """Token-normalized expression text (whitespace/newline insensitive)."""
    return " ".join(t.text for t in code_tokens(text))


def _strip_parens(texts: list[str]) -> list[str]:
    """Remove redundant full-width outer parentheses, repeatedly."""
    while len(texts) >= 2 and texts[0] == "(" and texts[-1] == ")":
        depth = 0
        for i, t in enumerate(texts):
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0 and i < len(texts) - 1:
                    return texts  # outer parens don't span the whole expr
        texts = texts[1:-1]
    return texts


def _norm_cond(text: str) -> str:
    """Normalized condition: tokenized, outer parens stripped."""
    return " ".join(_strip_parens([t.text for t in code_tokens(text)]))


class _Scaffold:
    """What one ``_SYS_`` identifier stands for.

    kind is one of ``const0``/``const1`` (variants 1-2), ``hoist``
    (variants 3-4, the hoisted condition), or ``flag_set``/``flag_clear``
    (variants 5-8, after the flag-toggle ``if`` is absorbed).  ``cond`` is
    the normalized hoisted/original condition; for ``hoist``, ``inner`` is
    the condition with one leading ``!`` stripped (None when the hoisted
    expression is not a negation) — variant 3 hoists ``c`` and tests
    ``1 == STMT``, variant 4 hoists ``!(c)`` and tests ``!STMT``, and a
    negated original condition makes the two declarations look alike, so
    both readings are kept.
    """

    __slots__ = ("kind", "cond", "inner")

    def __init__(self, kind: str, cond: str = "", inner: str | None = None) -> None:
        self.kind = kind
        self.cond = cond
        self.inner = inner


def _scan_scaffold_decl(text: str) -> tuple[str, _Scaffold] | None:
    """Recognize a scaffold declaration; returns (identifier, scaffold)."""
    texts = [t.text for t in code_tokens(text)]
    if texts and texts[-1] == ";":
        texts = texts[:-1]
    if texts[:1] == ["const"]:
        texts = texts[1:]
    if len(texts) < 4 or texts[0] != "int" or not texts[1].startswith(SCAFFOLD_PREFIX):
        return None
    name = texts[1]
    if texts[2] != "=":
        return None
    rhs = _strip_parens(texts[3:])
    if rhs == ["0"]:
        return name, _Scaffold("const0" if "_SYS_ZERO_" in name else "flag_init0")
    if rhs == ["1"]:
        return name, _Scaffold("const1" if "_SYS_ONE_" in name else "flag_init1")
    inner = " ".join(_strip_parens(rhs[1:])) if rhs[:1] == ["!"] else None
    return name, _Scaffold("hoist", " ".join(rhs), inner)


def _flag_toggle(stmt: IfStmt) -> tuple[str, str, str] | None:
    """Recognize ``if (cond) { _SYS_VAL_x = 0|1; }``; returns (name, value, cond)."""
    then = stmt.then
    if isinstance(then, BlockStmt) and len(then.stmts) == 1:
        then = then.stmts[0]
    if not isinstance(then, ExprStmt) or stmt.orelse is not None:
        return None
    texts = [t.text for t in code_tokens(then.text)]
    if texts and texts[-1] == ";":
        texts = texts[:-1]
    if (
        len(texts) == 3
        and texts[0].startswith(SCAFFOLD_PREFIX)
        and texts[1] == "="
        and texts[2] in ("0", "1")
    ):
        return texts[0], texts[2], _norm_cond(stmt.cond.text)
    return None


def _resolve_cond(text: str, env: dict[str, _Scaffold]) -> str:
    """Substitute a known template shape back to the original condition."""
    texts = _strip_parens([t.text for t in code_tokens(text)])
    if not texts:
        return ""

    def done(ts: list[str]) -> str:
        return " ".join(_strip_parens(ts))

    head = texts[0]
    sc = env.get(head)
    if sc is not None:
        # v1: ZERO || c          v2: ONE && c          v7: VAL && c
        if sc.kind == "const0" and texts[1:2] == ["||"]:
            return done(texts[2:])
        if sc.kind == "const1" and texts[1:2] == ["&&"]:
            return done(texts[2:])
        if sc.kind == "flag_set" and texts[1:2] == ["&&"] and done(texts[2:]) == sc.cond:
            return sc.cond
        # v5: VAL (flag set on cond)
        if sc.kind == "flag_set" and len(texts) == 1:
            return sc.cond
    if head == "!" and len(texts) >= 2:
        sc = env.get(texts[1])
        if sc is not None:
            # v4: !STMT where STMT = !(c)
            if sc.kind == "hoist" and sc.inner is not None and len(texts) == 2:
                return sc.inner
            # v6: !VAL (flag cleared on cond)
            if sc.kind == "flag_clear" and len(texts) == 2:
                return sc.cond
            # v8: !VAL || c
            if sc.kind == "flag_clear" and texts[2:3] == ["||"] and done(texts[3:]) == sc.cond:
                return sc.cond
    # v3: 1 == STMT where STMT = c
    if len(texts) == 3 and texts[0] == "1" and texts[1] == "==":
        sc = env.get(texts[2])
        if sc is not None and sc.kind == "hoist":
            return sc.cond
    return " ".join(texts)


def _sig_block(stmts: list[Stmt], env: dict[str, _Scaffold], descaffold: bool) -> tuple:
    out: list[tuple] = []
    for stmt in stmts:
        if descaffold:
            if isinstance(stmt, DeclStmt):
                found = _scan_scaffold_decl(stmt.text)
                if found is not None:
                    env[found[0]] = found[1]
                    continue
            if isinstance(stmt, IfStmt):
                toggle = _flag_toggle(stmt)
                if toggle is not None:
                    name, value, cond = toggle
                    init = env.get(name)
                    if init is not None and init.kind in ("flag_init0", "flag_init1"):
                        kind = "flag_set" if value == "1" else "flag_clear"
                        env[name] = _Scaffold(kind, cond)
                        continue
        out.append(_sig_stmt(stmt, env, descaffold))
    return tuple(out)


def _sig_stmt(stmt: Stmt, env: dict[str, _Scaffold], descaffold: bool) -> tuple:
    def cond_of(text: str) -> str:
        return _resolve_cond(text, env) if descaffold else _norm_cond(text)

    if isinstance(stmt, BlockStmt):
        return ("block", _sig_block(stmt.stmts, env, descaffold))
    if isinstance(stmt, IfStmt):
        return (
            "if",
            cond_of(stmt.cond.text),
            _sig_stmt(stmt.then, env, descaffold),
            _sig_stmt(stmt.orelse, env, descaffold) if stmt.orelse is not None else None,
        )
    if isinstance(stmt, WhileStmt):
        return ("while", cond_of(stmt.cond.text), _sig_stmt(stmt.body, env, descaffold))
    if isinstance(stmt, DoWhileStmt):
        return ("do-while", cond_of(stmt.cond.text), _sig_stmt(stmt.body, env, descaffold))
    if isinstance(stmt, ForStmt):
        return ("for", _norm(stmt.clauses), _sig_stmt(stmt.body, env, descaffold))
    if isinstance(stmt, SwitchStmt):
        return ("switch", cond_of(stmt.cond.text), _sig_stmt(stmt.body, env, descaffold))
    if isinstance(stmt, CaseLabel):
        return ("case", _norm(stmt.label_text))
    if isinstance(stmt, ReturnStmt):
        return ("return", _norm(stmt.value_text))
    if isinstance(stmt, GotoStmt):
        return ("goto", stmt.label)
    if isinstance(stmt, BreakStmt):
        return ("break",)
    if isinstance(stmt, ContinueStmt):
        return ("continue",)
    if isinstance(stmt, LabelStmt):
        inner = _sig_stmt(stmt.stmt, env, descaffold) if stmt.stmt is not None else None
        return ("label", stmt.name, inner)
    if isinstance(stmt, NullStmt):
        return ("null",)
    if isinstance(stmt, DeclStmt):
        return ("decl", _norm(stmt.text))
    if isinstance(stmt, ExprStmt):
        return ("expr", _norm(stmt.text))
    return (type(stmt).__name__,)


def _unit_signature(functions: list[FunctionDef], descaffold: bool) -> tuple:
    out = []
    for fn in functions:
        env: dict[str, _Scaffold] = {}
        out.append((fn.name, _sig_block(fn.body.stmts, env, descaffold)))
    return tuple(out)


def cfg_signature(source: str, path: str = "<memory>") -> tuple:
    """The control-flow skeleton of *source*: per-function nested tuples.

    Raises:
        ParseError: via the parser, when *source* cannot be parsed at all.
    """
    from ..lang.parser import parse_translation_unit

    unit = parse_translation_unit(source, path)
    return _unit_signature(list(unit.functions), descaffold=False)


def descaffolded_signature(source: str, path: str = "<memory>") -> tuple:
    """Like :func:`cfg_signature`, but with Fig. 5 scaffolding inverted.

    Scaffold declarations and flag-toggle ``if``s are dropped, and
    conditions matching one of the eight template shapes are substituted
    back to the original condition.  Unknown ``_SYS_`` shapes are left in
    place, so a buggy template shows up as a signature mismatch rather than
    being silently accepted.
    """
    from ..lang.parser import parse_translation_unit

    unit = parse_translation_unit(source, path)
    return _unit_signature(list(unit.functions), descaffold=True)


def cfg_equivalent(original: str, transformed: str) -> bool:
    """True when *transformed* descaffolds to *original*'s skeleton.

    Either text failing to parse counts as non-equivalent rather than
    raising: the gate treats that as a finding, not a crash.
    """
    try:
        return cfg_signature(original) == descaffolded_signature(transformed)
    except Exception:
        return False
