"""The checker suite: eight AST/token-level static checks.

Each checker consumes a read-only :class:`~repro.staticcheck.context.CheckContext`
and emits :class:`~repro.staticcheck.model.Finding` objects.  Severity
partitions the suite into the validation gate (parse failures, scaffold
leaks, side-effecting conditions — conditions the corpus generators and the
Fig. 5 templates are contractually required to uphold) and advisory
channels (dangerous APIs, missing checks, unreachable code, alloc/free
imbalance, declaration order) whose per-patch deltas feed the feature
extension block.

Checkers are stateless and cheap to construct, so process-pool workers
rebuild them from ids via :func:`make_checkers`.

The missing-check, alloc-free, and decl-use checkers run in one of two
modes: the original token/AST heuristic, or (the default) the heuristic
refined by dataflow facts from :mod:`repro.staticcheck.dataflow` —
reaching definitions veto constant-index and re-pointed-pointer findings,
and the must-declared analysis vetoes goto-reordered declaration findings.
The dataflow mode only ever *suppresses* heuristic candidates, so it is
strictly more precise while preserving recall by construction;
``make_checkers(dataflow=False)`` recovers the heuristic for comparison.
"""

from __future__ import annotations

from ..errors import StaticCheckError
from ..lang.ast_nodes import (
    BlockStmt,
    BreakStmt,
    CaseLabel,
    ContinueStmt,
    DeclStmt,
    FunctionDef,
    GotoStmt,
    LabelStmt,
    ReturnStmt,
    walk,
)
from ..lang.lexer import code_tokens
from ..lang.sideeffects import expression_side_effects
from ..lang.tokens import TokenKind
from .context import CheckContext
from .dataflow import ALLOCATORS, FREES, declared_names
from .model import Finding, Severity

__all__ = [
    "Checker",
    "CHECKER_IDS",
    "make_checkers",
    "DangerousApiChecker",
    "MissingCheckChecker",
    "SideEffectCondChecker",
    "UnreachableCodeChecker",
    "AllocFreeChecker",
    "ScaffoldLeakChecker",
    "DeclBeforeUseChecker",
    "ParseCoverageChecker",
]

#: APIs with no bounds checking at all (CWE-120 family).
_DANGEROUS_CALLS = frozenset({"strcpy", "strcat", "sprintf", "vsprintf", "gets", "stpcpy"})

#: Length-taking copy APIs whose size argument should be derived, not raw.
_SIZED_COPIES = frozenset({"memcpy", "memmove"})

#: Allocators whose result should be freed, returned, or escape the function
#: (shared with the dataflow module's definition classifier).
_ALLOCATORS = ALLOCATORS

#: Deallocation entry points.
_FREES = FREES

#: Identifier prefix of Fig. 5 scaffolding (see repro.synthesis.variants).
SCAFFOLD_PREFIX = "_SYS_"

#: A file is reported when the parser skipped more than this fraction of it.
OPAQUE_RATIO_THRESHOLD = 0.6


class Checker:
    """Base class: a named, severity-classed check over one file."""

    #: Unique id used in findings, CLI filters, and the feature channel.
    id: str = ""
    #: Default severity of this checker's findings.
    severity: Severity = Severity.WARNING
    #: One-line description (surfaced by ``repro lint --list-checkers``).
    description: str = ""

    def check(self, ctx: CheckContext) -> list[Finding]:
        """Run the check; override in subclasses."""
        raise NotImplementedError

    def finding(self, ctx: CheckContext, line: int, message: str, severity: Severity | None = None) -> Finding:
        """Construct a finding attributed to *line* of the context's file."""
        return Finding(
            checker=self.id,
            severity=severity if severity is not None else self.severity,
            path=ctx.path,
            line=line,
            message=message,
            function=ctx.function_at(line),
        )


class DangerousApiChecker(Checker):
    """Flags unbounded string/memory APIs (token-level, covers opaque code)."""

    id = "dangerous-api"
    severity = Severity.WARNING
    description = "strcpy/sprintf-family calls and memcpy with a raw length"

    def check(self, ctx: CheckContext) -> list[Finding]:
        out: list[Finding] = []
        tokens = ctx.tokens
        for i, tok in enumerate(tokens):
            if tok.kind is not TokenKind.IDENTIFIER or i + 1 >= len(tokens):
                continue
            if tokens[i + 1].text != "(":
                continue
            if tok.text in _DANGEROUS_CALLS:
                out.append(
                    self.finding(ctx, tok.line, f"call to {tok.text}() performs no bounds checking")
                )
            elif tok.text in _SIZED_COPIES:
                args = _call_args(tokens, i + 1)
                if len(args) == 3 and not _is_derived_length(args[2]):
                    out.append(
                        self.finding(
                            ctx,
                            tok.line,
                            f"{tok.text}() length is neither a constant nor sizeof-derived",
                        )
                    )
        return out


def _call_args(tokens, open_idx: int) -> list[list]:
    """Split the argument tokens of a call whose '(' sits at *open_idx*."""
    args: list[list] = [[]]
    depth = 0
    for tok in tokens[open_idx:]:
        if tok.text in ("(", "["):
            depth += 1
            if depth == 1:
                continue
        elif tok.text in (")", "]"):
            depth -= 1
            if depth == 0:
                break
        elif tok.text == "," and depth == 1:
            args.append([])
            continue
        if depth >= 1:
            args[-1].append(tok)
    return args if args != [[]] else []


def _is_derived_length(arg_tokens) -> bool:
    """True when a length argument is a literal or mentions sizeof/strlen."""
    for tok in arg_tokens:
        if tok.kind is TokenKind.NUMBER:
            return True
        if tok.text in ("sizeof", "strlen", "strnlen"):
            return True
    return False


class MissingCheckChecker(Checker):
    """Indexing/deref through values never validated by any earlier condition.

    In dataflow mode, reaching definitions veto two heuristic candidates:
    an index whose every reaching definition is a literal constant needs no
    bounds check, and a pointer parameter re-pointed at a local (``p =
    &obj``) or a fresh allocation before the dereference cannot be NULL.
    """

    id = "missing-check"
    severity = Severity.WARNING
    description = "array index or pointer parameter used without a prior check"
    supports_dataflow = True

    def __init__(self, dataflow: bool = True) -> None:
        self.dataflow = dataflow

    def check(self, ctx: CheckContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in ctx.functions:
            out.extend(self._check_function(ctx, fn))
        return out

    def _const_index(self, ctx: CheckContext, fn: FunctionDef, tok) -> bool:
        """All reaching definitions of the index are literal constants."""
        flow = ctx.flow(fn) if self.dataflow else None
        if flow is None:
            return False
        defs = flow.reaching_for(tok.line, tok.text)
        return bool(defs) and all(d.kind == "const" for d in defs)

    def _repointed(self, ctx: CheckContext, fn: FunctionDef, tok) -> bool:
        """All reaching definitions of the pointer are &-of or allocations."""
        flow = ctx.flow(fn) if self.dataflow else None
        if flow is None:
            return False
        defs = flow.reaching_for(tok.line, tok.text)
        return bool(defs) and all(d.kind in ("addr", "alloc") for d in defs)

    def _check_function(self, ctx: CheckContext, fn: FunctionDef) -> list[Finding]:
        # Identifier -> earliest line it is mentioned by a condition.
        checked_at: dict[str, int] = {}
        for site in ctx.condition_sites():
            if not (fn.start_line <= site.line <= fn.end_line):
                continue
            for tok in code_tokens(site.text):
                if tok.kind is TokenKind.IDENTIFIER:
                    checked_at.setdefault(tok.text, site.line)

        pointer_params = _pointer_params(fn.params_text)
        tokens = ctx.function_tokens(fn)
        out: list[Finding] = []
        seen: set[tuple[str, str]] = set()
        for i, tok in enumerate(tokens):
            if tok.kind is not TokenKind.IDENTIFIER:
                continue
            # buf[idx] with a variable index never seen by a condition.
            if (
                i + 3 < len(tokens)
                and tokens[i + 1].text == "["
                and tokens[i + 2].kind is TokenKind.IDENTIFIER
                and tokens[i + 3].text == "]"
            ):
                idx = tokens[i + 2]
                key = ("index", idx.text)
                if key not in seen and checked_at.get(idx.text, idx.line + 1) > idx.line:
                    seen.add(key)
                    if self._const_index(ctx, fn, idx):
                        continue
                    out.append(
                        self.finding(
                            ctx,
                            idx.line,
                            f"index '{idx.text}' used without a prior bounds check",
                        )
                    )
            # p->field where p is a pointer parameter never null-checked.
            if (
                tok.text in pointer_params
                and i + 1 < len(tokens)
                and tokens[i + 1].text == "->"
            ):
                key = ("deref", tok.text)
                if key not in seen and checked_at.get(tok.text, tok.line + 1) > tok.line:
                    seen.add(key)
                    if self._repointed(ctx, fn, tok):
                        continue
                    out.append(
                        self.finding(
                            ctx,
                            tok.line,
                            f"pointer parameter '{tok.text}' dereferenced without a NULL check",
                        )
                    )
        return out


def _pointer_params(params_text: str) -> set[str]:
    """Names of pointer-typed parameters in a parameter list's text."""
    out: set[str] = set()
    toks = code_tokens(params_text)
    for i, tok in enumerate(toks):
        if tok.text == "*" and i + 1 < len(toks) and toks[i + 1].kind is TokenKind.IDENTIFIER:
            nxt = toks[i + 2].text if i + 2 < len(toks) else ")"
            if nxt in (",", ")", "[", ""):
                out.add(toks[i + 1].text)
    return out


class SideEffectCondChecker(Checker):
    """Assignments, ``++``/``--``, or calls inside condition expressions.

    Gate-class: the corpus generators never emit side-effecting conditions
    and the Fig. 5 templates require their absence, so any hit is either a
    generator bug or an unsound synthesis input.
    """

    id = "side-effect-cond"
    severity = Severity.GATE
    description = "side-effecting expression inside an if/while/switch condition"

    def check(self, ctx: CheckContext) -> list[Finding]:
        out: list[Finding] = []
        for site in ctx.condition_sites():
            for effect in expression_side_effects(site.text):
                out.append(
                    self.finding(
                        ctx,
                        site.line,
                        f"{site.kind} condition has a side effect: {effect.describe()}",
                    )
                )
        return out


class UnreachableCodeChecker(Checker):
    """Statements following an unconditional jump inside the same block."""

    id = "unreachable"
    severity = Severity.WARNING
    description = "code after return/goto/break/continue in the same block"

    _JUMPS = (ReturnStmt, GotoStmt, BreakStmt, ContinueStmt)

    def check(self, ctx: CheckContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in ctx.functions:
            for node in walk(fn):
                if not isinstance(node, BlockStmt):
                    continue
                jumped = False
                for stmt in node.stmts:
                    if jumped:
                        # Labels and case arms are legitimate jump targets.
                        if isinstance(stmt, (CaseLabel, LabelStmt)):
                            jumped = False
                            continue
                        out.append(
                            self.finding(ctx, stmt.start_line, "statement is unreachable")
                        )
                        break  # one finding per block is enough
                    if isinstance(stmt, self._JUMPS):
                        jumped = True
        return out


class AllocFreeChecker(Checker):
    """Per-function alloc/free imbalance: leaks and double frees.

    In dataflow mode, a double-free candidate is vetoed when the
    definitions reaching the two ``free`` calls are disjoint — the pointer
    was re-pointed (e.g. at a fresh allocation) between the frees, so the
    second call releases a different object.
    """

    id = "alloc-free"
    severity = Severity.INFO
    description = "locally allocated pointer never freed/escaping, or freed twice"
    supports_dataflow = True

    def __init__(self, dataflow: bool = True) -> None:
        self.dataflow = dataflow

    def check(self, ctx: CheckContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in ctx.functions:
            out.extend(self._check_function(ctx, fn))
        return out

    def _repointed_between_frees(self, ctx: CheckContext, fn: FunctionDef, ident: str) -> bool:
        """Every pair of successive frees of *ident* sees disjoint defs."""
        flow = ctx.flow(fn) if self.dataflow else None
        if flow is None:
            return False
        free_atoms = flow.free_atoms(ident)
        if len(free_atoms) < 2:
            return False
        for a, b in zip(free_atoms, free_atoms[1:]):
            reach_a = flow.reaching_at_atom(a, ident)
            reach_b = flow.reaching_at_atom(b, ident)
            if not reach_a or not reach_b or (reach_a & reach_b):
                return False
        return True

    def _check_function(self, ctx: CheckContext, fn: FunctionDef) -> list[Finding]:
        tokens = ctx.function_tokens(fn)
        allocated: dict[str, int] = {}  # ident -> alloc line
        freed: dict[str, list[int]] = {}
        escaped: set[str] = set()
        in_return_until: int = -1

        for i, tok in enumerate(tokens):
            if tok.kind is TokenKind.KEYWORD and tok.text == "return":
                in_return_until = tok.line
            if tok.kind is not TokenKind.IDENTIFIER:
                continue
            nxt = tokens[i + 1].text if i + 1 < len(tokens) else ""
            if tok.text in _ALLOCATORS and nxt == "(":
                target = _assignment_target(tokens, i)
                if target:
                    allocated.setdefault(target, tok.line)
                continue
            if tok.text in _FREES and nxt == "(":
                if i + 2 < len(tokens) and tokens[i + 2].kind is TokenKind.IDENTIFIER:
                    freed.setdefault(tokens[i + 2].text, []).append(tok.line)
                continue
            # Escapes: returned, passed to a call, or copied to another lvalue.
            prev = tokens[i - 1].text if i > 0 else ""
            if tok.line == in_return_until:
                escaped.add(tok.text)
            elif prev in ("(", ",") or (prev == "=" and nxt in (";", ",")):
                escaped.add(tok.text)

        out: list[Finding] = []
        for ident, line in sorted(allocated.items(), key=lambda kv: kv[1]):
            if ident not in freed and ident not in escaped:
                out.append(
                    self.finding(
                        ctx, line, f"'{ident}' is allocated but never freed, returned, or passed on"
                    )
                )
        for ident, lines in sorted(freed.items()):
            if len(lines) > 1:
                if self._repointed_between_frees(ctx, fn, ident):
                    continue
                out.append(
                    self.finding(
                        ctx,
                        lines[1],
                        f"'{ident}' freed {len(lines)} times in one function (possible double free)",
                    )
                )
        return out


def _assignment_target(tokens, alloc_idx: int) -> str:
    """The identifier assigned from an allocator call, skipping casts."""
    j = alloc_idx - 1
    # Skip a cast like '(char *)' directly before the allocator.
    if j >= 0 and tokens[j].text == ")":
        depth = 1
        j -= 1
        while j >= 0 and depth:
            if tokens[j].text == ")":
                depth += 1
            elif tokens[j].text == "(":
                depth -= 1
            j -= 1
    if j >= 0 and tokens[j].text == "=" and j >= 1 and tokens[j - 1].kind is TokenKind.IDENTIFIER:
        return tokens[j - 1].text
    return ""


class ScaffoldLeakChecker(Checker):
    """``_SYS_`` scaffold identifiers outside synthesis output.

    The Fig. 5 templates own the ``_SYS_`` namespace; corpus files and
    natural patches must never contain it, so a hit means synthetic text
    leaked into a place it does not belong.
    """

    id = "scaffold-leak"
    severity = Severity.GATE
    description = "_SYS_ synthesis-scaffold identifier outside synthesis output"

    def check(self, ctx: CheckContext) -> list[Finding]:
        out: list[Finding] = []
        seen: set[str] = set()
        for tok in ctx.tokens:
            if (
                tok.kind is TokenKind.IDENTIFIER
                and tok.text.startswith(SCAFFOLD_PREFIX)
                and tok.text not in seen
            ):
                seen.add(tok.text)
                out.append(
                    self.finding(ctx, tok.line, f"scaffold identifier '{tok.text}' leaked here")
                )
        return out


class DeclBeforeUseChecker(Checker):
    """A local used on a line before its (only) declaration in the function.

    In dataflow mode two candidate classes are vetoed: mentions that are
    really member accesses (``s.name`` / ``p->name`` — a field, not the
    local), and mentions whose declaration reaches every path from the
    entry (possible despite later line order when control flows through a
    ``goto``), via the must-declared analysis.
    """

    id = "decl-use"
    severity = Severity.WARNING
    description = "identifier used before its local declaration"
    supports_dataflow = True

    def __init__(self, dataflow: bool = True) -> None:
        self.dataflow = dataflow

    def check(self, ctx: CheckContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in ctx.functions:
            decls: dict[str, list[int]] = {}
            for node in walk(fn):
                if isinstance(node, DeclStmt):
                    for name in _declared_names(node.text):
                        decls.setdefault(name, []).append(node.start_line)
            params = {t.text for t in code_tokens(fn.params_text) if t.kind is TokenKind.IDENTIFIER}
            flagged: set[str] = set()
            fn_tokens = ctx.function_tokens(fn)
            for i, tok in enumerate(fn_tokens):
                if tok.kind is not TokenKind.IDENTIFIER or tok.text in params:
                    continue
                lines = decls.get(tok.text)
                # Only single-declaration names: shadowing makes multi-decl
                # cases ambiguous at this level of analysis.
                if lines and len(lines) == 1 and tok.line < lines[0] and tok.text not in flagged:
                    flagged.add(tok.text)
                    if self.dataflow and self._vetoed(ctx, fn, fn_tokens, i):
                        continue
                    # The declaration's line is deliberately NOT in the
                    # message: stable finding ids digest the message, and a
                    # line number here would churn every id below an edit
                    # (breaking baseline suppression across insertions).
                    out.append(
                        self.finding(
                            ctx,
                            tok.line,
                            f"'{tok.text}' used before its declaration",
                        )
                    )
        return out

    def _vetoed(self, ctx: CheckContext, fn: FunctionDef, fn_tokens, i: int) -> bool:
        tok = fn_tokens[i]
        prev = fn_tokens[i - 1].text if i > 0 else ""
        if prev in (".", "->"):
            return True  # member access: the field shadows no local
        flow = ctx.flow(fn)
        return flow is not None and flow.declared_before(tok.line, tok.text)


#: Declared identifiers in a declaration statement's source text
#: (canonical implementation lives with the dataflow definitions scanner).
_declared_names = declared_names


class ParseCoverageChecker(Checker):
    """Parse failures (gate) and files mostly skipped as opaque (warning)."""

    id = "parse-coverage"
    severity = Severity.WARNING
    description = "file failed to parse, or most of it was skipped as opaque"

    def check(self, ctx: CheckContext) -> list[Finding]:
        ctx.unit  # noqa: B018 - trigger the lazy parse so parse_error is set
        if ctx.parse_error is not None:
            severity = Severity.WARNING if ctx.is_fragment else Severity.GATE
            return [self.finding(ctx, 1, f"file failed to parse: {ctx.parse_error}", severity)]
        if ctx.is_fragment or not ctx.path.endswith(".c"):
            return []
        code, opaque = ctx.coverage()
        if code >= 5 and opaque / code > OPAQUE_RATIO_THRESHOLD:
            return [
                self.finding(
                    ctx,
                    1,
                    f"{opaque}/{code} code lines ({opaque / code:.0%}) skipped as opaque regions",
                )
            ]
        return []


#: Registry, in the canonical order used by the feature channel.
_REGISTRY: tuple[type[Checker], ...] = (
    DangerousApiChecker,
    MissingCheckChecker,
    SideEffectCondChecker,
    UnreachableCodeChecker,
    AllocFreeChecker,
    ScaffoldLeakChecker,
    DeclBeforeUseChecker,
    ParseCoverageChecker,
)

#: Canonical checker ids, in registry order.
CHECKER_IDS: tuple[str, ...] = tuple(cls.id for cls in _REGISTRY)

_BY_ID = {cls.id: cls for cls in _REGISTRY}


def make_checkers(
    ids: tuple[str, ...] | list[str] | None = None,
    dataflow: bool = True,
) -> list[Checker]:
    """Instantiate checkers by id (all of them when *ids* is None).

    Args:
        ids: checker ids to instantiate, in the given order.
        dataflow: run the missing-check/alloc-free/decl-use checkers with
            dataflow-fact refinement (the default) or as pure heuristics.

    Raises:
        StaticCheckError: for an unknown checker id.
    """
    if ids is None:
        ids = CHECKER_IDS
    unknown = [i for i in ids if i not in _BY_ID]
    if unknown:
        raise StaticCheckError(
            f"unknown checker id(s): {', '.join(unknown)} (choose from {', '.join(CHECKER_IDS)})"
        )
    return [
        _BY_ID[i](dataflow=dataflow) if getattr(_BY_ID[i], "supports_dataflow", False) else _BY_ID[i]()
        for i in ids
    ]
