"""Checker-delta features: what a patch does to static-analysis findings.

A security patch typically *removes* findings (it adds the missing bounds
check, replaces the strcpy) while feature-neutral churn doesn't, so the
per-checker delta between a commit's BEFORE and AFTER trees is a plausible
signal on top of the 60 syntactic Table I features.  This module computes,
for each checker, how many findings the patch removed and how many it
introduced — a 16-dimensional extension block appended to the base matrix
in the Table VI-style ablation
(:func:`~repro.analysis.experiments.run_checkdelta_ablation`).

File-level counts are memoized by ``(path, text digest)``: consecutive
commits share almost all file contents, so a world-wide sweep lints each
distinct blob once.
"""

from __future__ import annotations

import hashlib
from collections import Counter

import numpy as np

from ..obs import ObsRegistry
from .analyzer import CODE_SUFFIXES, analyze_source
from .checkers import CHECKER_IDS, make_checkers

__all__ = [
    "DELTA_FEATURE_NAMES",
    "DELTA_FEATURE_COUNT",
    "CheckerDeltaCache",
    "extend_matrix",
]

#: Names of the extension block: removed/introduced per checker, in
#: registry order.
DELTA_FEATURE_NAMES: tuple[str, ...] = tuple(
    f"delta_{direction}_{checker_id.replace('-', '_')}"
    for checker_id in CHECKER_IDS
    for direction in ("removed", "introduced")
)

DELTA_FEATURE_COUNT = len(DELTA_FEATURE_NAMES)


class CheckerDeltaCache:
    """sha → 16-dim checker-delta vector for one world's commits.

    Args:
        world: the world holding repositories and patches.
        obs: observability registry (``delta`` timer,
            ``delta_vectors``/``delta_blob_cache_hits`` counters).
    """

    def __init__(self, world, obs: ObsRegistry | None = None) -> None:
        self._world = world
        self._checkers = make_checkers()
        self._blob_counts: dict[tuple[str, str], Counter] = {}
        self._vectors: dict[str, np.ndarray] = {}
        self.obs = obs if obs is not None else ObsRegistry()

    def _counts(self, path: str, text: str) -> Counter:
        """Per-checker finding counts for one file text (blob-memoized)."""
        key = (path, hashlib.sha1(text.encode("utf-8", "replace")).hexdigest())
        cached = self._blob_counts.get(key)
        if cached is not None:
            self.obs.add("delta_blob_cache_hits")
            return cached
        report = analyze_source(path, text, self._checkers)
        counts = Counter(f.checker for f in report.findings)
        self._blob_counts[key] = counts
        return counts

    def vector(self, sha: str) -> np.ndarray:
        """The (16,) removed/introduced vector for one commit.

        Deltas are computed per touched code file and then summed, so a
        finding removed in one file cannot cancel one introduced in
        another.
        """
        vec = self._vectors.get(sha)
        if vec is not None:
            return vec
        with self.obs.timer("delta"):
            repo = self._world.repo_of(sha)
            before_tree, after_tree = repo.before_after(sha)
            patch = self._world.patch_for(sha)
            removed: Counter = Counter()
            introduced: Counter = Counter()
            for fdiff in patch.files:
                path = fdiff.path
                if not path.endswith(CODE_SUFFIXES):
                    continue
                before = self._counts(path, before_tree.get(path, ""))
                after = self._counts(path, after_tree.get(path, ""))
                for checker_id in CHECKER_IDS:
                    diff = after.get(checker_id, 0) - before.get(checker_id, 0)
                    if diff > 0:
                        introduced[checker_id] += diff
                    elif diff < 0:
                        removed[checker_id] += -diff
            vec = np.array(
                [
                    float(counter.get(checker_id, 0))
                    for checker_id in CHECKER_IDS
                    for counter in (removed, introduced)
                ],
                dtype=np.float64,
            )
        self._vectors[sha] = vec
        self.obs.add("delta_vectors")
        return vec

    def matrix(self, shas: list[str]) -> np.ndarray:
        """Stack delta vectors for *shas* into an ``(N, 16)`` matrix."""
        if not shas:
            return np.zeros((0, DELTA_FEATURE_COUNT), dtype=np.float64)
        return np.vstack([self.vector(s) for s in shas])

    def __len__(self) -> int:
        return len(self._vectors)


def extend_matrix(base: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """Append the delta block to a base feature matrix (row-aligned)."""
    if base.shape[0] != deltas.shape[0]:
        raise ValueError(
            f"row mismatch: base has {base.shape[0]} rows, deltas {deltas.shape[0]}"
        )
    return np.hstack([base, deltas])
