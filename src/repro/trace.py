"""Reading and rendering exported run traces (``python -m repro trace``).

A trace file is the JSONL written by :meth:`repro.obs.ObsRegistry.export_trace`:
one ``manifest`` record (run identity: command, scale, seed, world digest,
wall clock), one ``span`` record per span, and one ``summary`` record (flat
timers, call counts, counters, histogram quantiles).  This module parses
that file back into a span tree and renders the two views a human wants
first: the tree ("what nested under what, and how long") and the top
phases ("where did the time go").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .errors import ReproError

__all__ = [
    "Trace",
    "TraceNode",
    "fetch_trace",
    "load_trace",
    "parse_trace",
    "render_span_tree",
    "render_top_phases",
]


@dataclass(slots=True)
class TraceNode:
    """One span plus its children, reconstructed from the flat records."""

    span_id: int
    name: str
    attributes: dict[str, Any]
    start: float
    duration: float
    children: list["TraceNode"] = field(default_factory=list)


@dataclass(slots=True)
class Trace:
    """A parsed trace file: manifest, span roots, and the flat summary."""

    manifest: dict[str, Any]
    roots: list[TraceNode]
    summary: dict[str, Any]
    n_spans: int


def _fmt_seconds(seconds: float) -> str:
    if seconds < 0:
        return "(open)"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.3f}s"


def load_trace(path: str | Path) -> Trace:
    """Parse a trace JSONL file into a :class:`Trace`.

    Raises:
        ReproError: unreadable file, malformed JSON line, or no records.
    """
    target = Path(path)
    try:
        text = target.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read trace file {target}: {exc}") from exc
    return parse_trace(text, origin=str(target))


def fetch_trace(url: str, timeout: float = 10.0) -> Trace:
    """Fetch and parse live traces from a running server's ``/v1/traces``.

    *url* may be a server base (``http://host:port``) — the traces path is
    appended — or a full endpoint URL (anything whose path already points
    at the JSONL).  The payload is the same ``repro-run-manifest-v1``
    format as an exported file, so the result renders identically.

    Raises:
        ReproError: unreachable server or malformed payload.
    """
    import urllib.error
    import urllib.request

    target = url.rstrip("/")
    if not target.endswith("/v1/traces") and "?" not in target:
        target = f"{target}/v1/traces"
    try:
        with urllib.request.urlopen(target, timeout=timeout) as resp:
            text = resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as exc:
        raise ReproError(f"cannot fetch traces from {target}: {exc}") from exc
    return parse_trace(text, origin=target)


def parse_trace(text: str, origin: str = "<trace>") -> Trace:
    """Parse trace JSONL text into a :class:`Trace`.

    The span tree is rebuilt from the ``parent`` links; spans whose parent
    never appears (e.g. a truncated file) become roots rather than being
    dropped, and children are ordered by start time.

    Raises:
        ReproError: malformed JSON line or no records.
    """
    target = origin
    manifest: dict[str, Any] = {}
    summary: dict[str, Any] = {}
    spans: list[dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{target}:{lineno}: malformed trace record: {exc}") from exc
        kind = record.get("type")
        if kind == "manifest":
            manifest = {k: v for k, v in record.items() if k != "type"}
        elif kind == "summary":
            summary = {k: v for k, v in record.items() if k != "type"}
        elif kind == "span":
            spans.append(record)
    if not manifest and not summary and not spans:
        raise ReproError(f"{target}: no trace records found")

    nodes: dict[int, TraceNode] = {}
    for record in spans:
        nodes[record["id"]] = TraceNode(
            span_id=record["id"],
            name=record.get("name", "?"),
            attributes=record.get("attrs", {}) or {},
            start=record.get("start", 0.0),
            duration=record.get("duration", -1.0),
        )
    roots: list[TraceNode] = []
    for record in spans:
        node = nodes[record["id"]]
        parent = nodes.get(record.get("parent"))
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start, n.span_id))
    roots.sort(key=lambda n: (n.start, n.span_id))
    return Trace(manifest=manifest, roots=roots, summary=summary, n_spans=len(spans))


def render_span_tree(trace: Trace) -> str:
    """The span tree as indented text, one line per span with duration/attrs."""
    lines: list[str] = []
    if trace.manifest:
        parts = [
            f"{key}={trace.manifest[key]}"
            for key in ("command", "scale", "seed", "world_digest")
            if key in trace.manifest
        ]
        lines.append("manifest: " + (" ".join(parts) if parts else "(empty)"))
    if not trace.roots:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    def walk(node: TraceNode, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        attrs = " ".join(f"{k}={v}" for k, v in node.attributes.items())
        label = f"{node.name}  {_fmt_seconds(node.duration)}"
        if attrs:
            label += f"  [{attrs}]"
        lines.append(prefix + connector + label)
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False)

    for root in trace.roots:
        walk(root, "", True, True)
    return "\n".join(lines)


def render_top_phases(trace: Trace, top: int = 10) -> str:
    """The summary's flat phases ranked by total seconds, with quantiles."""
    timers = trace.summary.get("timers", {})
    if not timers:
        return "(no phase summary in trace)"
    calls = trace.summary.get("timer_calls", {})
    hists = trace.summary.get("histograms", {})
    ranked = sorted(timers.items(), key=lambda item: item[1], reverse=True)[:top]
    lines = [f"top {len(ranked)} phases by total time:"]
    for name, secs in ranked:
        line = f"  {name:>28s}: {secs:9.3f}s  ({calls.get(name, 0)} calls)"
        stats = hists.get(name)
        if stats and stats.get("count", 0) > 1:
            line += (
                f"  p50={stats['p50'] * 1e3:.2f}ms"
                f" p95={stats['p95'] * 1e3:.2f}ms"
                f" max={stats['max'] * 1e3:.2f}ms"
            )
        lines.append(line)
    return "\n".join(lines)
