"""Experiment harnesses: one runner per paper table/figure.

Each ``run_*`` function reproduces the protocol of one evaluation artifact
(Table II-VI, Fig. 6) against a freshly built or cached experiment world,
and returns a structured result whose ``table()`` renders the same rows the
paper reports.  Benchmarks and examples call these runners; nothing here
touches ground truth except through the :class:`VerificationOracle`, exactly
as the paper's pipeline only touches reality through its human experts.

Scale: the paper's corpus (6M wild commits, 100-200K search sets) is scaled
down so each experiment runs on a laptop; see DESIGN.md and the per-scale
presets below.  Ratios and orderings, not absolute counts, are the
reproduction target (EXPERIMENTS.md records both).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.augmentation import AugmentationOutcome, DatasetAugmentation, SearchSet
from ..core.baselines import (
    BaselineResult,
    brute_force_candidates,
    evaluate_candidates,
    nearest_link_candidates,
    pseudo_label_candidates,
    uncertainty_candidates,
)
from ..core.cache import PatchFeatureCache, TokenSequenceCache
from ..core.categorize import categorize_patch
from ..core.oracle import VerificationOracle
from ..core.patchdb import PatchDB, PatchRecord
from ..corpus.world import World, WorldConfig, build_world
from ..errors import ReproError
from ..ml import (
    RandomForestClassifier,
    RNNClassifier,
    classification_report,
    fit_many,
    patch_token_sequence,
    train_test_split,
)
from ..ml.model_cache import FittedModelCache, training_key
from ..nvd.crawler import CrawlResult, NvdCrawler
from ..nvd.database import NvdConfig, NvdDatabase, build_nvd
from ..obs import ObsRegistry
from ..synthesis.engine import PatchSynthesizer
from .distribution import (
    distribution_table,
    gini_coefficient,
    head_share,
    total_variation_distance,
    type_distribution,
)

__all__ = [
    "ExperimentScale",
    "TINY",
    "SMALL",
    "MEDIUM",
    "ExperimentWorld",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_fig6",
    "run_table6",
    "run_checkdelta_ablation",
    "CheckDeltaResult",
    "build_patchdb",
    "Table4Result",
    "Table5Result",
    "Fig6Result",
    "Table6Result",
]


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """Scaled-down analogue of the paper's corpus sizes.

    Attributes:
        name: preset label.
        n_commits: commits generated in the world (paper: 6M wild).
        n_repos: repositories (paper: 313).
        set1_size: Set I search range (paper: 100K).
        set23_size: Sets II/III search ranges (paper: 200K each).
        verify_sample: per-method verification sample for Table III
            (paper: 1K).
        rnn_epochs: RNN training epochs for Tables IV/VI.
    """

    name: str
    n_commits: int
    n_repos: int
    set1_size: int
    set23_size: int
    verify_sample: int
    rnn_epochs: int = 6

    def world_config(self, seed: int = 2021) -> WorldConfig:
        """The world-building configuration every consumer of this scale
        uses (experiments, the CLI ``lint`` gate, CI)."""
        return WorldConfig(
            n_commits=self.n_commits,
            n_repos=self.n_repos,
            files_per_repo=5,
            security_fraction=0.09,
            nvd_report_fraction=0.33,
            seed=seed,
        )


TINY = ExperimentScale("tiny", n_commits=450, n_repos=6, set1_size=110, set23_size=140, verify_sample=140, rnn_epochs=3)
SMALL = ExperimentScale("small", n_commits=4500, n_repos=16, set1_size=1000, set23_size=1500, verify_sample=600, rnn_epochs=5)
MEDIUM = ExperimentScale("medium", n_commits=9000, n_repos=24, set1_size=2000, set23_size=3000, verify_sample=1000, rnn_epochs=6)


class ExperimentWorld:
    """A built world plus the shared per-experiment infrastructure.

    Args:
        scale: corpus-size preset.
        seed: world RNG seed.
        feature_cache: optional ``.npz`` path; vectors persist across
            processes (see :class:`PatchFeatureCache`).
        token_cache: optional pickle path; RNN token sequences persist
            across processes (see :class:`TokenSequenceCache`).
        workers: process count for the sharded world build and the default
            for parallel feature extraction and token-cache warm-up; the
            built world is bit-identical at every worker count.
        ml_workers: default for the ``ml_workers`` argument of
            :func:`run_table3`/:func:`run_table4`/:func:`run_table6` —
            enables the cached, parallel evaluation engine.
        obs: observability registry shared by the world build, both caches,
            and every runner; a private one is created if omitted.  World
            construction, NVD synthesis, and the crawl are recorded as
            spans (``world.build``, ``nvd.build``, ``nvd.crawl``).
    """

    #: Bumped when the pickled layout changes; stale disk caches rebuild.
    #: Rev 5: sharded per-repo world RNG scheme + real commit weekdays
    #: (world bytes and digests changed once), build_stats on World, and
    #: patch caches dropped from pickles.
    #: Rev 6: dataflow-mode checkers change lint deltas cached on worlds.
    _CACHE_REV = 7

    def __init__(
        self,
        scale: ExperimentScale,
        seed: int = 2021,
        feature_cache: str | Path | None = None,
        token_cache: str | Path | None = None,
        workers: int | None = None,
        ml_workers: int | None = None,
        obs: ObsRegistry | None = None,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.obs = obs if obs is not None else ObsRegistry()
        self.ml_workers = ml_workers
        self._cache_rev = self._CACHE_REV
        with self.obs.span(
            "world.build", scale=scale.name, seed=seed, commits=scale.n_commits, workers=workers
        ):
            self.world: World = build_world(scale.world_config(seed), workers=workers, obs=self.obs)
        with self.obs.span("nvd.build", seed=seed + 1):
            self.nvd: NvdDatabase = build_nvd(self.world, NvdConfig(seed=seed + 1))
        with self.obs.span("nvd.crawl"):
            self.crawl: CrawlResult = NvdCrawler(self.world).crawl(self.nvd)
        self.cache = PatchFeatureCache(
            self.world,
            persist_path=feature_cache,
            obs=self.obs,
            default_workers=workers,
        )
        self.tokens = TokenSequenceCache(
            self.world,
            persist_path=token_cache,
            obs=self.obs,
            default_workers=workers,
        )
        self._rng = np.random.default_rng(seed + 2)
        self._deltas = None

    @property
    def deltas(self):
        """The lazily-built checker-delta feature cache (16-dim extension).

        Built on first use so experiments that never touch the ablation pay
        nothing; survives pickling along with its blob-count memo.
        """
        if getattr(self, "_deltas", None) is None:
            from ..staticcheck.delta import CheckerDeltaCache

            self._deltas = CheckerDeltaCache(self.world, obs=self.obs)
        return self._deltas

    # ---- shared dataset views --------------------------------------------

    @property
    def nvd_seed_shas(self) -> list[str]:
        """The crawled NVD-based security dataset (includes NVD link noise)."""
        return sorted(p.sha for p in self.crawl.security_patches)

    def wild_pool(self, size: int, exclude: set[str] | None = None, seed: int = 0) -> list[str]:
        """A random unlabeled pool drawn from the wild (non-NVD commits)."""
        exclude = exclude or set()
        exclude = exclude | set(self.nvd_seed_shas)
        pool = [s for s in self.world.wild_shas() if s not in exclude]
        rng = np.random.default_rng(self.seed + 100 + seed)
        idx = rng.permutation(len(pool))[: min(size, len(pool))]
        return [pool[int(i)] for i in idx]

    def ground_truth_nonsec(self, size: int, seed: int = 0) -> list[str]:
        """A clean non-security sample (stands in for the verified 23K set)."""
        pool = [s for s in self.world.all_shas() if not self.world.label(s).is_security]
        rng = np.random.default_rng(self.seed + 200 + seed)
        idx = rng.permutation(len(pool))[: min(size, len(pool))]
        return [pool[int(i)] for i in idx]

    def oracle(self, seed: int = 0) -> VerificationOracle:
        """A fresh expert panel (stats start at zero)."""
        return VerificationOracle(self.world, seed=self.seed + 300 + seed)

    # ---- run manifests and traces -----------------------------------------

    def manifest(self, **extra: object) -> dict:
        """The run manifest: everything needed to identify or replay a run.

        Records the scale preset (name and the counts it implies), the world
        seed and git-style world digest, the build's attempted-vs-produced
        commit accounting (so shard-merge parity is exactly checkable from
        the manifest alone), and the library's cache revision; *extra* keys
        (command name, wall clock, output paths …) are merged in by callers
        like the CLI.  This is the first record of every exported trace file.
        """
        stats = self.world.build_stats or {}
        base = {
            "format": "repro-run-manifest-v1",
            "scale": self.scale.name,
            "n_commits": self.scale.n_commits,
            "n_repos": self.scale.n_repos,
            "seed": self.seed,
            "world_digest": self.world.digest(),
            "commits_attempted": stats.get("attempted"),
            "commits_produced": stats.get("produced"),
            "commits_skipped": (
                stats.get("skipped_no_c_paths", 0) + stats.get("skipped_exhausted", 0)
                if stats
                else None
            ),
            "cache_rev": self._CACHE_REV,
            "created_unix": time.time(),
        }
        base.update(extra)
        return base

    def write_trace(self, path: str | Path, **extra: object) -> Path:
        """Export this world's obs registry as a JSONL trace file.

        The manifest record carries the world identity plus *extra*;
        ``python -m repro trace <path>`` renders the result.
        """
        return self.obs.export_trace(path, manifest=self.manifest(**extra))

    # ---- disk caching -----------------------------------------------------

    def rebind_obs(self, obs: ObsRegistry) -> None:
        """Point this world's instrumentation at *obs*.

        A cache-loaded world carries the registry of the run that built it;
        a new run (e.g. a CLI invocation with its own ``--trace``) rebinds
        so its spans and counters accumulate in one place.
        """
        self.obs = obs
        self.cache.obs = obs
        self.tokens.obs = obs
        if getattr(self, "_deltas", None) is not None:
            self._deltas.obs = obs

    @classmethod
    def cached(
        cls,
        scale: ExperimentScale,
        seed: int = 2021,
        cache_dir: str | Path = ".cache",
        workers: int | None = None,
        obs: ObsRegistry | None = None,
    ) -> "ExperimentWorld":
        """Build or load a pickled experiment world.

        World construction is the expensive part of every benchmark; caching
        it on disk makes reruns start in seconds (CI builds the SMALL
        artifact once and shares it across jobs).  *workers* parallelizes a
        cold build; *obs* becomes the returned world's registry in both the
        build and load paths.
        """
        cache_dir = Path(cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
        path = cache_dir / f"expworld_{scale.name}_{scale.n_commits}_{seed}.pkl"
        if path.exists():
            try:
                with path.open("rb") as fh:
                    loaded = pickle.load(fh)
                if isinstance(loaded, cls) and getattr(loaded, "_cache_rev", 0) == cls._CACHE_REV:
                    if obs is not None:
                        loaded.rebind_obs(obs)
                    return loaded
            except Exception:
                path.unlink(missing_ok=True)
        built = cls(scale, seed, workers=workers, obs=obs)
        with path.open("wb") as fh:
            pickle.dump(built, fh)
        return built


# ---------------------------------------------------------------------------
# Table II — wild-based dataset construction via five augmentation rounds.
# ---------------------------------------------------------------------------


def run_table2(ew: ExperimentWorld, seed: int = 0) -> AugmentationOutcome:
    """Five rounds of augmentation across Sets I/II/III (Table II)."""
    with ew.obs.span("experiment.table2", seed=seed):
        set1 = ew.wild_pool(ew.scale.set1_size, seed=seed)
        used = set(set1)
        set2 = ew.wild_pool(ew.scale.set23_size, exclude=used, seed=seed + 1)
        used |= set(set2)
        set3 = ew.wild_pool(ew.scale.set23_size, exclude=used, seed=seed + 2)
        augmentation = DatasetAugmentation(ew.cache, ew.oracle(seed))
        return augmentation.run_schedule(
            ew.nvd_seed_shas,
            [
                SearchSet("Set I", tuple(set1), rounds=3),
                SearchSet("Set II", tuple(set2), rounds=1),
                SearchSet("Set III", tuple(set3), rounds=1),
            ],
        )


# ---------------------------------------------------------------------------
# Table III — the four augmentation methods on one pool.
# ---------------------------------------------------------------------------


def run_table3(
    ew: ExperimentWorld, seed: int = 0, ml_workers: int | None = None
) -> list[BaselineResult]:
    """Compare brute force / pseudo / uncertainty / nearest link (Table III).

    Args:
        ew: the experiment world.
        seed: protocol RNG seed.
        ml_workers: fit the baselines' classifiers in a process pool of
            this size (``None`` inherits ``ew.ml_workers``); candidate
            sets are identical either way.
    """
    ml_workers = ml_workers if ml_workers is not None else ew.ml_workers
    with ew.obs.span("experiment.table3", seed=seed, ml_workers=ml_workers):
        return _run_table3(ew, seed, ml_workers)


def _run_table3(
    ew: ExperimentWorld, seed: int, ml_workers: int | None
) -> list[BaselineResult]:
    pool = ew.wild_pool(ew.scale.set23_size, seed=seed + 10)
    seed_sec = ew.nvd_seed_shas
    seed_non = ew.ground_truth_nonsec(2 * len(seed_sec), seed=seed)
    sample = ew.scale.verify_sample
    results = []
    for method, candidates in (
        ("Brute Force Search", brute_force_candidates(pool)),
        (
            "Pseudo Labeling",
            pseudo_label_candidates(
                ew.cache, seed_sec, seed_non, pool, seed=seed, workers=ml_workers
            ),
        ),
        (
            "Uncertainty-based Labeling",
            uncertainty_candidates(
                ew.cache, seed_sec, seed_non, pool, seed=seed, workers=ml_workers
            ),
        ),
        (
            "Nearest Link Search (ours)",
            nearest_link_candidates(ew.cache, seed_sec, pool),
        ),
    ):
        results.append(
            evaluate_candidates(
                method, candidates, len(pool), ew.oracle(seed + len(results)), sample_size=sample, seed=seed
            )
        )
    return results


# ---------------------------------------------------------------------------
# Table IV — usefulness of synthetic patches.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Table4Result:
    """The four rows of Table IV."""

    rows: list[tuple[str, str, float, float]] = field(default_factory=list)

    def table(self) -> str:
        """Render the table."""
        out = [f"{'Dataset':<10s} {'Synthetic':<22s} {'Precision':>9s} {'Recall':>7s}"]
        for dataset, synth, p, r in self.rows:
            out.append(f"{dataset:<10s} {synth:<22s} {p:>9.1%} {r:>7.1%}")
        return "\n".join(out)


def _effective_epochs(base: int, n_train: int) -> int:
    """Scale epochs up on small datasets so the RNN actually converges.

    A fixed epoch count under-trains the scaled-down NVD-only splits; the
    paper trains to convergence, so we approximate that with an update
    budget of at least ~4000 sequence presentations, capped at 40 epochs.
    """
    return max(base, min(40, (4000 + n_train - 1) // max(n_train, 1)))


def _sequences(ew: ExperimentWorld, shas: list[str], engine: bool = False) -> list[list[str]]:
    if engine:
        return ew.tokens.sequences(shas)
    return [patch_token_sequence(ew.world.patch_for(s)) for s in shas]


def _fit_through_cache(
    fits: list[tuple],
    keys: list[str],
    model_cache: FittedModelCache | None,
    workers: int | None,
    obs: ObsRegistry,
) -> list:
    """:func:`fit_many` with an optional persisted fit cache in front.

    Every fit in the Table IV/VI suite is a pure function of its labeled
    training shas and estimator configuration — exactly what
    :func:`~repro.ml.model_cache.training_key` hashes — so cached entries
    are returned as-is and only the misses are fitted (serially or in the
    process pool).  Re-evaluating with an unchanged training set therefore
    performs zero training, no matter how the test set changed.
    """
    if model_cache is None:
        return fit_many(fits, workers=workers, obs=obs)
    fitted = [model_cache.get(key) for key in keys]
    misses = [i for i, model in enumerate(fitted) if model is None]
    if misses:
        fresh = fit_many([fits[i] for i in misses], workers=workers, obs=obs)
        for i, model in zip(misses, fresh):
            model_cache.put(keys[i], model)
            fitted[i] = model
    return fitted


@dataclass(slots=True)
class _Table4Fit:
    """One of Table IV's independent RNN fits, staged for :func:`fit_many`."""

    dataset: int  # index into the dataset list
    variant: str  # "nat" | "syn"
    rnn: RNNClassifier
    train_seqs: list[list[str]]
    y_train: np.ndarray
    test_seqs: list[list[str]]
    y_test: np.ndarray
    key: str = ""  # training-set sha key for the fitted-model cache


def _rnn_key(shas: list[str], labels: np.ndarray, epochs: int, seed: int) -> str:
    """Cache key of one staged RNN fit (see :func:`_fit_through_cache`)."""
    return training_key(
        shas,
        labels,
        {
            "estimator": "RNNClassifier",
            "epochs": epochs,
            "batch_size": 32,
            "seed": seed,
            "features": "token-seq",
        },
    )


def run_table4(
    ew: ExperimentWorld,
    seed: int = 0,
    max_per_patch: int = 3,
    n_seeds: int = 4,
    ml_workers: int | None = None,
    model_cache: FittedModelCache | None = None,
) -> Table4Result:
    """Security patch identification with and without synthetic data (Table IV).

    The scaled-down test splits are small, so precision/recall are averaged
    over *n_seeds* independent split+training runs (the paper's corpus is
    ~25x larger, making a single run stable there); the reported synthetic
    counts are likewise the per-seed mean.

    The ``2 datasets x n_seeds x {natural, synthetic}`` RNN fits are
    mutually independent, so with *ml_workers* set (or inherited from
    ``ew.ml_workers``) they run through :func:`repro.ml.fit_many` with
    token sequences served from ``ew.tokens`` and per-origin synthesis
    memoized — same rows as the serial path, bit for bit.

    With *model_cache* set, each fit is first looked up by its
    training-set sha key (:func:`training_key` over the labeled training
    shas + estimator config); re-running with an unchanged training set
    re-fits nothing.
    """
    ml_workers = ml_workers if ml_workers is not None else ew.ml_workers
    with ew.obs.span(
        "experiment.table4", seed=seed, n_seeds=n_seeds, ml_workers=ml_workers
    ):
        return _run_table4(ew, seed, max_per_patch, n_seeds, ml_workers, model_cache)


def _run_table4(
    ew: ExperimentWorld,
    seed: int,
    max_per_patch: int,
    n_seeds: int,
    ml_workers: int | None,
    model_cache: FittedModelCache | None = None,
) -> Table4Result:
    engine = ml_workers is not None
    epochs = ew.scale.rnn_epochs
    synth = PatchSynthesizer(ew.world, max_per_patch=max_per_patch, seed=seed, memoize=engine)
    result = Table4Result()

    nvd_sec = ew.nvd_seed_shas
    wild_sec = [s for s in ew.world.security_shas() if s not in set(nvd_sec)]
    nonsec = ew.ground_truth_nonsec(2 * (len(nvd_sec) + len(wild_sec)), seed=seed)

    def syn_sequence(patch) -> list[str]:
        if engine:
            return ew.tokens.sequence_of(patch)
        return patch_token_sequence(patch)

    # ---- stage every independent fit --------------------------------------
    datasets = [("NVD", nvd_sec), ("NVD+Wild", nvd_sec + wild_sec)]
    fits: list[_Table4Fit] = []
    synth_totals = [[0, 0] for _ in datasets]  # summed (sec, non) over seeds
    for d_idx, (dataset_name, sec_shas) in enumerate(datasets):
        non_shas = nonsec[: 2 * len(sec_shas)]
        labeled = [(s, 1) for s in sec_shas] + [(s, 0) for s in non_shas]
        y = np.array([lab for _, lab in labeled])
        for k in range(n_seeds):
            split_seed = seed + 17 * k
            train_idx, test_idx = train_test_split(
                len(labeled), 0.2, y=y, stratify=True, seed=split_seed
            )
            train_shas = [labeled[i] for i in train_idx]
            test_shas = [labeled[i] for i in test_idx]

            train_seqs = _sequences(ew, [s for s, _ in train_shas], engine)
            test_seqs = _sequences(ew, [s for s, _ in test_shas], engine)
            y_train = np.array([lab for _, lab in train_shas])
            y_test = np.array([lab for _, lab in test_shas])
            # Fix the epoch budget from the *natural* train size so the with-
            # and without-synthetic rows differ only in training data.
            eff_epochs = _effective_epochs(epochs, len(train_shas))
            fits.append(
                _Table4Fit(
                    d_idx,
                    "nat",
                    RNNClassifier(epochs=eff_epochs, batch_size=32, seed=split_seed),
                    train_seqs,
                    y_train,
                    test_seqs,
                    y_test,
                    key=_rnn_key([s for s, _ in train_shas], y_train, eff_epochs, split_seed),
                )
            )

            # Synthesize from the *training* shas only (as the paper stresses).
            syn_shas: list[str] = []
            syn_seqs: list[list[str]] = []
            syn_labels: list[int] = []
            for s, lab in train_shas:
                for sp in synth.synthesize(s):
                    syn_shas.append(sp.patch.sha)
                    syn_seqs.append(syn_sequence(sp.patch))
                    syn_labels.append(lab)
            synth_totals[d_idx][0] += sum(1 for lab in syn_labels if lab == 1)
            synth_totals[d_idx][1] += sum(1 for lab in syn_labels if lab == 0)
            y_syn = np.concatenate([y_train, np.array(syn_labels, dtype=y_train.dtype)])
            fits.append(
                _Table4Fit(
                    d_idx,
                    "syn",
                    RNNClassifier(epochs=eff_epochs, batch_size=32, seed=split_seed),
                    train_seqs + syn_seqs,
                    y_syn,
                    test_seqs,
                    y_test,
                    key=_rnn_key(
                        [s for s, _ in train_shas] + syn_shas, y_syn, eff_epochs, split_seed
                    ),
                )
            )

    # ---- fit (serially or in a process pool), then evaluate ----------------
    fitted = _fit_through_cache(
        [(f.rnn, f.train_seqs, f.y_train) for f in fits],
        [f.key for f in fits],
        model_cache,
        ml_workers,
        ew.obs,
    )
    metrics = [{"nat": np.zeros(2), "syn": np.zeros(2)} for _ in datasets]
    for f, rnn in zip(fits, fitted):
        report = classification_report(f.y_test, rnn.predict(f.test_seqs))
        metrics[f.dataset][f.variant] += (report.precision, report.recall)

    for d_idx, (dataset_name, _) in enumerate(datasets):
        nat = metrics[d_idx]["nat"] / n_seeds
        syn = metrics[d_idx]["syn"] / n_seeds
        n_sec = int(round(synth_totals[d_idx][0] / n_seeds))
        n_non = int(round(synth_totals[d_idx][1] / n_seeds))
        result.rows.append((dataset_name, "-", float(nat[0]), float(nat[1])))
        result.rows.append(
            (dataset_name, f"{n_sec} Sec + {n_non} NonSec", float(syn[0]), float(syn[1]))
        )
    return result


# ---------------------------------------------------------------------------
# Table V / Fig. 6 — dataset composition.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Table5Result:
    """The Table V distribution plus summary stats."""

    distribution: dict[int, float]
    n_patches: int

    def table(self) -> str:
        """Render the Table V analogue."""
        return distribution_table(self.distribution, f"Security patch distribution ({self.n_patches} patches)")


def run_table5(ew: ExperimentWorld, sample_size: int = 1000, seed: int = 0) -> Table5Result:
    """Categorize a security-patch sample by code change (Table V)."""
    sec = ew.world.security_shas()
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(sec))[: min(sample_size, len(sec))]
    sample = [sec[int(i)] for i in idx]
    types = [categorize_patch(ew.world.patch_for(s)) for s in sample]
    return Table5Result(distribution=type_distribution(types), n_patches=len(sample))


@dataclass(slots=True)
class Fig6Result:
    """NVD-based vs wild-based type distributions (Fig. 6)."""

    nvd_distribution: dict[int, float]
    wild_distribution: dict[int, float]

    @property
    def tv_distance(self) -> float:
        """How different the two distributions are."""
        return total_variation_distance(self.nvd_distribution, self.wild_distribution)

    @property
    def nvd_head_share(self) -> float:
        """Top-3 share of the NVD distribution (long-tail head)."""
        return head_share(self.nvd_distribution, 3)

    @property
    def gini(self) -> tuple[float, float]:
        """(NVD, wild) concentration."""
        return gini_coefficient(self.nvd_distribution), gini_coefficient(self.wild_distribution)

    def table(self) -> str:
        """Render both distributions side by side."""
        out = [f"{'ID':>3s} {'NVD-based':>10s} {'wild-based':>11s}"]
        for t in sorted(self.nvd_distribution):
            out.append(
                f"{t:>3d} {self.nvd_distribution[t]:>10.1%} {self.wild_distribution[t]:>11.1%}"
            )
        out.append(f"TV distance = {self.tv_distance:.3f}")
        return "\n".join(out)


def run_fig6(ew: ExperimentWorld, seed: int = 0) -> Fig6Result:
    """Per-source categorization histograms (Fig. 6).

    Uses the wild security patches *discovered by nearest link search* (a
    Table II run), mirroring the paper's wild-based dataset rather than the
    full ground truth.
    """
    outcome = run_table2(ew, seed=seed)
    nvd_set = set(ew.nvd_seed_shas)
    wild_found = [s for s in outcome.security_shas if s not in nvd_set]
    nvd_types = [categorize_patch(ew.world.patch_for(s)) for s in sorted(nvd_set)]
    wild_types = [categorize_patch(ew.world.patch_for(s)) for s in wild_found]
    return Fig6Result(
        nvd_distribution=type_distribution(nvd_types),
        wild_distribution=type_distribution(wild_types),
    )


# ---------------------------------------------------------------------------
# Table VI — dataset quality via cross-source generalization.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Table6Result:
    """The eight rows of Table VI."""

    rows: list[tuple[str, str, str, float, float]] = field(default_factory=list)

    def table(self) -> str:
        """Render the table."""
        out = [f"{'Train':<10s} {'Algorithm':<15s} {'Test':<6s} {'Precision':>9s} {'Recall':>7s}"]
        for train, algo, test, p, r in self.rows:
            out.append(f"{train:<10s} {algo:<15s} {test:<6s} {p:>9.1%} {r:>7.1%}")
        return "\n".join(out)


def run_table6(
    ew: ExperimentWorld,
    seed: int = 0,
    ml_workers: int | None = None,
    model_cache: FittedModelCache | None = None,
) -> Table6Result:
    """Train RF/RNN on NVD vs NVD+wild; test on NVD and wild (Table VI).

    The four fits (RF and RNN per train set) are independent; with
    *ml_workers* set (or inherited from ``ew.ml_workers``) they run
    concurrently through :func:`repro.ml.fit_many` with token sequences
    served from ``ew.tokens`` — rows are bit-identical to the serial path.
    With *model_cache* set, fits whose training-set sha key is already
    cached are served from the cache (re-evaluation with an unchanged
    training set never re-fits).
    """
    ml_workers = ml_workers if ml_workers is not None else ew.ml_workers
    with ew.obs.span("experiment.table6", seed=seed, ml_workers=ml_workers):
        return _run_table6(ew, seed, ml_workers, model_cache)


def _run_table6(
    ew: ExperimentWorld,
    seed: int,
    ml_workers: int | None,
    model_cache: FittedModelCache | None = None,
) -> Table6Result:
    engine = ml_workers is not None
    epochs = ew.scale.rnn_epochs
    nvd_sec = ew.nvd_seed_shas
    wild_sec = [s for s in ew.world.security_shas() if s not in set(nvd_sec)]
    nonsec = ew.ground_truth_nonsec(2 * (len(nvd_sec) + len(wild_sec)), seed=seed)
    non_nvd = nonsec[: 2 * len(nvd_sec)]
    non_wild = nonsec[2 * len(nvd_sec) : 2 * len(nvd_sec) + 2 * len(wild_sec)]

    def split(sec: list[str], non: list[str], split_seed: int):
        labeled = [(s, 1) for s in sec] + [(s, 0) for s in non]
        y = np.array([lab for _, lab in labeled])
        tr, te = train_test_split(len(labeled), 0.2, y=y, stratify=True, seed=split_seed)
        return [labeled[i] for i in tr], [labeled[i] for i in te]

    nvd_train, nvd_test = split(nvd_sec, non_nvd, seed)
    wild_train, wild_test = split(wild_sec, non_wild, seed + 1)

    train_sets = {"NVD": nvd_train, "NVD+Wild": nvd_train + wild_train}
    test_sets = {"NVD": nvd_test, "Wild": wild_test}

    # Stage the four independent fits: (RF, RNN) per train set.
    fits = []
    keys = []
    for train_name, train in train_sets.items():
        train_shas = [s for s, _ in train]
        X_feat = ew.cache.matrix(train_shas)
        y_train = np.array([lab for _, lab in train])
        rf = RandomForestClassifier(n_estimators=40, max_depth=14, seed=seed, obs=ew.obs)
        eff_epochs = _effective_epochs(epochs, len(train))
        rnn = RNNClassifier(epochs=eff_epochs, batch_size=32, seed=seed)
        fits.append((rf, X_feat, y_train))
        keys.append(
            training_key(
                train_shas,
                y_train,
                {
                    "estimator": "RandomForestClassifier",
                    "n_estimators": 40,
                    "max_depth": 14,
                    "seed": seed,
                    "features": "table1-60",
                },
            )
        )
        fits.append((rnn, _sequences(ew, train_shas, engine), y_train))
        keys.append(_rnn_key(train_shas, y_train, eff_epochs, seed))
    fitted = _fit_through_cache(fits, keys, model_cache, ml_workers, ew.obs)

    result = Table6Result()
    for i, train_name in enumerate(train_sets):
        rf, rnn = fitted[2 * i], fitted[2 * i + 1]
        for algo, predict in (
            ("Random Forest", lambda shas: rf.predict(ew.cache.matrix(shas))),
            ("RNN", lambda shas: rnn.predict(_sequences(ew, shas, engine))),
        ):
            for test_name, test in test_sets.items():
                shas = [s for s, _ in test]
                y_true = np.array([lab for _, lab in test])
                report = classification_report(y_true, predict(shas))
                result.rows.append((train_name, algo, test_name, report.precision, report.recall))
    return result


# ---------------------------------------------------------------------------
# Checker-delta ablation — does the static-analysis feature channel help?
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CheckDeltaResult:
    """Rows of the checker-delta ablation: (features, test set, P, R, F1)."""

    rows: list[tuple[str, str, float, float, float]] = field(default_factory=list)

    def table(self) -> str:
        """Render the ablation rows."""
        out = [f"{'Features':<16s} {'Test':<6s} {'Precision':>9s} {'Recall':>7s} {'F1':>7s}"]
        for feats, test, p, r, f1 in self.rows:
            out.append(f"{feats:<16s} {test:<6s} {p:>9.1%} {r:>7.1%} {f1:>7.1%}")
        return "\n".join(out)


def run_checkdelta_ablation(ew: ExperimentWorld, seed: int = 0) -> CheckDeltaResult:
    """Table VI-style ablation of the checker-delta feature block.

    Trains the same Random Forest on NVD+wild security patches under three
    feature sets — the 60-dim Table I vector, that vector plus the 16-dim
    checker-delta block (:mod:`repro.staticcheck.delta`), and the delta
    block alone — and tests on held-out NVD and wild sets.  The protocol
    (splits, class balance, hyperparameters) matches :func:`run_table6`, so
    the base-60 rows are directly comparable to the RF rows there.

    Deterministic: identical ``(ew, seed)`` inputs produce identical rows.
    """
    nvd_sec = ew.nvd_seed_shas
    wild_sec = [s for s in ew.world.security_shas() if s not in set(nvd_sec)]
    nonsec = ew.ground_truth_nonsec(2 * (len(nvd_sec) + len(wild_sec)), seed=seed)
    non_nvd = nonsec[: 2 * len(nvd_sec)]
    non_wild = nonsec[2 * len(nvd_sec) : 2 * len(nvd_sec) + 2 * len(wild_sec)]

    def split(sec: list[str], non: list[str], split_seed: int):
        labeled = [(s, 1) for s in sec] + [(s, 0) for s in non]
        y = np.array([lab for _, lab in labeled])
        tr, te = train_test_split(len(labeled), 0.2, y=y, stratify=True, seed=split_seed)
        return [labeled[i] for i in tr], [labeled[i] for i in te]

    nvd_train, nvd_test = split(nvd_sec, non_nvd, seed)
    wild_train, wild_test = split(wild_sec, non_wild, seed + 1)
    train = nvd_train + wild_train
    test_sets = {"NVD": nvd_test, "Wild": wild_test}

    from ..staticcheck.delta import extend_matrix

    train_shas = [s for s, _ in train]
    y_train = np.array([lab for _, lab in train])

    def matrices(shas: list[str]) -> dict[str, np.ndarray]:
        base = ew.cache.matrix(shas)
        delta = ew.deltas.matrix(shas)
        return {
            "table1-60": base,
            "table1+delta": extend_matrix(base, delta),
            "delta-16": delta,
        }

    X_train = matrices(train_shas)
    result = CheckDeltaResult()
    for feats in X_train:
        rf = RandomForestClassifier(n_estimators=40, max_depth=14, seed=seed, obs=ew.obs)
        rf.fit(X_train[feats], y_train)
        for test_name, test in test_sets.items():
            shas = [s for s, _ in test]
            y_true = np.array([lab for _, lab in test])
            report = classification_report(y_true, rf.predict(matrices(shas)[feats]))
            result.rows.append((feats, test_name, report.precision, report.recall, report.f1))
    return result


# ---------------------------------------------------------------------------
# The full pipeline: build a PatchDB release (used by examples).
# ---------------------------------------------------------------------------


def build_patchdb(ew: ExperimentWorld, seed: int = 0, synthesize: bool = True) -> PatchDB:
    """Run the whole construction methodology (Fig. 1) and return PatchDB."""
    with ew.obs.span("patchdb.build", seed=seed, synthesize=synthesize):
        db = PatchDB()
        nvd_set = set(ew.nvd_seed_shas)
        cve_by_sha = {p.sha: cve for cve, p in ew.crawl.patches.items()}
        with ew.obs.span("patchdb.nvd_seed", patches=len(nvd_set)):
            for sha in sorted(nvd_set):
                patch = ew.world.patch_for(sha)
                db.add(
                    PatchRecord(
                        patch=patch,
                        source="nvd",
                        is_security=True,
                        pattern_type=categorize_patch(patch),
                        cve_id=cve_by_sha.get(sha),
                    )
                )
        outcome = run_table2(ew, seed=seed)
        with ew.obs.span("patchdb.wild", found=len(outcome.security_shas)):
            for sha in outcome.security_shas:
                if sha in nvd_set:
                    continue
                patch = ew.world.patch_for(sha)
                db.add(
                    PatchRecord(
                        patch=patch,
                        source="wild",
                        is_security=True,
                        pattern_type=categorize_patch(patch),
                    )
                )
            for sha in outcome.non_security_shas:
                db.add(
                    PatchRecord(patch=ew.world.patch_for(sha), source="wild", is_security=False)
                )
        if synthesize:
            with ew.obs.span("patchdb.synthesize"):
                synthesizer = PatchSynthesizer(ew.world, max_per_patch=2, seed=seed)
                for record in list(db):
                    if record.source == "synthetic":
                        continue
                    for sp in synthesizer.synthesize(record.patch.sha):
                        db.add(
                            PatchRecord(
                                patch=sp.patch,
                                source="synthetic",
                                is_security=record.is_security,
                                pattern_type=record.pattern_type,
                            )
                        )
        return db
