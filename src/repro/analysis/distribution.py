"""Type-distribution statistics for the composition study (RQ4).

Table V reports the security-patch pattern distribution of PatchDB; Fig. 6
contrasts the NVD-based and wild-based distributions and observes a long
tail.  These helpers compute the histograms, long-tail measures, and
distribution distances those results rest on.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..corpus.vulnpatterns import PATTERN_NAMES

__all__ = [
    "type_distribution",
    "distribution_table",
    "head_share",
    "gini_coefficient",
    "total_variation_distance",
    "rank_types",
]


def type_distribution(types: list[int]) -> dict[int, float]:
    """Normalized histogram over the 12 pattern types (missing types = 0)."""
    counts = Counter(types)
    total = sum(counts.values())
    if total == 0:
        return {t: 0.0 for t in PATTERN_NAMES}
    return {t: counts.get(t, 0) / total for t in PATTERN_NAMES}


def distribution_table(dist: dict[int, float], title: str = "") -> str:
    """Render a distribution as a Table V-style text table."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'ID':>3s}  {'Type of patch pattern':<40s} {'%':>6s}")
    for t in sorted(PATTERN_NAMES):
        lines.append(f"{t:>3d}  {PATTERN_NAMES[t]:<40s} {dist.get(t, 0.0):>6.1%}")
    return "\n".join(lines)


def rank_types(dist: dict[int, float]) -> list[int]:
    """Type ids ordered by descending share."""
    return sorted(dist, key=lambda t: (-dist[t], t))


def head_share(dist: dict[int, float], k: int = 3) -> float:
    """Combined share of the top-*k* classes (the long-tail 'head')."""
    return float(sum(sorted(dist.values(), reverse=True)[:k]))


def gini_coefficient(dist: dict[int, float]) -> float:
    """Gini coefficient of the share vector (0 = uniform, →1 = concentrated)."""
    shares = np.sort(np.array(list(dist.values()), dtype=np.float64))
    n = shares.size
    if n == 0 or shares.sum() == 0:
        return 0.0
    cum = np.cumsum(shares)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def total_variation_distance(a: dict[int, float], b: dict[int, float]) -> float:
    """TV distance between two type distributions (0 = identical, 1 = disjoint)."""
    keys = set(a) | set(b)
    return 0.5 * float(sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys))
