"""Assemble Myers edit scripts into unified-diff hunks.

Given two file versions, :func:`diff_texts` produces a
:class:`~repro.patch.model.FileDiff` with hunks grouped the way ``git diff``
groups them: change runs merged when their context windows overlap,
``context`` lines around each run, and a function-heading section extracted
from the nearest preceding function-like line (like git's builtin ``cpp``
``xfuncname``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..patch.model import FileDiff, Hunk, Line, LineKind
from .myers import Edit, EditOp, diff_sequences

__all__ = ["diff_texts", "diff_lines", "DEFAULT_CONTEXT"]

#: Number of context lines around each hunk, matching git's default.
DEFAULT_CONTEXT = 3

# Heuristic for C function headings, close to git's builtin cpp xfuncname:
# a line starting at column 0 with an identifier and containing '(' , or a
# struct/union/enum/class definition.
_FUNC_HEADING_RE = re.compile(r"^([A-Za-z_][\w\s\*]*\(.*|\s*(?:struct|union|enum|class)\s+\w+.*)$")


@dataclass(frozen=True, slots=True)
class _Group:
    """One hunk-to-be: its edits plus old/new cursor at group start."""

    edits: tuple[Edit, ...]
    old_pos: int  # old lines consumed before the group (0-based count)
    new_pos: int  # new lines consumed before the group


def diff_texts(
    old_text: str,
    new_text: str,
    old_path: str,
    new_path: str | None = None,
    context: int = DEFAULT_CONTEXT,
) -> FileDiff:
    """Diff two file versions into a :class:`FileDiff`.

    Args:
        old_text: pre-image contents ('' for a created file).
        new_text: post-image contents ('' for a deleted file).
        old_path: pre-image path.
        new_path: post-image path; defaults to *old_path*.
        context: context lines to include around each change run.
    """
    old_lines = old_text.splitlines()
    new_lines = new_text.splitlines()
    hunks = diff_lines(old_lines, new_lines, context=context)
    return FileDiff(
        old_path=old_path if old_text else "",
        new_path=(new_path if new_path is not None else old_path) if new_text else "",
        hunks=hunks,
    )


def diff_lines(
    old_lines: list[str], new_lines: list[str], context: int = DEFAULT_CONTEXT
) -> tuple[Hunk, ...]:
    """Diff two line lists into unified hunks (empty tuple if identical)."""
    script = diff_sequences(old_lines, new_lines)
    if all(e.op is EditOp.EQUAL for e in script):
        return ()
    groups = _group_edits(script, context)
    return tuple(_build_hunk(g, old_lines, new_lines) for g in groups)


def _group_edits(script: list[Edit], context: int) -> list[_Group]:
    """Split the script into change groups with surrounding context.

    Two change runs separated by at most ``2 * context`` equal records are
    merged into the same hunk, as ``git diff`` does.
    """
    groups: list[_Group] = []
    current: list[Edit] = []
    start_old = start_new = 0
    equal_run: list[Edit] = []
    old_cursor = new_cursor = 0

    def flush(trailing: list[Edit]) -> None:
        nonlocal current
        current.extend(trailing)
        groups.append(_Group(tuple(current), start_old, start_new))
        current = []

    for edit in script:
        if edit.op is EditOp.EQUAL:
            equal_run.append(edit)
            old_cursor += 1
            new_cursor += 1
            continue
        if current:
            if len(equal_run) <= 2 * context:
                current.extend(equal_run)
            else:
                flush(equal_run[:context])
        if not current:
            lead = equal_run[-context:] if context else []
            start_old = lead[0].old_index if lead else (edit.old_index if edit.op is EditOp.DELETE else old_cursor)
            start_new = lead[0].new_index if lead else (edit.new_index if edit.op is EditOp.INSERT else new_cursor)
            current = list(lead)
        equal_run = []
        current.append(edit)
        if edit.op is EditOp.DELETE:
            old_cursor += 1
        else:
            new_cursor += 1
    if current:
        flush(equal_run[:context])
    return groups


def _build_hunk(group: _Group, old_lines: list[str], new_lines: list[str]) -> Hunk:
    """Convert one change group into a validated Hunk."""
    body: list[Line] = []
    old_count = new_count = 0
    for edit in group.edits:
        if edit.op is EditOp.EQUAL:
            body.append(Line(LineKind.CONTEXT, old_lines[edit.old_index]))
            old_count += 1
            new_count += 1
        elif edit.op is EditOp.DELETE:
            body.append(Line(LineKind.REMOVED, old_lines[edit.old_index]))
            old_count += 1
        else:
            body.append(Line(LineKind.ADDED, new_lines[edit.new_index]))
            new_count += 1
    # Git convention: a zero-count side starts at the line *before* the hunk.
    old_start = group.old_pos + 1 if old_count else group.old_pos
    new_start = group.new_pos + 1 if new_count else group.new_pos
    section = _find_section(old_lines, group.old_pos)
    hunk = Hunk(old_start, old_count, new_start, new_count, tuple(body), section)
    hunk.validate()
    return hunk


def _find_section(old_lines: list[str], before_index: int) -> str:
    """Nearest function-like heading strictly above *before_index* (0-based)."""
    for i in range(min(before_index, len(old_lines)) - 1, -1, -1):
        line = old_lines[i]
        if line and not line[0].isspace() and _FUNC_HEADING_RE.match(line):
            return line.strip()[:60]
    return ""
