"""Diff computation: Myers O(ND) edit scripts and unified hunk assembly."""

from .myers import Edit, EditOp, diff_sequences, lcs_length
from .unified_gen import DEFAULT_CONTEXT, diff_lines, diff_texts

__all__ = [
    "DEFAULT_CONTEXT",
    "Edit",
    "EditOp",
    "diff_lines",
    "diff_sequences",
    "diff_texts",
    "lcs_length",
]
