"""Myers O(ND) shortest-edit-script diff.

Implements the greedy forward algorithm from Myers' *An O(ND) Difference
Algorithm and Its Variations* (1986), operating on arbitrary hashable
sequences (we use it on lists of lines).  The output is an edit script of
``(op, old_index, new_index)`` records which the hunk assembler in
:mod:`repro.diffing.unified_gen` turns into unified-diff hunks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

__all__ = ["EditOp", "Edit", "diff_sequences", "lcs_length"]


class EditOp(enum.Enum):
    """Edit operation kinds in an edit script."""

    EQUAL = "equal"
    DELETE = "delete"
    INSERT = "insert"


@dataclass(frozen=True, slots=True)
class Edit:
    """One record of an edit script.

    For EQUAL and DELETE, ``old_index`` is meaningful; for EQUAL and INSERT,
    ``new_index`` is meaningful.  Unused indices are -1.
    """

    op: EditOp
    old_index: int
    new_index: int


def diff_sequences(old: Sequence, new: Sequence) -> list[Edit]:
    """Compute a minimal edit script turning *old* into *new*.

    Returns:
        Edits in order: EQUAL records carry both indices; DELETE records
        reference *old*; INSERT records reference *new*.
    """
    # Trim a common prefix/suffix first; Myers is quadratic in the worst
    # case and patches usually share almost everything.
    n, m = len(old), len(new)
    prefix = 0
    while prefix < n and prefix < m and old[prefix] == new[prefix]:
        prefix += 1
    suffix = 0
    while suffix < n - prefix and suffix < m - prefix and old[n - 1 - suffix] == new[m - 1 - suffix]:
        suffix += 1

    core = _myers(old[prefix : n - suffix], new[prefix : m - suffix])

    script: list[Edit] = [Edit(EditOp.EQUAL, i, i) for i in range(prefix)]
    for e in core:
        script.append(
            Edit(
                e.op,
                e.old_index + prefix if e.old_index >= 0 else -1,
                e.new_index + prefix if e.new_index >= 0 else -1,
            )
        )
    for k in range(suffix):
        script.append(Edit(EditOp.EQUAL, n - suffix + k, m - suffix + k))
    return script


def _myers(old: Sequence, new: Sequence) -> list[Edit]:
    """Greedy O(ND) forward search with trace-back."""
    n, m = len(old), len(new)
    if n == 0:
        return [Edit(EditOp.INSERT, -1, j) for j in range(m)]
    if m == 0:
        return [Edit(EditOp.DELETE, i, -1) for i in range(n)]

    max_d = n + m
    # v[k] = furthest x on diagonal k; store per-d snapshots for trace-back.
    v: dict[int, int] = {1: 0}
    trace: list[dict[int, int]] = []
    for d in range(max_d + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
                x = v.get(k + 1, 0)  # down: insertion
            else:
                x = v.get(k - 1, 0) + 1  # right: deletion
            y = x - k
            while x < n and y < m and old[x] == new[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                return _backtrack(trace, old, new, d)
    raise AssertionError("unreachable: Myers search must terminate by d = n+m")


def _backtrack(trace: list[dict[int, int]], old: Sequence, new: Sequence, d_final: int) -> list[Edit]:
    """Recover the edit script from the per-d snapshots."""
    script_rev: list[Edit] = []
    x, y = len(old), len(new)
    for d in range(d_final, 0, -1):
        v = trace[d]
        k = x - y
        if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = v.get(prev_k, 0)
        prev_y = prev_x - prev_k
        # Snake back through the diagonal of equal elements.
        while x > prev_x and y > prev_y:
            x -= 1
            y -= 1
            script_rev.append(Edit(EditOp.EQUAL, x, y))
        if d > 0:
            if x == prev_x:  # came from an insertion
                y -= 1
                script_rev.append(Edit(EditOp.INSERT, -1, y))
            else:  # came from a deletion
                x -= 1
                script_rev.append(Edit(EditOp.DELETE, x, -1))
    while x > 0 and y > 0:
        x -= 1
        y -= 1
        script_rev.append(Edit(EditOp.EQUAL, x, y))
    script_rev.reverse()
    return script_rev


def lcs_length(old: Sequence, new: Sequence) -> int:
    """Length of the longest common subsequence (EQUAL count of the script)."""
    return sum(1 for e in diff_sequences(old, new) if e.op is EditOp.EQUAL)
