"""Non-security patch generators.

The wild is mostly not security fixes — the paper measures 6-10% security
commits on GitHub — so the world builder needs a rich supply of feature
additions, refactors, performance tweaks, doc/changelog edits, and ordinary
(non-security) bug fixes.  Some of these deliberately overlap the security
feature space (a bugfix can also add an ``if``) to keep the identification
task realistically hard.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .codegen import CodeGenerator
from .mutate import (
    body_range,
    function_spans,
    identifiers_in,
    indent_of,
    pick,
    statement_line_indices,
)

__all__ = ["NONSEC_KINDS", "NONSEC_GENERATORS", "apply_nonsec_pattern"]

NONSEC_KINDS: dict[str, str] = {
    "feature": "add a new function / capability",
    "refactor": "rename identifiers, restructure without behavior change",
    "perf": "performance improvement",
    "bugfix": "ordinary (non-security) bug fix",
    "cleanup": "style / dead-code cleanup",
    "logging": "add or adjust logging",
    "defensive": "defensive programming (checks that fix no vulnerability)",
}

#: Sampling weights for the kinds; 'defensive' and guard-adding 'bugfix'
#: deliberately overlap the security feature space so identification stays
#: realistically hard (the paper's experts needed to read each candidate).
NONSEC_KIND_WEIGHTS: dict[str, float] = {
    "feature": 0.16,
    "refactor": 0.14,
    "perf": 0.10,
    "bugfix": 0.22,
    "cleanup": 0.09,
    "logging": 0.09,
    "defensive": 0.20,
}


def gen_feature(text: str, rng: np.random.Generator) -> str | None:
    """Add a whole new function (and optionally a call to it).

    Declines on files that have already grown past ~12 functions so a long
    world build does not concentrate unbounded growth (and hence unbounded
    parse cost) in a few hot files.
    """
    if len(function_spans(text)) > 12:
        return None
    gen = CodeGenerator(rng)
    new_fn = gen.gen_function()
    addition = "\n" + new_fn.render() + "\n"
    return text.rstrip("\n") + "\n" + addition


def gen_refactor(text: str, rng: np.random.Generator) -> str | None:
    """Rename a local identifier consistently inside one function."""
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    lo, hi = body_range(fn)
    idents = [i for i in identifiers_in(lines[lo : hi + 1]) if len(i) > 2]
    if not idents:
        return None
    old = pick(rng, idents)
    new = old + "_" + pick(rng, ["new", "tmp", "cur", "next", "local"])
    import re

    pattern = re.compile(rf"\b{re.escape(old)}\b")
    changed = False
    for i in range(lo, hi + 1):
        replaced = pattern.sub(new, lines[i])
        if replaced != lines[i]:
            lines[i] = replaced
            changed = True
    return "\n".join(lines) + "\n" if changed else None


def gen_perf(text: str, rng: np.random.Generator) -> str | None:
    """Replace a loop with a bulk call, or hoist a computation."""
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    lo, hi = body_range(fn)
    loops = [i for i in range(lo, hi + 1) if lines[i].strip().startswith(("for ", "for(", "while "))]
    if loops and rng.random() < 0.6:
        at = loops[0]
        indent = indent_of(lines[at])
        # Replace the loop header + body (up to matching close) with memcpy.
        depth = 0
        end = at
        for j in range(at, min(hi + 2, len(lines))):
            depth += lines[j].count("{") - lines[j].count("}")
            end = j
            if depth <= 0 and j > at:
                break
        idents = identifiers_in(lines[at : end + 1]) or ["dst", "src", "n"]
        a = idents[0]
        b = idents[1] if len(idents) > 1 else a
        c = idents[2] if len(idents) > 2 else "n"
        replacement = [f"{indent}memcpy({a}, {b}, {c} * sizeof(*{a}));"]
        return "\n".join(lines[:at] + replacement + lines[end + 1 :]) + "\n"
    anchors = statement_line_indices(lines, lo, hi)
    if len(anchors) < 2:
        return None
    # Hoist: move a computation up (looks like type 10 but non-security).
    src = anchors[-1]
    dst = anchors[0]
    if src - dst < 2:
        return None
    moved = lines.pop(src)
    lines.insert(dst, moved)
    return "\n".join(lines) + "\n"


def gen_bugfix(text: str, rng: np.random.Generator) -> str | None:
    """Ordinary bug fix: adjust a constant, operator, or add a guard."""
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    lo, hi = body_range(fn)
    roll = rng.random()
    if roll < 0.4:
        # Constant adjustment.
        import re

        numbered = [
            i for i in range(lo, hi + 1) if re.search(r"\b\d+\b", lines[i]) and lines[i].strip().endswith(";")
        ]
        if not numbered:
            return None
        i = pick(rng, numbered)
        m = re.search(r"\b(\d+)\b", lines[i])
        new_value = str(int(m.group(1)) + int(rng.integers(1, 4)))
        lines[i] = lines[i][: m.start(1)] + new_value + lines[i][m.end(1) :]
        return "\n".join(lines) + "\n"
    if roll < 0.7:
        # Guard an operation — overlaps the security feature space on purpose.
        anchors = statement_line_indices(lines, lo, hi)
        if not anchors:
            return None
        at = pick(rng, anchors)
        idents = identifiers_in([lines[at]]) or ["state"]
        indent = indent_of(lines[at])
        var = pick(rng, idents)
        stmt = lines.pop(at)
        lines.insert(at, f"{indent}if ({var} != 0) {{")
        lines.insert(at + 1, "    " + stmt)
        lines.insert(at + 2, f"{indent}}}")
        return "\n".join(lines) + "\n"
    # Operator direction fix.
    swaps = [(" + ", " - "), (" - ", " + "), (" == ", " != ")]
    candidates = [(i, old, new) for i in range(lo, hi + 1) for old, new in swaps if old in lines[i]]
    if not candidates:
        return None
    i, old, new = pick(rng, candidates)
    lines[i] = lines[i].replace(old, new, 1)
    return "\n".join(lines) + "\n"


def gen_cleanup(text: str, rng: np.random.Generator) -> str | None:
    """Remove a statement or blank-line noise (dead code cleanup)."""
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    lo, hi = body_range(fn)
    anchors = statement_line_indices(lines, lo, hi)
    if len(anchors) < 3:
        return None
    at = pick(rng, anchors[1:-1])
    del lines[at]
    return "\n".join(lines) + "\n"


def gen_logging(text: str, rng: np.random.Generator) -> str | None:
    """Insert a log/debug print statement."""
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    lo, hi = body_range(fn)
    anchors = statement_line_indices(lines, lo, hi)
    if not anchors:
        return None
    at = pick(rng, anchors)
    indent = indent_of(lines[at])
    idents = identifiers_in([lines[at]]) or ["state"]
    var = pick(rng, idents)
    call = pick(rng, ["pr_debug", "fprintf(stderr,", "log_info", "printf"])
    if call == "fprintf(stderr,":
        stmt = f'{indent}fprintf(stderr, "{fn.name}: {var}=%d\\n", {var});'
    else:
        stmt = f'{indent}{call}("{fn.name}: {var}=%d\\n", {var});'
    lines.insert(at + 1, stmt)
    return "\n".join(lines) + "\n"


def gen_defensive(text: str, rng: np.random.Generator) -> str | None:
    """Add a validation check that fixes no actual vulnerability.

    Feature-space twin of security types 1-3: an ``if (...) return``
    guard on a parameter or state variable.  Real projects land these as
    hardening/robustness commits constantly, and the paper's experts had
    to read each candidate precisely because such commits are not security
    patches despite looking like them.
    """
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    lo, hi = body_range(fn)
    anchors = statement_line_indices(lines, lo, hi)
    if not anchors:
        return None
    at = pick(rng, anchors)
    idents = identifiers_in(lines[lo : hi + 1]) or ["arg"]
    var = pick(rng, idents)
    indent = indent_of(lines[at])
    cond = pick(
        rng,
        [
            f"!{var}",
            f"{var} == NULL",
            f"{var} < 0",
            f"{var} > {int(rng.integers(64, 2048))}",
            f"{var} & 0x{int(rng.integers(1, 64)):02x}",
        ],
    )
    rt = fn.return_type_text.strip()
    ret = "" if rt == "void" or rt.endswith(" void") else pick(rng, ["-1", "0"])
    lines.insert(at, f"{indent}if ({cond})")
    lines.insert(at + 1, f"{indent}    return {ret};".replace(" ;", ";"))
    return "\n".join(lines) + "\n"


NONSEC_GENERATORS: dict[str, Callable[[str, np.random.Generator], str | None]] = {
    "feature": gen_feature,
    "refactor": gen_refactor,
    "perf": gen_perf,
    "bugfix": gen_bugfix,
    "cleanup": gen_cleanup,
    "logging": gen_logging,
    "defensive": gen_defensive,
}


def apply_nonsec_pattern(text: str, kind: str, rng: np.random.Generator) -> str | None:
    """Apply one non-security change of *kind*; None if inapplicable."""
    return NONSEC_GENERATORS[kind](text, rng)
