"""The synthetic world: repositories, commit histories, and ground truth.

This module replaces GitHub + the human-labeled reality behind it.  It
builds a configurable number of repositories, then drives their histories
forward with a mixture of security patches (drawn from the Table V pattern
taxonomy) and non-security changes, recording a ground-truth label for every
commit.  Key dials mirror the paper's measured world:

* ``security_fraction`` — P(commit is a security patch); the paper observes
  6-10% in the wild (§III-A).
* ``nvd_report_fraction`` — P(a security patch is reported to a CVE and
  hence visible to the NVD); the remainder are *silent* security patches.
* Per-source pattern-type distributions — the NVD skews long-tail with
  redesign/sanity-check heads while the wild is function-call-heavy
  (Fig. 6); the defaults encode those shapes.

**Sharded construction.**  The paper crawls 313 independent repositories;
histories never interact, so :func:`build_world` is organized around
per-repository shards.  A parent ``np.random.SeedSequence(config.seed)``
pre-draws the global step→repo schedule and each step's security/non-security
decision, then spawns one child seed per repository; each shard builds its
repository's full history (seed files, commits, labels) from its own child
stream, so shards are mutually independent and can run in a process pool
(``build_world(config, workers=N)``).  Shard results merge in repo-index
order with per-shard label-count parity checks, and the serial path replays
the identical sharded scheme — ``workers=1`` and ``workers=N`` produce
bit-identical worlds (same :meth:`World.digest`, same label order) and
bit-identical obs counter reports (see DESIGN.md, "Sharded world build").
"""

from __future__ import annotations

import concurrent.futures
import datetime
import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import CorpusError
from ..obs import ObsRegistry, ObsSnapshot
from ..patch.model import Patch
from ..vcs.repository import Repository
from .codegen import CodeGenerator
from .nonsec import NONSEC_GENERATORS, NONSEC_KIND_WEIGHTS, apply_nonsec_pattern
from .vulnpatterns import PATTERN_NAMES, apply_security_pattern

__all__ = [
    "WorldConfig",
    "CommitLabel",
    "World",
    "build_world",
    "NVD_TYPE_DISTRIBUTION",
    "WILD_TYPE_DISTRIBUTION",
]

#: Pattern-type distribution of NVD-reported security patches (Fig. 6 left):
#: long tail with Type 11 (redesign) as the head class.
NVD_TYPE_DISTRIBUTION: dict[int, float] = {
    11: 0.30,
    3: 0.17,
    1: 0.13,
    8: 0.10,
    2: 0.08,
    5: 0.07,
    4: 0.05,
    10: 0.04,
    7: 0.025,
    6: 0.017,
    9: 0.012,
    12: 0.006,
}

#: Pattern-type distribution of wild (silent) security patches (Fig. 6
#: right): Type 8 (function calls) becomes the head class.
WILD_TYPE_DISTRIBUTION: dict[int, float] = {
    8: 0.28,
    3: 0.18,
    1: 0.10,
    2: 0.10,
    5: 0.09,
    10: 0.06,
    4: 0.05,
    11: 0.05,
    7: 0.035,
    6: 0.025,
    9: 0.02,
    12: 0.01,
}

_EXPLICIT_MESSAGES = (
    "Fix buffer overflow in {anchor}",
    "CVE-{year}-{num}: prevent out-of-bounds access in {anchor}",
    "fix use-after-free in {anchor}",
    "avoid integer overflow when parsing {anchor}",
    "prevent NULL pointer dereference in {anchor}",
    "security: validate {anchor} before use",
)

_SILENT_MESSAGES = (
    "fix crash in {anchor}",
    "handle edge case in {anchor}",
    "fix potential issue with {anchor}",
    "robustness fix for {anchor}",
    "don't trust input length in {anchor}",
    "correct {anchor} handling",
)

_NONSEC_MESSAGES: dict[str, tuple[str, ...]] = {
    "feature": ("add support for {anchor}", "implement {anchor} handling", "new {anchor} API"),
    "refactor": ("refactor {anchor}", "rename fields in {anchor}", "simplify {anchor}"),
    "perf": ("speed up {anchor} path", "optimize {anchor} loop", "reduce copies in {anchor}"),
    "bugfix": ("fix wrong result in {anchor}", "fix off-by-one in {anchor} output", "fix {anchor} corner case"),
    "cleanup": ("remove dead code in {anchor}", "cleanup {anchor}", "drop unused statement in {anchor}"),
    "logging": ("add debug logging to {anchor}", "improve diagnostics in {anchor}", "trace {anchor} values"),
    "defensive": ("validate {anchor} argument", "harden {anchor} against bad input", "add missing parameter check in {anchor}"),
}


@dataclass(frozen=True, slots=True)
class CommitLabel:
    """Ground truth for one commit in the world.

    Attributes:
        sha: commit id.
        repo_slug: owning repository.
        is_security: whether the change fixes a vulnerability.
        pattern_type: Table V type (1-12) for security patches, else None.
        nonsec_kind: non-security category, else None.
        cve_id: assigned CVE (NVD-visible security patches only).
        silent: security patch with no CVE and a non-security-sounding message.
    """

    sha: str
    repo_slug: str
    is_security: bool
    pattern_type: int | None = None
    nonsec_kind: str | None = None
    cve_id: str | None = None
    silent: bool = False


@dataclass(slots=True)
class WorldConfig:
    """Knobs for :func:`build_world`.

    Attributes mirror the paper's measured quantities; see module docstring.
    """

    n_repos: int = 8
    files_per_repo: int = 4
    functions_per_file: int = 4
    n_commits: int = 400
    security_fraction: float = 0.08
    nvd_report_fraction: float = 0.35
    explicit_message_fraction: float = 0.45
    seed: int = 2021
    nvd_type_distribution: dict[int, float] = field(
        default_factory=lambda: dict(NVD_TYPE_DISTRIBUTION)
    )
    wild_type_distribution: dict[int, float] = field(
        default_factory=lambda: dict(WILD_TYPE_DISTRIBUTION)
    )

    def validate(self) -> None:
        """Sanity-check the configuration.

        Raises:
            CorpusError: on out-of-range values.
        """
        if self.n_repos < 1 or self.n_commits < 0:
            raise CorpusError("n_repos >= 1 and n_commits >= 0 required")
        if not 0.0 <= self.security_fraction <= 1.0:
            raise CorpusError("security_fraction must be in [0, 1]")
        if not 0.0 <= self.nvd_report_fraction <= 1.0:
            raise CorpusError("nvd_report_fraction must be in [0, 1]")
        for dist in (self.nvd_type_distribution, self.wild_type_distribution):
            if abs(sum(dist.values()) - 1.0) > 1e-6:
                raise CorpusError("type distribution must sum to 1")
            if set(dist) - set(PATTERN_NAMES):
                raise CorpusError("type distribution has unknown pattern ids")


class World:
    """The built world: repositories plus ground truth.

    Args:
        repos: slug → repository, in repo-index order.
        labels: sha → ground truth, in merge (repo-index, history) order.
        build_stats: attempted/produced/skip accounting from the build
            (totals plus a per-shard breakdown); ``None`` for hand-built
            worlds.
    """

    def __init__(
        self,
        repos: dict[str, Repository],
        labels: dict[str, CommitLabel],
        build_stats: dict | None = None,
    ) -> None:
        self.repos = repos
        self.labels = labels
        self.build_stats = build_stats
        self._patch_cache: dict[str, Patch] = {}

    def __getstate__(self) -> dict:
        # The patch cache is a pure memo over repo contents; pickling it
        # would bloat `ExperimentWorld.cached` artifacts and every payload
        # shipped to pool workers.  Drop it and re-warm lazily on use.
        state = self.__dict__.copy()
        state["_patch_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Old pickles predate build_stats; keep attribute access total.
        self.__dict__.setdefault("build_stats", None)
        self.__dict__.setdefault("_patch_cache", {})

    # ---- views --------------------------------------------------------

    def all_shas(self) -> list[str]:
        """Every labeled commit sha (i.e. every non-initial commit)."""
        return list(self.labels)

    def security_shas(self) -> list[str]:
        """Shas of all security patches (NVD-reported and silent)."""
        return [sha for sha, lab in self.labels.items() if lab.is_security]

    def nvd_shas(self) -> list[str]:
        """Shas of security patches visible to the NVD (have a CVE)."""
        return [sha for sha, lab in self.labels.items() if lab.cve_id is not None]

    def wild_shas(self) -> list[str]:
        """Shas of all commits *not* indexed by the NVD (the wild pool)."""
        return [sha for sha, lab in self.labels.items() if lab.cve_id is None]

    def label(self, sha: str) -> CommitLabel:
        """Ground truth for one sha."""
        return self.labels[sha]

    def repo_of(self, sha: str) -> Repository:
        """The repository containing *sha*."""
        return self.repos[self.labels[sha].repo_slug]

    def patch_for(self, sha: str) -> Patch:
        """The commit exported as a Patch (C/C++-filtered), cached."""
        cached = self._patch_cache.get(sha)
        if cached is None:
            cached = self.repo_of(sha).patch_for(sha).only_c_cpp()
            self._patch_cache[sha] = cached
        return cached

    def patches_for(self, shas: list[str]) -> list[Patch]:
        """Bulk :meth:`patch_for`."""
        return [self.patch_for(sha) for sha in shas]

    def digest(self) -> str:
        """Git-style content digest of the world: sha1 over its commit ids.

        Commit shas already commit to repo slug, path contents, and history
        position, so hashing the sorted sha set (with a per-sha security
        bit) identifies the world's ground truth without walking any trees.
        Two worlds with equal digests are interchangeable for every
        experiment; run manifests record this so a trace can be matched to
        the exact corpus that produced it.
        """
        h = hashlib.sha1()
        for sha in sorted(self.labels):
            h.update(sha.encode("ascii"))
            h.update(b"1" if self.labels[sha].is_security else b"0")
        return h.hexdigest()


def _draw_type(rng: np.random.Generator, dist: dict[int, float]) -> int:
    types = sorted(dist)
    probs = np.array([dist[t] for t in types])
    probs = probs / probs.sum()
    return int(types[int(rng.choice(len(types), p=probs))])


def _message_anchor(rng: np.random.Generator, path: str, gen: CodeGenerator) -> str:
    base = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return base if rng.random() < 0.5 else gen.noun()


_OWNERS = ("sunlab", "coreutils", "netstack", "imglib", "parsekit", "embedos", "dbkit", "mediax")


@dataclass(frozen=True, slots=True)
class _ShardTask:
    """Everything one repository shard needs to build itself.

    Self-contained and small (no world payload), so pool dispatch is cheap.

    Attributes:
        index: repo index (merge order and slug suffix).
        owner: slug owner segment.
        config: the world configuration.
        seed: this repo's spawned child seed (independent of every sibling).
        steps: ``(global step, is_security)`` pairs assigned to this repo by
            the pre-drawn schedule, in global step order.
    """

    index: int
    owner: str
    config: WorldConfig
    seed: np.random.SeedSequence
    steps: tuple[tuple[int, bool], ...]


@dataclass(slots=True)
class _ShardResult:
    """One shard's built repository, labels, and accounting."""

    index: int
    slug: str
    repo: Repository
    labels: list[CommitLabel]
    stats: dict[str, int]
    snapshot: ObsSnapshot


def _shard_tasks(config: WorldConfig) -> list[_ShardTask]:
    """Derive the deterministic shard plan for *config*.

    The parent stream (seeded by ``SeedSequence(config.seed)``) pre-draws
    the whole step→repo schedule and each step's security decision; the
    spawned children seed the per-repo streams.  Every build mode (serial,
    any worker count) starts from this identical plan.
    """
    parent = np.random.SeedSequence(config.seed)
    schedule_rng = np.random.default_rng(parent)
    repo_for_step = schedule_rng.integers(0, config.n_repos, size=config.n_commits)
    security_for_step = schedule_rng.random(config.n_commits) < config.security_fraction
    steps: list[list[tuple[int, bool]]] = [[] for _ in range(config.n_repos)]
    for step in range(config.n_commits):
        steps[int(repo_for_step[step])].append((step, bool(security_for_step[step])))
    return [
        _ShardTask(
            index=r,
            owner=_OWNERS[r % len(_OWNERS)],
            config=config,
            seed=child,
            steps=tuple(steps[r]),
        )
        for r, child in enumerate(parent.spawn(config.n_repos))
    ]


def _build_shard(task: _ShardTask) -> _ShardResult:
    """Build one repository's full history from its child seed.

    Runs identically in-process and in a pool worker: observations go to a
    local registry whose snapshot rides back for deterministic merging.
    """
    config = task.config
    rng = np.random.default_rng(task.seed)
    gen = CodeGenerator(rng)
    local = ObsRegistry()
    stats = {
        "attempted": len(task.steps),
        "produced": 0,
        "skipped_no_c_paths": 0,
        "skipped_exhausted": 0,
        "security": 0,
        "nonsec": 0,
    }
    with local.span("world.shard", repo_index=task.index, steps=len(task.steps)) as sp:
        slug = f"{task.owner}/{gen.module_name()}-{task.index}"
        repo = Repository(slug)
        files: dict[str, str] = {
            "README.md": f"# {slug}\n\nSynthetic project {task.index}.\n",
            "ChangeLog": "initial release\n",
            "Makefile": "all:\n\tcc -o app src/*.c\n",
        }
        for _ in range(config.files_per_repo):
            gfile = gen.gen_file(n_functions=config.functions_per_file)
            files[gfile.path] = gfile.render()
        repo.commit(files, "initial import", date=_date(rng, 0))

        labels: list[CommitLabel] = []
        for step, is_security in task.steps:
            tree = repo.checkout(repo.head)
            c_paths = [p for p in tree if p.endswith((".c", ".h"))]
            if not c_paths:
                stats["skipped_no_c_paths"] += 1
                local.add("world_commits_skipped_no_c_paths")
                continue
            if is_security:
                label = _apply_security(config, rng, gen, repo, tree, c_paths, step)
            else:
                label = _apply_nonsec(config, rng, gen, repo, tree, c_paths, step)
            if label is None:
                stats["skipped_exhausted"] += 1
                local.add("world_commits_skipped_exhausted")
                continue
            labels.append(label)
            stats["produced"] += 1
            stats["security" if is_security else "nonsec"] += 1
        local.add("world_commits_attempted", stats["attempted"])
        local.add("world_commits_produced", stats["produced"])
        if sp is not None:
            sp.attributes["slug"] = slug
            sp.attributes["produced"] = stats["produced"]
    return _ShardResult(
        index=task.index,
        slug=slug,
        repo=repo,
        labels=labels,
        stats=stats,
        snapshot=local.snapshot(),
    )


def _merge_shards(
    tasks: list[_ShardTask], results: list[_ShardResult], obs: ObsRegistry
) -> World:
    """Fold shard results into one World, in repo-index order.

    Verifies per-shard label-count parity (attempted = produced + skips,
    one label per produced commit, every label owned by its shard's repo)
    so a lost or duplicated shard payload fails loudly instead of silently
    shrinking the corpus.

    Raises:
        CorpusError: on any parity violation.
    """
    repos: dict[str, Repository] = {}
    labels: dict[str, CommitLabel] = {}
    totals = {
        "attempted": 0,
        "produced": 0,
        "skipped_no_c_paths": 0,
        "skipped_exhausted": 0,
        "security": 0,
        "nonsec": 0,
    }
    shards: dict[str, dict[str, int]] = {}
    for task, res in zip(tasks, results):
        stats = res.stats
        skips = stats["skipped_no_c_paths"] + stats["skipped_exhausted"]
        if (
            stats["attempted"] != len(task.steps)
            or stats["produced"] + skips != stats["attempted"]
            or len(res.labels) != stats["produced"]
        ):
            raise CorpusError(
                f"shard {res.index} ({res.slug}) label-count parity violated: "
                f"{len(task.steps)} scheduled, {stats['attempted']} attempted, "
                f"{stats['produced']} produced + {skips} skipped, "
                f"{len(res.labels)} labels"
            )
        if any(lab.repo_slug != res.slug for lab in res.labels):
            raise CorpusError(f"shard {res.index} returned labels for a foreign repo")
        if res.slug in repos:
            raise CorpusError(f"duplicate repo slug {res.slug!r} across shards")
        obs.merge(res.snapshot)
        repos[res.slug] = res.repo
        for lab in res.labels:
            labels[lab.sha] = lab
        shards[res.slug] = dict(stats)
        for key in totals:
            totals[key] += stats[key]
    return World(repos, labels, build_stats={**totals, "shards": shards})


def _build_shards_parallel(
    tasks: list[_ShardTask], workers: int
) -> list[_ShardResult] | None:
    """Build every shard in a process pool; None on any pool failure.

    ``pool.map`` preserves task order, so merge order (and hence the world)
    is identical to the serial path.
    """
    try:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_build_shard, tasks))
    except Exception:
        # Nothing merged yet; the serial fallback replays the identical
        # shard plan from a clean slate.
        return None


def build_world(
    config: WorldConfig | None = None,
    workers: int | None = None,
    obs: ObsRegistry | None = None,
) -> World:
    """Build a world per *config* (defaults to :class:`WorldConfig`()).

    Args:
        config: world knobs; see :class:`WorldConfig`.
        workers: >1 builds repository shards in a process pool of this
            size.  The result — label order, :meth:`World.digest`, and
            merged obs counters — is bit-identical to the serial build.
        obs: observability registry receiving per-shard spans and the
            ``world_commits_*`` counters; a private one is used if omitted.
    """
    config = config or WorldConfig()
    config.validate()
    obs = obs if obs is not None else ObsRegistry()
    tasks = _shard_tasks(config)
    results: list[_ShardResult] | None = None
    if workers is not None and workers > 1 and len(tasks) > 1:
        with obs.timer("world_build_parallel"):
            results = _build_shards_parallel(tasks, workers)
    if results is None:
        results = [_build_shard(task) for task in tasks]
    return _merge_shards(tasks, results, obs)


_WEEKDAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def _date(rng: np.random.Generator, step: int) -> str:
    year = 2015 + (step // 400) % 5
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    weekday = _WEEKDAYS[datetime.date(year, month, day).weekday()]
    return f"{weekday} {month:02d}/{day:02d} 12:00:00 {year} +0000"


def _apply_security(
    config: WorldConfig,
    rng: np.random.Generator,
    gen: CodeGenerator,
    repo: Repository,
    tree: dict[str, str],
    c_paths: list[str],
    step: int,
) -> CommitLabel | None:
    reported = rng.random() < config.nvd_report_fraction
    dist = config.nvd_type_distribution if reported else config.wild_type_distribution
    # Retry across types/files until a generator applies.
    for _ in range(8):
        ptype = _draw_type(rng, dist)
        path = c_paths[int(rng.integers(0, len(c_paths)))]
        new_text = apply_security_pattern(tree[path], ptype, rng)
        if new_text is not None and new_text != tree[path]:
            break
    else:
        return None
    files = dict(tree)
    files[path] = new_text
    # CVE-worthy fixes tend to be more substantial commits: NVD-reported
    # patches apply the pattern at 1-3 sites (sometimes across two files),
    # while silent wild fixes stay small.  This reproduces the NVD-vs-wild
    # distribution discrepancy the paper measures (RQ2: models trained on
    # the NVD "would not be able to well profile patches in the wild").
    if reported:
        for _ in range(int(rng.integers(1, 3))):
            extra_path = c_paths[int(rng.integers(0, len(c_paths)))]
            extra = apply_security_pattern(files[extra_path], ptype, rng)
            if extra is not None and extra != files[extra_path]:
                files[extra_path] = extra

    explicit = rng.random() < config.explicit_message_fraction
    pool = _EXPLICIT_MESSAGES if explicit else _SILENT_MESSAGES
    anchor = _message_anchor(rng, path, gen)
    year = 2015 + (step // 400) % 5
    message = pool[int(rng.integers(0, len(pool)))].format(
        anchor=anchor, year=year, num=int(rng.integers(1000, 99999))
    )
    cve_id = f"CVE-{year}-{int(rng.integers(1000, 99999))}" if reported else None
    # NVD-visible patches occasionally also touch the changelog — the
    # crawler must strip these non-C/C++ parts (§III-A).
    if reported and rng.random() < 0.3 and "ChangeLog" in files:
        files["ChangeLog"] = files["ChangeLog"] + f"* {message}\n"
    sha = repo.commit(files, message, date=_date(rng, step))
    return CommitLabel(
        sha=sha,
        repo_slug=repo.slug,
        is_security=True,
        pattern_type=ptype,
        cve_id=cve_id,
        silent=not reported and not explicit,
    )


def _apply_nonsec(
    config: WorldConfig,
    rng: np.random.Generator,
    gen: CodeGenerator,
    repo: Repository,
    tree: dict[str, str],
    c_paths: list[str],
    step: int,
) -> CommitLabel | None:
    kinds = list(NONSEC_GENERATORS)
    weights = np.array([NONSEC_KIND_WEIGHTS[k] for k in kinds])
    weights = weights / weights.sum()
    for _ in range(8):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        path = c_paths[int(rng.integers(0, len(c_paths)))]
        new_text = apply_nonsec_pattern(tree[path], kind, rng)
        if new_text is not None and new_text != tree[path]:
            break
    else:
        return None
    files = dict(tree)
    files[path] = new_text
    anchor = _message_anchor(rng, path, gen)
    pool = _NONSEC_MESSAGES[kind]
    message = pool[int(rng.integers(0, len(pool)))].format(anchor=anchor)
    if rng.random() < 0.1 and "README.md" in files:
        files["README.md"] = files["README.md"] + f"\n- {message}\n"
    sha = repo.commit(files, message, date=_date(rng, step))
    return CommitLabel(sha=sha, repo_slug=repo.slug, is_security=False, nonsec_kind=kind)
