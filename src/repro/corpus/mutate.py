"""Shared helpers for source-text mutation.

The security and non-security patch generators both work by editing a
file's text in place; these helpers locate functions, harvest identifiers,
and keep indentation consistent so the resulting diffs look like real
commits.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..lang.lexer import code_tokens
from ..lang.parser import parse_translation_unit
from ..lang.tokens import TokenKind
from ..lang.ast_nodes import FunctionDef

__all__ = [
    "function_spans",
    "body_range",
    "identifiers_in",
    "indent_of",
    "pick",
    "statement_line_indices",
]


@lru_cache(maxsize=1024)
def _parse_functions_cached(text: str) -> tuple[FunctionDef, ...]:
    try:
        unit = parse_translation_unit(text)
    except Exception:  # the generators must never crash the world builder
        return ()
    return tuple(unit.functions)


def function_spans(text: str) -> list[FunctionDef]:
    """Function definitions in *text* (empty if parsing finds none).

    Parsing is memoized on the file text: the world builder re-reads the
    same (unchanged) file many times across retries and commits, and the
    cache turns the build from quadratic to near-linear in commit count.
    """
    return list(_parse_functions_cached(text))


def body_range(fn: FunctionDef) -> tuple[int, int]:
    """0-based (first, last) body line indices inside the braces."""
    return fn.body.start_line, fn.body.end_line - 2  # skip '{' line, stop before '}'


def identifiers_in(lines: list[str]) -> list[str]:
    """Distinct identifiers appearing in the given lines, in order."""
    seen: list[str] = []
    for line in lines:
        for tok in code_tokens(line):
            if tok.kind is TokenKind.IDENTIFIER and tok.text not in seen:
                seen.append(tok.text)
    return seen


def indent_of(line: str) -> str:
    """The leading whitespace of a line (default 4 spaces when blank)."""
    stripped = line.lstrip()
    if not stripped:
        return "    "
    return line[: len(line) - len(stripped)]


def pick(rng: np.random.Generator, items):
    """Uniform choice from a non-empty sequence."""
    return items[int(rng.integers(0, len(items)))]


def statement_line_indices(lines: list[str], lo: int, hi: int) -> list[int]:
    """Indices in [lo, hi] holding single-line simple statements.

    A "simple statement" ends with ``;`` and is not a declaration-looking
    or control line — the safe anchors for inserting checks around.
    """
    out: list[int] = []
    for i in range(lo, min(hi + 1, len(lines))):
        stripped = lines[i].strip()
        if not stripped.endswith(";"):
            continue
        if stripped.startswith(("if", "for", "while", "switch", "return", "goto", "break", "continue", "}", "{")):
            continue
        out.append(i)
    return out
