"""Procedural C code generation.

Generates plausible C files — headers, globals, and functions whose bodies
mix declarations, calls, arithmetic, conditionals, and loops — that lex and
parse with :mod:`repro.lang`.  The generated code is the raw material the
patch generators in :mod:`repro.corpus.vulnpatterns` and
:mod:`repro.corpus.nonsec` later modify, so realism targets the *syntactic
feature space* of Table I rather than compilability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ml.base import seeded_rng

__all__ = ["CodeGenerator", "GeneratedFunction", "GeneratedFile"]

_NOUNS = (
    "buf data ptr len size count idx offset pkt msg hdr ctx state conn req "
    "resp node list entry key val name path file dev reg addr mask flags opt "
    "cfg arg tmp ret status err code num pos limit cap width height depth "
    "chan frame seq id token hash sum crc block page slot queue pool cache "
    "table row col item elem field rec buf2 src dst out in"
).split()

_VERBS = (
    "init parse read write alloc free check validate update process handle "
    "get set compute encode decode copy find insert remove open close send "
    "recv flush reset load store scan emit pack unpack sync push pop"
).split()

_MODULES = (
    "bits core util proto net io mem str list hash crypto codec dev fs sock "
    "buf pkt tls http json xml db log evt tty usb pci vid img snd"
).split()

_SCALAR_TYPES = ("int", "unsigned int", "size_t", "long", "uint32_t", "uint8_t", "short")
_PTR_TYPES = ("char *", "unsigned char *", "void *", "uint8_t *", "const char *")
_CMP_OPS = ("<", ">", "<=", ">=", "==", "!=")
_ARITH_OPS = ("+", "-", "*", "/", "%")
_BIT_OPS = ("&", "|", "^", "<<", ">>")


@dataclass(slots=True)
class GeneratedFunction:
    """A generated function: its signature pieces and body lines."""

    name: str
    return_type: str
    params: list[tuple[str, str]]  # (type, name)
    body_lines: list[str]
    local_vars: list[tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        """The function's full source text."""
        params = ", ".join(f"{t}{n}" if t.endswith("*") else f"{t} {n}" for t, n in self.params)
        if not params:
            params = "void"
        lines = [f"{self.return_type} {self.name}({params})", "{"]
        lines.extend(self.body_lines)
        lines.append("}")
        return "\n".join(lines)


@dataclass(slots=True)
class GeneratedFile:
    """A generated source file: path, includes, and functions."""

    path: str
    includes: list[str]
    globals_: list[str]
    functions: list[GeneratedFunction]

    def render(self) -> str:
        """The file's full source text."""
        parts = [f"#include <{inc}>" for inc in self.includes]
        parts.append("")
        parts.extend(self.globals_)
        if self.globals_:
            parts.append("")
        for fn in self.functions:
            parts.append(fn.render())
            parts.append("")
        return "\n".join(parts) + "\n"


class CodeGenerator:
    """Deterministic pseudo-random C generator.

    Args:
        rng: NumPy generator or seed controlling all choices.
    """

    def __init__(self, rng: int | np.random.Generator | None = None) -> None:
        self._rng = seeded_rng(rng)
        self._fn_counter = 0

    # ---- naming -------------------------------------------------------

    def _pick(self, pool: tuple | list) -> str:
        return pool[int(self._rng.integers(0, len(pool)))]

    def noun(self) -> str:
        """A plausible variable-ish identifier."""
        return self._pick(_NOUNS)

    def func_name(self, module: str | None = None) -> str:
        """A unique plausible function name."""
        self._fn_counter += 1
        verb = self._pick(_VERBS)
        noun = self.noun()
        prefix = f"{module}_" if module else ""
        return f"{prefix}{verb}_{noun}_{self._fn_counter}"

    def module_name(self) -> str:
        """A module slug used for file names and function prefixes."""
        return self._pick(_MODULES)

    # ---- expressions ----------------------------------------------------

    def _var_of(self, fn: GeneratedFunction) -> str:
        candidates = [n for _, n in fn.local_vars + fn.params]
        return self._pick(candidates) if candidates else "ret"

    def _scalar_expr(self, fn: GeneratedFunction, depth: int = 0) -> str:
        roll = self._rng.random()
        if roll < 0.35 or depth >= 2:
            return self._var_of(fn)
        if roll < 0.55:
            return str(int(self._rng.integers(0, 256)))
        if roll < 0.8:
            op = self._pick(_ARITH_OPS)
            return f"{self._var_of(fn)} {op} {self._scalar_expr(fn, depth + 1)}"
        op = self._pick(_BIT_OPS)
        return f"({self._var_of(fn)} {op} 0x{int(self._rng.integers(1, 255)):02x})"

    def condition(self, fn: GeneratedFunction) -> str:
        """A boolean condition over the function's variables."""
        roll = self._rng.random()
        if roll < 0.4:
            return f"{self._var_of(fn)} {self._pick(_CMP_OPS)} {self._scalar_expr(fn, 1)}"
        if roll < 0.6:
            return f"!{self._var_of(fn)}"
        if roll < 0.8:
            left = f"{self._var_of(fn)} {self._pick(_CMP_OPS)} {int(self._rng.integers(0, 128))}"
            right = f"{self._var_of(fn)} {self._pick(_CMP_OPS)} {self._var_of(fn)}"
            return f"{left} && {right}"
        return f"({self._var_of(fn)} & 0x{int(self._rng.integers(1, 64)):02x})"

    # ---- statements -----------------------------------------------------

    def _stmt_assign(self, fn: GeneratedFunction, indent: str) -> list[str]:
        return [f"{indent}{self._var_of(fn)} = {self._scalar_expr(fn)};"]

    def _stmt_call(self, fn: GeneratedFunction, indent: str) -> list[str]:
        callee = f"{self._pick(_VERBS)}_{self.noun()}"
        args = ", ".join(self._var_of(fn) for _ in range(int(self._rng.integers(1, 4))))
        if self._rng.random() < 0.4:
            return [f"{indent}{self._var_of(fn)} = {callee}({args});"]
        return [f"{indent}{callee}({args});"]

    def _stmt_if(self, fn: GeneratedFunction, indent: str) -> list[str]:
        lines = [f"{indent}if ({self.condition(fn)}) {{"]
        lines.extend(self._stmt_assign(fn, indent + "    "))
        if self._rng.random() < 0.4:
            lines.extend(self._stmt_call(fn, indent + "    "))
        lines.append(f"{indent}}}")
        return lines

    def _stmt_if_return(self, fn: GeneratedFunction, indent: str) -> list[str]:
        value = "-1" if fn.return_type != "void" else ""
        ret = f"return {value};".replace(" ;", ";")
        return [f"{indent}if ({self.condition(fn)})", f"{indent}    {ret}"]

    def _stmt_for(self, fn: GeneratedFunction, indent: str) -> list[str]:
        i = self._pick(("i", "j", "k"))
        bound = self._var_of(fn)
        lines = [f"{indent}for ({i} = 0; {i} < {bound}; {i}++) {{"]
        lines.extend(self._stmt_assign(fn, indent + "    "))
        lines.append(f"{indent}}}")
        return lines

    def _stmt_while(self, fn: GeneratedFunction, indent: str) -> list[str]:
        lines = [f"{indent}while ({self.condition(fn)}) {{"]
        lines.extend(self._stmt_call(fn, indent + "    "))
        lines.append(f"{indent}}}")
        return lines

    def _stmt_memcall(self, fn: GeneratedFunction, indent: str) -> list[str]:
        buf = self._var_of(fn)
        roll = self._rng.random()
        if roll < 0.4:
            return [f"{indent}{buf} = malloc({self._var_of(fn)} * sizeof(int));"]
        if roll < 0.7:
            return [f"{indent}memcpy({buf}, {self._var_of(fn)}, {self._var_of(fn)});"]
        return [f"{indent}memset({buf}, 0, sizeof({buf}));"]

    # ---- functions & files ----------------------------------------------

    def gen_function(self, module: str | None = None) -> GeneratedFunction:
        """Generate one function with a 6-20 line body."""
        rng = self._rng
        return_type = self._pick(("int", "int", "int", "void", "size_t", "long"))
        n_params = int(rng.integers(1, 4))
        params: list[tuple[str, str]] = []
        used: set[str] = set()
        for _ in range(n_params):
            name = self.noun()
            while name in used:
                name = self.noun()
            used.add(name)
            ptype = self._pick(_PTR_TYPES) if rng.random() < 0.4 else self._pick(_SCALAR_TYPES) + " "
            params.append((ptype, name))
        fn = GeneratedFunction(
            name=self.func_name(module),
            return_type=return_type,
            params=params,
            body_lines=[],
        )
        indent = "    "
        # Declarations.
        n_decls = int(rng.integers(2, 5))
        fn.body_lines.append(f"{indent}int i, j;")
        fn.local_vars.append(("int", "i"))
        fn.local_vars.append(("int", "j"))
        for _ in range(n_decls):
            name = self.noun()
            if name in used:
                continue
            used.add(name)
            dtype = self._pick(_SCALAR_TYPES)
            init = f" = {int(rng.integers(0, 64))}" if rng.random() < 0.6 else ""
            fn.body_lines.append(f"{indent}{dtype} {name}{init};")
            fn.local_vars.append((dtype, name))
        fn.body_lines.append("")
        # Statements.
        makers = (
            (self._stmt_assign, 0.30),
            (self._stmt_call, 0.20),
            (self._stmt_if, 0.16),
            (self._stmt_if_return, 0.08),
            (self._stmt_for, 0.10),
            (self._stmt_while, 0.06),
            (self._stmt_memcall, 0.10),
        )
        weights = np.array([w for _, w in makers])
        weights /= weights.sum()
        n_stmts = int(rng.integers(4, 10))
        for _ in range(n_stmts):
            maker = makers[int(rng.choice(len(makers), p=weights))][0]
            fn.body_lines.extend(maker(fn, indent))
        if fn.return_type != "void":
            fn.body_lines.append(f"{indent}return {self._var_of(fn)};")
        return fn

    def gen_file(self, directory: str = "src", n_functions: int | None = None) -> GeneratedFile:
        """Generate a file with several functions."""
        rng = self._rng
        module = self.module_name()
        n = n_functions if n_functions is not None else int(rng.integers(2, 6))
        includes = ["stdio.h", "stdlib.h", "string.h"]
        globals_ = [f"static int {module}_{self.noun()}_max = {int(rng.integers(16, 4096))};"]
        functions = [self.gen_function(module) for _ in range(n)]
        suffix = int(rng.integers(0, 10_000))
        return GeneratedFile(
            path=f"{directory}/{module}_{suffix}.c",
            includes=includes,
            globals_=globals_,
            functions=functions,
        )
