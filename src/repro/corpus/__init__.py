"""Synthetic corpus: procedural C projects, patch generators, world builder.

Stands in for GitHub's 6M wild commits.  See DESIGN.md's substitution table
for why a generative corpus with ground truth preserves the behaviour the
paper's pipelines depend on.
"""

from .codegen import CodeGenerator, GeneratedFile, GeneratedFunction
from .nonsec import NONSEC_GENERATORS, NONSEC_KINDS, apply_nonsec_pattern
from .vulnpatterns import PATTERN_NAMES, SECURITY_GENERATORS, apply_security_pattern
from .world import (
    NVD_TYPE_DISTRIBUTION,
    WILD_TYPE_DISTRIBUTION,
    CommitLabel,
    World,
    WorldConfig,
    build_world,
)

__all__ = [
    "CodeGenerator",
    "CommitLabel",
    "GeneratedFile",
    "GeneratedFunction",
    "NONSEC_GENERATORS",
    "NONSEC_KINDS",
    "NVD_TYPE_DISTRIBUTION",
    "PATTERN_NAMES",
    "SECURITY_GENERATORS",
    "WILD_TYPE_DISTRIBUTION",
    "World",
    "WorldConfig",
    "apply_nonsec_pattern",
    "apply_security_pattern",
    "build_world",
]
