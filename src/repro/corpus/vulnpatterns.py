"""The twelve security-patch pattern generators (Table V taxonomy).

Each generator takes a file's source text and returns the *patched* text —
the world builder commits the result, so the repository history contains a
security fix whose code change matches the corresponding Table V category:

====  =======================================================
Type  Pattern
====  =======================================================
1     add or change bound checks
2     add or change null checks
3     add or change other sanity checks
4     change variable definitions
5     change variable values
6     change function declarations
7     change function parameters
8     add or change function calls
9     add or change jump statements
10    move statements without modification
11    add or change functions (redesign)
12    others
====  =======================================================

Generators return ``None`` when the file offers no applicable anchor, and
the world builder falls back to another type.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .codegen import CodeGenerator
from .mutate import (
    body_range,
    function_spans,
    identifiers_in,
    indent_of,
    pick,
    statement_line_indices,
)

__all__ = [
    "PATTERN_NAMES",
    "SECURITY_GENERATORS",
    "apply_security_pattern",
]

PATTERN_NAMES: dict[int, str] = {
    1: "add or change bound checks",
    2: "add or change null checks",
    3: "add or change other sanity checks",
    4: "change variable definitions",
    5: "change variable values",
    6: "change function declarations",
    7: "change function parameters",
    8: "add or change function calls",
    9: "add or change jump statements",
    10: "move statements without modification",
    11: "add or change functions (redesign)",
    12: "others",
}


def _returns_void(fn) -> bool:
    """True if a parsed function's return type is plain void."""
    rt = fn.return_type_text.strip()
    return rt == "void" or rt.endswith(" void")


def _pick_function_body(text: str, rng: np.random.Generator):
    """Return (lines, fn, lo, hi) for a random function, or None."""
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    lo, hi = body_range(fn)
    if hi <= lo:
        return None
    return lines, fn, lo, hi


def _scalar_ident(lines: list[str], lo: int, hi: int, rng: np.random.Generator, fallback: str) -> str:
    idents = identifiers_in(lines[lo : hi + 1])
    return pick(rng, idents) if idents else fallback


def gen_bound_check(text: str, rng: np.random.Generator) -> str | None:
    """Type 1: insert a bound check before an indexing/simple statement."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    anchors = statement_line_indices(lines, lo, hi)
    if not anchors:
        return None
    at = pick(rng, anchors)
    var = _scalar_ident(lines, lo, hi, rng, "len")
    bound = pick(rng, ["sizeof(" + var + ")", str(int(rng.integers(16, 4096))), _scalar_ident(lines, lo, hi, rng, "max")])
    op = pick(rng, [">", ">=", ">", ">="])
    indent = indent_of(lines[at])
    ret = "-1" if not _returns_void(fn) else ""
    check = [f"{indent}if ({var} {op} {bound})", f"{indent}    return {ret};".replace(" ;", ";")]
    return "\n".join(lines[:at] + check + lines[at:]) + "\n"


def gen_null_check(text: str, rng: np.random.Generator) -> str | None:
    """Type 2: insert a NULL check after an allocation/assignment."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    # Prefer a malloc line; fall back to any simple statement.
    mallocs = [i for i in range(lo, hi + 1) if "malloc(" in lines[i] or "calloc(" in lines[i]]
    anchors = mallocs or statement_line_indices(lines, lo, hi)
    if not anchors:
        return None
    at = pick(rng, anchors)
    stripped = lines[at].strip()
    var = stripped.split("=", 1)[0].strip().lstrip("*") if "=" in stripped else _scalar_ident(lines, lo, hi, rng, "ptr")
    if not var.isidentifier():
        var = _scalar_ident(lines, lo, hi, rng, "ptr")
    indent = indent_of(lines[at])
    form = pick(rng, [f"!{var}", f"{var} == NULL"])
    ret = pick(rng, ["-1", "0"]) if not _returns_void(fn) else ""
    check = [f"{indent}if ({form})", f"{indent}    return {ret};".replace(" ;", ";")]
    return "\n".join(lines[: at + 1] + check + lines[at + 1 :]) + "\n"


def gen_sanity_check(text: str, rng: np.random.Generator) -> str | None:
    """Type 3: add a flag/range/state sanity check."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    anchors = statement_line_indices(lines, lo, hi)
    if not anchors:
        return None
    at = pick(rng, anchors)
    var = _scalar_ident(lines, lo, hi, rng, "flags")
    indent = indent_of(lines[at])
    cond = pick(
        rng,
        [
            f"{var} & 0x{int(rng.integers(1, 128)):02x}",
            f"{var} < 0 || {var} > {int(rng.integers(64, 1024))}",
            f"{var} != {int(rng.integers(0, 4))} && {var} != {int(rng.integers(4, 16))}",
        ],
    )
    ret = "-1" if not _returns_void(fn) else ""
    check = [f"{indent}if ({cond})", f"{indent}    return {ret};".replace(" ;", ";")]
    return "\n".join(lines[:at] + check + lines[at:]) + "\n"


def gen_var_definition(text: str, rng: np.random.Generator) -> str | None:
    """Type 4: widen/sign-fix a local variable's type."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    swaps = {
        "int ": "unsigned int ",
        "short ": "int ",
        "long ": "size_t ",
        "uint8_t ": "uint32_t ",
        "unsigned int ": "size_t ",
    }
    candidates = [
        (i, old, new)
        for i in range(lo, hi + 1)
        for old, new in swaps.items()
        if lines[i].strip().startswith(old) and lines[i].strip().endswith(";")
    ]
    if not candidates:
        return None
    i, old, new = pick(rng, candidates)
    lines[i] = lines[i].replace(old, new, 1)
    return "\n".join(lines) + "\n"


def gen_var_value(text: str, rng: np.random.Generator) -> str | None:
    """Type 5: zero-initialize / change an initial value (info-leak style)."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    inits = [
        i
        for i in range(lo, hi + 1)
        if "=" in lines[i] and lines[i].strip().endswith(";") and "==" not in lines[i]
    ]
    if not inits:
        return None
    i = pick(rng, inits)
    head, _, tail = lines[i].rpartition("=")
    if not head.strip():
        return None
    if rng.random() < 0.5:
        lines[i] = f"{head}= 0;"
    else:
        var = head.strip().split()[-1].lstrip("*")
        indent = indent_of(lines[i])
        lines.insert(i + 1, f"{indent}memset(&{var}, 0, sizeof({var}));")
    return "\n".join(lines) + "\n"


def gen_func_declaration(text: str, rng: np.random.Generator) -> str | None:
    """Type 6: change a function's declared return type."""
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    sig_idx = fn.start_line - 1
    swaps = {"int ": "long ", "void ": "int ", "size_t ": "ssize_t ", "long ": "int "}
    for old, new in swaps.items():
        if lines[sig_idx].startswith(old):
            lines[sig_idx] = new + lines[sig_idx][len(old) :]
            # A changed int->void needs no return fix for realism purposes.
            return "\n".join(lines) + "\n"
    return None


def gen_func_parameters(text: str, rng: np.random.Generator) -> str | None:
    """Type 7: add a length/context parameter to a signature."""
    fns = function_spans(text)
    if not fns:
        return None
    fn = pick(rng, fns)
    lines = text.splitlines()
    sig_idx = fn.start_line - 1
    sig = lines[sig_idx]
    close = sig.rfind(")")
    if close < 0:
        return None
    new_param = pick(rng, ["size_t buflen", "unsigned int limit", "int strict"])
    if sig[close - 1] == "(" or sig[close - 5 : close] == "(void":
        inner = new_param
        sig = sig[: sig.rfind("(") + 1] + inner + ")"
    else:
        sig = sig[:close] + ", " + new_param + sig[close:]
    lines[sig_idx] = sig
    # Reference the new parameter once so the change looks purposeful.
    lo, hi = body_range(fn)
    anchors = statement_line_indices(lines, lo, hi)
    if anchors:
        at = anchors[0]
        indent = indent_of(lines[at])
        name = new_param.split()[-1]
        ret = "-1" if not _returns_void(fn) else ""
        lines.insert(at, f"{indent}if ({name} == 0)")
        lines.insert(at + 1, f"{indent}    return {ret};".replace(" ;", ";"))
    return "\n".join(lines) + "\n"


def gen_func_calls(text: str, rng: np.random.Generator) -> str | None:
    """Type 8: lock/unlock pairs, release calls, safer call variants."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    anchors = statement_line_indices(lines, lo, hi)
    if not anchors:
        return None
    at = pick(rng, anchors)
    indent = indent_of(lines[at])
    var = _scalar_ident(lines, lo, hi, rng, "ctx")
    style = rng.random()
    if style < 0.4:  # lock around a racy operation
        lines.insert(at, f"{indent}mutex_lock(&{var}_lock);")
        lines.insert(at + 2, f"{indent}mutex_unlock(&{var}_lock);")
    elif style < 0.7:  # release to avoid leak
        lines.insert(at + 1, f"{indent}release_{var}({var});")
    else:  # safer variant of an existing call
        stripped = lines[at].strip()
        if "(" in stripped:
            name_end = stripped.index("(")
            callee = stripped[:name_end].split("=")[-1].strip()
            if callee.isidentifier():
                lines[at] = lines[at].replace(callee + "(", "safe_" + callee + "(", 1)
            else:
                lines.insert(at + 1, f"{indent}sanitize_{var}({var});")
        else:
            lines.insert(at + 1, f"{indent}sanitize_{var}({var});")
    return "\n".join(lines) + "\n"


def gen_jump_statements(text: str, rng: np.random.Generator) -> str | None:
    """Type 9: route an early return through a cleanup label."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    returns = [i for i in range(lo, hi + 1) if lines[i].strip().startswith("return ")]
    if not returns or _returns_void(fn):
        return None
    at = returns[0]
    value = lines[at].strip()[len("return ") :].rstrip(";")
    indent = indent_of(lines[at])
    lines[at] = f"{indent}goto out;"
    # Append the label just before the closing brace.
    close = fn.end_line - 1
    label = ["out:", f"    return {value};"]
    return "\n".join(lines[:close] + label + lines[close:]) + "\n"


def gen_move_statements(text: str, rng: np.random.Generator) -> str | None:
    """Type 10: move a statement earlier without modification."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    anchors = statement_line_indices(lines, lo, hi)
    if len(anchors) < 2:
        return None
    src_pos = int(rng.integers(1, len(anchors)))
    dst_pos = int(rng.integers(0, src_pos))
    src, dst = anchors[src_pos], anchors[dst_pos]
    if src - dst < 2:
        return None
    moved = lines.pop(src)
    lines.insert(dst, moved)
    return "\n".join(lines) + "\n"


def gen_redesign(text: str, rng: np.random.Generator) -> str | None:
    """Type 11: rewrite a chunk of a function's logic."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    anchors = statement_line_indices(lines, lo, hi)
    if len(anchors) < 2:
        return None
    start = anchors[0]
    end = anchors[min(len(anchors) - 1, int(rng.integers(1, len(anchors))))]
    if end <= start:
        return None
    gen = CodeGenerator(rng)
    indent = indent_of(lines[start])
    var = _scalar_ident(lines, lo, hi, rng, "state")
    replacement = [
        f"{indent}if ({var} < 0 || {var} > {int(rng.integers(64, 512))}) {{",
        f"{indent}    {var} = 0;",
        f"{indent}    return -1;" if not _returns_void(fn) else f"{indent}    return;",
        f"{indent}}}",
        f"{indent}{var} = validate_{gen.noun()}({var});",
        f"{indent}for (i = 0; i < {var}; i++) {{",
        f"{indent}    update_{gen.noun()}(i, {var});",
        f"{indent}}}",
    ]
    return "\n".join(lines[:start] + replacement + lines[end + 1 :]) + "\n"


def gen_others(text: str, rng: np.random.Generator) -> str | None:
    """Type 12: minor uncategorized tweak (off-by-one, operator fix)."""
    picked = _pick_function_body(text, rng)
    if picked is None:
        return None
    lines, fn, lo, hi = picked
    swaps = [(" < ", " <= "), (" <= ", " < "), (" > ", " >= "), (" && ", " || ")]
    candidates = [
        (i, old, new) for i in range(lo, hi + 1) for old, new in swaps if old in lines[i]
    ]
    if not candidates:
        return None
    i, old, new = pick(rng, candidates)
    lines[i] = lines[i].replace(old, new, 1)
    return "\n".join(lines) + "\n"


SECURITY_GENERATORS: dict[int, Callable[[str, np.random.Generator], str | None]] = {
    1: gen_bound_check,
    2: gen_null_check,
    3: gen_sanity_check,
    4: gen_var_definition,
    5: gen_var_value,
    6: gen_func_declaration,
    7: gen_func_parameters,
    8: gen_func_calls,
    9: gen_jump_statements,
    10: gen_move_statements,
    11: gen_redesign,
    12: gen_others,
}


def apply_security_pattern(
    text: str, pattern_type: int, rng: np.random.Generator
) -> str | None:
    """Apply one Table V pattern to *text*; None if inapplicable."""
    return SECURITY_GENERATORS[pattern_type](text, rng)
