"""Tests for the oversampling locator and engine."""

import pytest

from repro.diffing import diff_texts
from repro.errors import SynthesisError
from repro.synthesis import (
    VARIANTS,
    PatchSynthesizer,
    locate_ifs,
    synthesize_from_texts,
    touched_lines,
)

BEFORE = """int check(int len, int cap)
{
    int r = 0;
    r = len + 1;
    if (len > cap) {
        r = -1;
    }
    return r;
}
"""

# The "patch": tighten the condition (touches the if statement).
AFTER = BEFORE.replace("if (len > cap) {", "if (len > cap || len < 0) {")


class TestTouchedLines:
    def test_after_side(self):
        d = diff_texts(BEFORE, AFTER, "a.c")
        assert 5 in touched_lines(d, "after")

    def test_before_side(self):
        d = diff_texts(BEFORE, AFTER, "a.c")
        assert 5 in touched_lines(d, "before")

    def test_pure_addition_has_no_before_lines(self):
        new = BEFORE.replace("    return r;", "    log(r);\n    return r;")
        d = diff_texts(BEFORE, new, "a.c")
        assert touched_lines(d, "before") == set()
        assert touched_lines(d, "after") != set()


class TestLocator:
    def test_direct_intersection_found(self):
        d = diff_texts(BEFORE, AFTER, "a.c")
        sites = locate_ifs(AFTER, touched_lines(d, "after"))
        assert sites
        assert sites[0].direct
        assert "len > cap" in sites[0].stmt.cond.text

    def test_function_fallback(self):
        # Change a line outside the if; fallback finds the function's ifs.
        new = BEFORE.replace("r = len + 1;", "r = len + 2;")
        d = diff_texts(BEFORE, new, "a.c")
        sites = locate_ifs(new, touched_lines(d, "after"))
        assert sites
        assert not sites[0].direct

    def test_fallback_disabled(self):
        new = BEFORE.replace("r = len + 1;", "r = len + 2;")
        d = diff_texts(BEFORE, new, "a.c")
        assert locate_ifs(new, touched_lines(d, "after"), allow_function_fallback=False) == []

    def test_empty_lines_no_sites(self):
        assert locate_ifs(AFTER, set()) == []


class TestSynthesizeFromTexts:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    def test_after_side_keeps_before(self, variant):
        result = synthesize_from_texts(BEFORE, AFTER, "a.c", variant, side="after")
        assert result is not None
        new_before, new_after = result
        assert new_before == BEFORE
        assert "_SYS_" in new_after

    def test_before_side_keeps_after(self):
        result = synthesize_from_texts(BEFORE, AFTER, "a.c", VARIANTS[0], side="before")
        assert result is not None
        new_before, new_after = result
        assert new_after == AFTER
        assert "_SYS_" in new_before

    def test_synthetic_diff_contains_original_fix(self):
        _, new_after = synthesize_from_texts(BEFORE, AFTER, "a.c", VARIANTS[0], side="after")
        d = diff_texts(BEFORE, new_after, "a.c")
        added = " ".join(l for h in d.hunks for l in h.added)
        assert "len < 0" in added  # the natural fix survives
        assert "_SYS_ZERO" in added  # plus the variant scaffolding

    def test_identical_texts_return_none(self):
        assert synthesize_from_texts(BEFORE, BEFORE, "a.c", VARIANTS[0]) is None

    def test_bad_side_raises(self):
        with pytest.raises(SynthesisError):
            synthesize_from_texts(BEFORE, AFTER, "a.c", VARIANTS[0], side="sideways")

    def test_site_index_out_of_range(self):
        assert synthesize_from_texts(BEFORE, AFTER, "a.c", VARIANTS[0], site_index=99) is None


class TestPatchSynthesizer:
    def test_synthesizes_for_security_patches(self, tiny_world):
        synth = PatchSynthesizer(tiny_world, max_per_patch=4, seed=0)
        produced = synth.synthesize_many(tiny_world.security_shas()[:15])
        assert len(produced) > 0

    def test_max_per_patch_respected(self, tiny_world):
        synth = PatchSynthesizer(tiny_world, max_per_patch=2, seed=0)
        for sha in tiny_world.security_shas()[:10]:
            assert len(synth.synthesize(sha)) <= 2

    def test_provenance_recorded(self, tiny_world):
        synth = PatchSynthesizer(tiny_world, max_per_patch=3, seed=0)
        sha = tiny_world.security_shas()[0]
        for sp in synth.synthesize(sha):
            assert sp.origin_sha == sha
            assert 1 <= sp.variant_id <= 8
            assert sp.side in ("before", "after")

    def test_synthetic_sha_distinct_and_hexlike(self, tiny_world):
        synth = PatchSynthesizer(tiny_world, max_per_patch=4, seed=0)
        shas = []
        for sha in tiny_world.security_shas()[:10]:
            for sp in synth.synthesize(sha):
                assert len(sp.patch.sha) == 40
                assert all(c in "0123456789abcdef" for c in sp.patch.sha)
                assert sp.patch.sha != sha
                shas.append(sp.patch.sha)
        assert len(shas) == len(set(shas))

    def test_synthetic_patch_contains_scaffolding(self, tiny_world):
        synth = PatchSynthesizer(tiny_world, max_per_patch=4, seed=0)
        for sha in tiny_world.security_shas()[:10]:
            for sp in synth.synthesize(sha):
                # AFTER-side variants show scaffolding as added lines;
                # BEFORE-side variants show it as removed lines (§III-C-3).
                changed = " ".join(sp.patch.added_lines() + sp.patch.removed_lines())
                assert "_SYS_" in changed

    def test_deterministic(self, tiny_world):
        sha = tiny_world.security_shas()[0]
        a = PatchSynthesizer(tiny_world, seed=7).synthesize(sha)
        b = PatchSynthesizer(tiny_world, seed=7).synthesize(sha)
        assert [sp.patch.sha for sp in a] == [sp.patch.sha for sp in b]

    def test_bad_max_per_patch(self, tiny_world):
        with pytest.raises(SynthesisError):
            PatchSynthesizer(tiny_world, max_per_patch=0)
