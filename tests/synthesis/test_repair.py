"""Tests for the Fig. 5 inversion path: find scaffold sites, repair them."""

import pytest

from repro.lang.ast_nodes import IfStmt, walk
from repro.lang.parser import parse_translation_unit
from repro.staticcheck.equivalence import cfg_signature, descaffolded_signature
from repro.synthesis import VARIANTS, apply_variant_text, find_repair_sites, repair_all, repair_site

SRC = """\
int clamp(int v, int lo, int hi) {
    int out = v;
    if (v < lo) {
        out = lo;
    }
    if (v > hi) {
        out = hi;
    }
    return out;
}
"""


def _first_if(source: str):
    """The payload if: prefer the one whose condition already carries
    scaffolding (stacking rewrites the same logical condition again)."""
    unit = parse_translation_unit(source, "fix.c")
    lines = source.splitlines()
    candidates = []
    for fn in unit.functions:
        for node in walk(fn):
            if isinstance(node, IfStmt) and (
                node.cond_open_line == node.cond_close_line == node.start_line
            ):
                cond = lines[node.start_line - 1][node.cond_open_col : node.cond_close_col]
                candidates.append((node, cond))
    for node, cond in candidates:
        if "_SYS_" in cond:
            return node
    if candidates:
        return candidates[0][0]
    raise AssertionError("fixture has no single-line if header")


def _scaffold(source: str, variant, suffix: str) -> str:
    node = _first_if(source)
    return apply_variant_text(
        source,
        variant,
        (node.cond_open_line, node.cond_open_col),
        (node.cond_close_line, node.cond_close_col),
        node.start_line,
        suffix,
    )


class TestFindRepairSites:
    def test_clean_source_has_no_sites(self):
        assert find_repair_sites(SRC, "fix.c") == []

    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    def test_each_variant_produces_one_site(self, variant):
        scaffolded = _scaffold(SRC, variant, "aa11")
        sites = find_repair_sites(scaffolded, "fix.c")
        assert len(sites) == 1
        assert sites[0].restored_cond.replace(" ", "") == "v<lo"


class TestRepairInvertsVariants:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    def test_single_variant_round_trips(self, variant):
        scaffolded = _scaffold(SRC, variant, "aa11")
        repaired, n = repair_all(scaffolded, "fix.c")
        assert n == 1
        assert "_SYS_" not in repaired
        assert cfg_signature(repaired, "fix.c") == cfg_signature(SRC, "fix.c")

    @pytest.mark.parametrize("outer", VARIANTS, ids=lambda v: f"outer{v.variant_id}")
    @pytest.mark.parametrize("inner", VARIANTS, ids=lambda v: f"inner{v.variant_id}")
    def test_stacked_variants_round_trip(self, outer, inner):
        # Apply one variant, then another over the rewritten header: the
        # repair loop must peel both layers without touching live names.
        once = _scaffold(SRC, inner, "aa11")
        twice = _scaffold(once, outer, "bb22")
        repaired, n = repair_all(twice, "fix.c")
        assert n >= 1
        assert "_SYS_" not in repaired
        assert cfg_signature(repaired, "fix.c") == cfg_signature(SRC, "fix.c")

    def test_repair_matches_descaffolded_signature(self):
        scaffolded = _scaffold(SRC, VARIANTS[4], "aa11")
        repaired, _ = repair_all(scaffolded, "fix.c")
        assert cfg_signature(repaired, "fix.c") == descaffolded_signature(scaffolded, "fix.c")


class TestRepairApi:
    def test_repair_all_on_clean_source_is_identity(self):
        assert repair_all(SRC, "fix.c") == (SRC, 0)

    def test_repair_site_removes_only_that_site(self):
        scaffolded = _scaffold(SRC, VARIANTS[0], "aa11")
        sites = find_repair_sites(scaffolded, "fix.c")
        rewritten = repair_site(scaffolded, sites[0])
        assert find_repair_sites(rewritten, "fix.c") == []
        assert "_SYS_" not in rewritten

    def test_second_if_survives_repair(self):
        scaffolded = _scaffold(SRC, VARIANTS[2], "aa11")
        repaired, _ = repair_all(scaffolded, "fix.c")
        assert "v > hi" in repaired
