"""Tests for the Fig. 5 variant templates, including semantic equivalence.

The equivalence check executes both the original condition and the variant's
scaffolding + new condition under a small interpreter for the statement
forms the templates emit, over exhaustive variable assignments.
"""

import itertools
import re

import pytest

from repro.errors import SynthesisError
from repro.lang import parse_translation_unit
from repro.synthesis import N_VARIANTS, VARIANTS, Variant, apply_variant_text


def c_eval(expr: str, env: dict) -> bool:
    """Evaluate a side-effect-free C boolean expression in Python."""
    py = expr.replace("&&", " and ").replace("||", " or ")
    py = re.sub(r"!(?!=)", " not ", py)
    return bool(eval(py, {}, dict(env)))  # noqa: S307 - test-local inputs


def run_variant(variant: Variant, cond: str, env: dict) -> bool:
    """Execute a variant's pre-lines + new condition under *env*."""
    pre_lines, new_cond = variant.rewrite(cond, "t", "")
    scope = dict(env)
    for line in pre_lines:
        line = line.strip()
        decl = re.match(r"(?:const )?int (\w+) = (.+);$", line)
        guarded = re.match(r"if \((.+)\) \{ (\w+) = (\d); \}$", line)
        if decl:
            scope[decl.group(1)] = int(c_eval(decl.group(2), scope))
        elif guarded:
            if c_eval(guarded.group(1), scope):
                scope[guarded.group(2)] = int(guarded.group(3))
        else:
            raise AssertionError(f"unrecognized scaffold line: {line!r}")
    return c_eval(new_cond, scope)


CONDITIONS = [
    "x > 0",
    "x == 0",
    "x != y",
    "x > 0 && y < 3",
    "x > 1 || y > 1",
    "x >= y",
]


class TestSemantics:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    @pytest.mark.parametrize("cond", CONDITIONS)
    def test_variant_preserves_truth_table(self, variant, cond):
        for x, y in itertools.product(range(-2, 4), repeat=2):
            env = {"x": x, "y": y}
            assert run_variant(variant, cond, env) == c_eval(cond, env), (
                f"variant {variant.variant_id} changed semantics of {cond!r} at {env}"
            )

    def test_eight_variants(self):
        assert N_VARIANTS == len(VARIANTS) == 8
        assert [v.variant_id for v in VARIANTS] == list(range(1, 9))

    def test_unknown_variant_id_raises(self):
        with pytest.raises(SynthesisError):
            Variant(99, "bogus").rewrite("x", "s", "")


SOURCE = """int check(int x, int y)
{
    int r = 0;
    if (x > 0 && y < 10) {
        r = 1;
    }
    return r;
}
"""


def _if_coords(source: str):
    """(cond_open, cond_close, if_line) of the first if statement."""
    from repro.lang import find_if_statements

    stmt = find_if_statements(parse_translation_unit(source))[0]
    return (
        (stmt.cond_open_line, stmt.cond_open_col),
        (stmt.cond_close_line, stmt.cond_close_col),
        stmt.start_line,
    )


class TestTextRewrite:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    def test_rewritten_file_parses(self, variant):
        opn, cls, ln = _if_coords(SOURCE)
        out = apply_variant_text(SOURCE, variant, opn, cls, ln, "99")
        unit = parse_translation_unit(out)
        assert len(unit.functions) == 1
        assert "_SYS_" in out

    def test_scaffold_above_if(self):
        opn, cls, ln = _if_coords(SOURCE)
        out = apply_variant_text(SOURCE, VARIANTS[0], opn, cls, ln, "01")
        lines = out.splitlines()
        scaffold = next(i for i, l in enumerate(lines) if "_SYS_ZERO_01" in l)
        if_line = next(i for i, l in enumerate(lines) if "if (" in l and "_SYS_ZERO_01 ||" in l)
        assert scaffold < if_line

    def test_indentation_matched(self):
        opn, cls, ln = _if_coords(SOURCE)
        out = apply_variant_text(SOURCE, VARIANTS[0], opn, cls, ln, "02")
        scaffold = next(l for l in out.splitlines() if "_SYS_ZERO_02" in l and "const" in l)
        assert scaffold.startswith("    const")

    def test_misaligned_span_raises(self):
        opn, cls, ln = _if_coords(SOURCE)
        with pytest.raises(SynthesisError):
            apply_variant_text(SOURCE, VARIANTS[0], (opn[0], opn[1] + 1), cls, ln, "03")

    def test_out_of_range_raises(self):
        with pytest.raises(SynthesisError):
            apply_variant_text(SOURCE, VARIANTS[0], (99, 1), (99, 5), 99, "04")

    def test_multiline_condition_collapsed(self):
        src = "int f(int a, int b)\n{\n    if (a > 0 &&\n        b < 5)\n        return 1;\n    return 0;\n}\n"
        opn, cls, ln = _if_coords(src)
        assert opn[0] != cls[0]  # really multi-line
        out = apply_variant_text(src, VARIANTS[1], opn, cls, ln, "05")
        unit = parse_translation_unit(out)
        assert len(unit.functions) == 1
        assert "_SYS_ONE_05 &&" in out

    def test_suffix_uniquifies(self):
        opn, cls, ln = _if_coords(SOURCE)
        out = apply_variant_text(SOURCE, VARIANTS[2], opn, cls, ln, "aa")
        assert "_SYS_STMT_aa" in out


class TestParenthesization:
    def test_compound_condition_wrapped(self):
        pre, new_cond = VARIANTS[0].rewrite("a || b", "s", "")
        assert "(a || b)" in new_cond

    def test_simple_condition_not_doubly_wrapped(self):
        _, new_cond = VARIANTS[0].rewrite("x", "s", "")
        assert "((" not in new_cond

    def test_already_parenthesized_not_rewrapped(self):
        _, new_cond = VARIANTS[1].rewrite("(a || b)", "s", "")
        assert "((a || b))" not in new_cond


class TestSideEffectGate:
    """apply_variant_text refuses conditions whose evaluation has effects."""

    def _rewrite(self, source):
        opn, cls, ln = _if_coords(source)
        return apply_variant_text(source, VARIANTS[0], opn, cls, ln, "sfx")

    def test_increment_condition_rejected(self):
        src = "int f(int x) {\n    if (x++) {\n        return 1;\n    }\n    return 0;\n}\n"
        with pytest.raises(SynthesisError, match="side effects"):
            self._rewrite(src)

    def test_assignment_condition_rejected(self):
        src = "int f(int x, int y) {\n    if (x = y) {\n        return 1;\n    }\n    return 0;\n}\n"
        with pytest.raises(SynthesisError, match="side effects"):
            self._rewrite(src)

    def test_call_condition_rejected(self):
        src = "int f(char *p) {\n    if (check(p)) {\n        return 1;\n    }\n    return 0;\n}\n"
        with pytest.raises(SynthesisError, match="side effects"):
            self._rewrite(src)

    def test_pure_condition_still_rewrites(self):
        src = "int f(int x, int y) {\n    if (x == y) {\n        return 1;\n    }\n    return 0;\n}\n"
        out = self._rewrite(src)
        assert "_SYS_ZERO_sfx" in out

    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    def test_every_variant_enforces_the_gate(self, variant):
        src = "int f(int x) {\n    if (--x) {\n        return 1;\n    }\n    return 0;\n}\n"
        opn, cls, ln = _if_coords(src)
        with pytest.raises(SynthesisError, match="side effects"):
            apply_variant_text(src, variant, opn, cls, ln, "sfx")
