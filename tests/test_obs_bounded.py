"""Bounded-registry semantics: histogram windows, span caps, merge laws.

The serve layer runs :class:`~repro.obs.ObsRegistry` for weeks, so PR 9
added ``hist_window`` (ring of recent raw observations with the exact
running ``count``/``total`` preserved) and ``span_cap`` (drop tree nodes
past the cap, keep flat timing, count the overflow).  These tests pin the
contract: bounded memory, exact aggregates, and byte-identical batch-mode
behavior when no bounds are set.
"""

import json

import pytest

from repro.obs import ObsRegistry


class TestHistWindow:
    def test_window_bounds_raw_values(self):
        reg = ObsRegistry(hist_window=16)
        for i in range(1000):
            reg.observe("lat", float(i))
        assert len(reg.histograms["lat"]) == 16
        assert reg.histograms["lat"] == [float(i) for i in range(984, 1000)]

    def test_exact_count_and_total_survive_eviction(self):
        reg = ObsRegistry(hist_window=8)
        values = [float(i) for i in range(100)]
        for v in values:
            reg.observe("lat", v)
        assert reg.hist_count("lat") == 100
        assert reg.hist_total("lat") == pytest.approx(sum(values))
        stats = reg.hist_stats()["lat"]
        assert stats["count"] == 100
        assert stats["total"] == pytest.approx(sum(values))
        # Quantiles describe the retained window (recent values).
        assert stats["p50"] >= 92.0

    def test_timers_window_too(self):
        reg = ObsRegistry(hist_window=4)
        for _ in range(20):
            with reg.timer("phase"):
                pass
        assert len(reg.histograms["phase"]) == 4
        assert reg.hist_count("phase") == 20
        assert reg.timer_calls["phase"] == 20

    def test_unbounded_registry_unchanged(self):
        reg = ObsRegistry()
        for i in range(50):
            reg.observe("lat", float(i))
        assert len(reg.histograms["lat"]) == 50
        assert reg.hist_count("lat") == 50
        # Batch payload shape is byte-identical: no spans_dropped key.
        assert "spans_dropped" not in reg.to_dict()

    def test_bounded_payload_reports_drops(self):
        reg = ObsRegistry(hist_window=4)
        reg.observe("lat", 1.0)
        assert "spans_dropped" in reg.to_dict()


class TestSpanCap:
    def test_spans_capped_with_timing_kept(self):
        reg = ObsRegistry(span_cap=5)
        for i in range(20):
            with reg.span("work", i=i):
                pass
        assert len(reg.spans) == 5
        assert reg.spans_dropped == 15
        # Flat timing still counts every call.
        assert reg.timer_calls["work"] == 20
        assert reg.to_dict()["spans_dropped"] == 15

    def test_capped_span_yields_none(self):
        reg = ObsRegistry(span_cap=1)
        with reg.span("a") as first:
            pass
        with reg.span("b") as second:
            pass
        assert first is not None
        assert second is None

    def test_trace_export_unchanged_without_cap(self, tmp_path):
        reg = ObsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        target = tmp_path / "trace.jsonl"
        reg.export_trace(target, manifest={"command": "test"})
        kinds = [json.loads(l)["type"] for l in target.read_text().splitlines()]
        assert kinds.count("span") == 2


class TestBoundedMerge:
    def test_merge_preserves_exact_counts_across_windows(self):
        a = ObsRegistry(hist_window=4)
        b = ObsRegistry(hist_window=4)
        for i in range(50):
            a.observe("lat", float(i))
        for i in range(30):
            b.observe("lat", float(100 + i))
        a.merge(b.snapshot())
        assert a.hist_count("lat") == 80
        assert a.hist_total("lat") == pytest.approx(
            sum(range(50)) + sum(range(100, 130))
        )
        assert len(a.histograms["lat"]) <= 4

    def test_merge_counter_sums_exact(self):
        a = ObsRegistry(hist_window=8)
        b = ObsRegistry(hist_window=8)
        a.add("hits", 3)
        b.add("hits", 4)
        a.merge(b.snapshot())
        assert a.count("hits") == 7

    def test_merge_respects_span_cap(self):
        a = ObsRegistry(span_cap=3)
        b = ObsRegistry()
        for _ in range(10):
            with b.span("s"):
                pass
        a.merge(b.snapshot())
        assert len(a.spans) <= 3
        assert a.spans_dropped >= 7

    def test_unbounded_merge_bit_identical_to_before(self):
        """Merging two unbounded registries must match the historical
        (pre-window) semantics: full raw values concatenated."""
        a = ObsRegistry()
        b = ObsRegistry()
        for i in range(10):
            a.observe("lat", float(i))
            b.observe("lat", float(i + 10))
        a.merge(b.snapshot())
        assert a.histograms["lat"] == [float(i) for i in range(10)] + [
            float(i + 10) for i in range(10)
        ]
        assert a.hist_count("lat") == 20
