"""Tests for the token vocabulary and the BPTT RNN classifier."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import RNNClassifier, Vocabulary, accuracy, encode_batch, patch_token_sequence
from repro.patch import parse_patch


class TestVocabulary:
    def test_pad_unk_reserved(self):
        vocab = Vocabulary(min_count=1).fit([["a", "b"], ["a"]])
        assert vocab.encode(["a"], 3)[0] >= 2  # 0=PAD, 1=UNK

    def test_min_count_filters(self):
        vocab = Vocabulary(min_count=2).fit([["rare", "common"], ["common"]])
        ids = vocab.encode(["rare", "common"], 2)
        assert ids[0] == 1  # UNK
        assert ids[1] >= 2

    def test_max_size_cap(self):
        seqs = [[f"tok{i}"] * 2 for i in range(100)]
        vocab = Vocabulary(max_size=10, min_count=1).fit(seqs)
        assert len(vocab) == 10

    def test_encode_pads_and_truncates(self):
        vocab = Vocabulary(min_count=1).fit([["a", "b", "c"]])
        padded = vocab.encode(["a"], 4)
        assert padded.tolist()[1:] == [0, 0, 0]
        truncated = vocab.encode(["a", "b", "c"], 2)
        assert len(truncated) == 2

    def test_unfitted_raises(self):
        with pytest.raises(ModelError):
            Vocabulary().encode(["a"], 2)

    def test_encode_batch_mask(self):
        vocab = Vocabulary(min_count=1).fit([["a", "b"]])
        ids, mask = encode_batch(vocab, [["a"], ["a", "b"]], 3)
        assert ids.shape == mask.shape == (2, 3)
        assert mask[0].tolist() == [1.0, 0.0, 0.0]

    def test_empty_sequence_gets_one_mask_slot(self):
        vocab = Vocabulary(min_count=1).fit([["a"]])
        _, mask = encode_batch(vocab, [[]], 3)
        assert mask[0, 0] == 1.0  # pooling never divides by zero


class TestPatchTokenSequence:
    def test_markers_present(self, listing_1):
        seq = patch_token_sequence(parse_patch(listing_1))
        assert "<hunk>" in seq
        assert "<add>" in seq
        assert "<del>" in seq

    def test_literals_abstracted(self, listing_1):
        seq = patch_token_sequence(parse_patch(listing_1))
        assert "<num>" in seq
        assert "0x40" not in seq

    def test_context_excluded_by_default(self, listing_1):
        seq = patch_token_sequence(parse_patch(listing_1))
        assert "<ctx>" not in seq

    def test_context_included_on_request(self, listing_1):
        seq = patch_token_sequence(parse_patch(listing_1), include_context=True)
        assert "<ctx>" in seq


def _toy_dataset(n=300, seed=0):
    """Security-ish = contains an if-guard pattern; other = assignment."""
    rng = np.random.default_rng(seed)
    seqs, labels = [], []
    for i in range(n):
        noise = [f"tok{int(rng.integers(0, 8))}" for _ in range(int(rng.integers(2, 6)))]
        if i % 2 == 0:
            seqs.append(["<add>", "if", "(", "len", ">", "<num>", ")", "return", ";"] + noise)
            labels.append(1)
        else:
            seqs.append(["<add>", "x", "=", "y", "+", "<num>", ";"] + noise)
            labels.append(0)
    return seqs, np.array(labels)


class TestRNN:
    def test_learns_toy_problem(self):
        seqs, y = _toy_dataset()
        rnn = RNNClassifier(epochs=5, max_len=32, seed=0)
        rnn.fit(seqs[:200], y[:200])
        acc = accuracy(y[200:], rnn.predict(seqs[200:]))
        assert acc >= 0.9

    def test_loss_decreases(self):
        seqs, y = _toy_dataset()
        rnn = RNNClassifier(epochs=4, max_len=32, seed=0)
        rnn.fit(seqs, y)
        assert rnn.loss_history[-1] < rnn.loss_history[0]

    def test_proba_shape(self):
        seqs, y = _toy_dataset(n=60)
        rnn = RNNClassifier(epochs=2, max_len=16, seed=0)
        rnn.fit(seqs, y)
        proba = rnn.predict_proba(seqs[:10])
        assert proba.shape == (10, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RNNClassifier().predict([["a"]])

    def test_empty_input_after_fit(self):
        seqs, y = _toy_dataset(n=40)
        rnn = RNNClassifier(epochs=1, max_len=16, seed=0).fit(seqs, y)
        assert rnn.predict_proba([]).shape == (0, 2)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ModelError):
            RNNClassifier().fit([["a"]], np.array([1, 0]))

    def test_deterministic_with_seed(self):
        seqs, y = _toy_dataset(n=80)
        p1 = RNNClassifier(epochs=2, max_len=16, seed=3).fit(seqs, y).predict_proba(seqs[:5])
        p2 = RNNClassifier(epochs=2, max_len=16, seed=3).fit(seqs, y).predict_proba(seqs[:5])
        assert np.allclose(p1, p2)

    def test_bad_hyperparameters(self):
        with pytest.raises(ModelError):
            RNNClassifier(epochs=0)

    def test_fit_predict_patches(self, listing_1, listing_2):
        patches = [parse_patch(listing_1), parse_patch(listing_2)] * 20
        y = np.array([1, 0] * 20)
        rnn = RNNClassifier(epochs=4, max_len=64, seed=0)
        rnn.fit_patches(patches, y)
        assert accuracy(y, rnn.predict_patches(patches)) == 1.0
