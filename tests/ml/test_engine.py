"""Tests for the parallel training engine: fit_many and RF n_jobs.

The contract under test is *bit-identity*: every parallel path must produce
exactly the estimator the serial path produces, because all randomness is
pre-drawn (per-tree seeds) or self-contained (each estimator owns its RNG).
"""

import numpy as np
import pytest

from repro.ml import (
    LogisticRegression,
    RandomForestClassifier,
    RNNClassifier,
    fit_many,
)
from repro.obs import ObsRegistry


@pytest.fixture(scope="module")
def xy():
    rng = np.random.default_rng(7)
    X = rng.standard_normal((120, 8))
    w = rng.standard_normal(8)
    y = (X @ w + 0.3 * rng.standard_normal(120) > 0).astype(np.int64)
    return X, y


class TestForestNJobs:
    def test_parallel_matches_serial(self, xy):
        X, y = xy
        serial = RandomForestClassifier(n_estimators=12, max_depth=6, seed=3).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=12, max_depth=6, seed=3, n_jobs=2
        ).fit(X, y)
        assert np.array_equal(serial.predict_proba(X), parallel.predict_proba(X))
        assert np.array_equal(serial.feature_importances(), parallel.feature_importances())

    def test_n_jobs_one_stays_serial(self, xy):
        X, y = xy
        obs = ObsRegistry()
        RandomForestClassifier(n_estimators=4, seed=0, n_jobs=1, obs=obs).fit(X, y)
        assert obs.count("rf_trees_parallel") == 0
        assert obs.count("rf_trees_serial") == 4

    def test_parallel_counters(self, xy):
        X, y = xy
        obs = ObsRegistry()
        RandomForestClassifier(n_estimators=6, seed=0, n_jobs=2, obs=obs).fit(X, y)
        assert obs.count("rf_trees_parallel") == 6
        assert obs.seconds("fit_parallel") >= 0.0


class TestFitMany:
    def test_serial_returns_same_objects(self, xy):
        X, y = xy
        clfs = [LogisticRegression(n_iter=50 + 10 * i) for i in range(3)]
        fitted = fit_many([(c, X, y) for c in clfs])
        assert all(a is b for a, b in zip(fitted, clfs))

    def test_parallel_matches_serial_mixed_types(self, xy):
        X, y = xy

        def make():
            return [
                RandomForestClassifier(n_estimators=8, max_depth=5, seed=1),
                LogisticRegression(n_iter=80),
                RandomForestClassifier(n_estimators=8, max_depth=5, seed=9),
            ]

        serial = fit_many([(c, X, y) for c in make()], workers=None)
        parallel = fit_many([(c, X, y) for c in make()], workers=2)
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.predict_proba(X), p.predict_proba(X))

    def test_parallel_matches_serial_rnn(self):
        seqs = [["if", "(", "VAR", ")"], ["return", "NUM", ";"]] * 10
        y = np.array([1, 0] * 10)
        serial = fit_many([(RNNClassifier(epochs=2, seed=5), seqs, y)], workers=None)[0]
        parallel = fit_many([(RNNClassifier(epochs=2, seed=5), seqs, y)], workers=2)[0]
        assert np.array_equal(serial.predict_proba(seqs), parallel.predict_proba(seqs))
        assert serial.loss_history == parallel.loss_history

    def test_empty_input(self):
        assert fit_many([]) == []
        assert fit_many([], workers=4) == []

    def test_obs_counters(self, xy):
        X, y = xy
        obs = ObsRegistry()
        fit_many([(LogisticRegression(n_iter=50), X, y)], workers=None, obs=obs)
        assert obs.count("fits_serial") == 1
        fit_many(
            [(LogisticRegression(n_iter=50 + 10 * i), X, y) for i in range(2)], workers=2, obs=obs
        )
        assert obs.count("fits_parallel") == 2
