"""Tests for evaluation metrics and confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.ml import (
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    proportion_confidence_interval,
    recall,
)

Y_TRUE = np.array([1, 1, 1, 1, 0, 0, 0, 0])
Y_PRED = np.array([1, 1, 0, 0, 1, 0, 0, 0])


class TestConfusion:
    def test_matrix_values(self):
        cm = confusion_matrix(Y_TRUE, Y_PRED)
        assert cm.tolist() == [[3, 1], [2, 2]]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ModelError):
            confusion_matrix(np.array([1, 0]), np.array([1]))


class TestScalarMetrics:
    def test_accuracy(self):
        assert accuracy(Y_TRUE, Y_PRED) == pytest.approx(5 / 8)

    def test_precision(self):
        assert precision(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)

    def test_recall(self):
        assert recall(Y_TRUE, Y_PRED) == pytest.approx(2 / 4)

    def test_f1(self):
        p, r = 2 / 3, 0.5
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 * p * r / (p + r))

    def test_no_positive_predictions(self):
        assert precision(np.array([1, 0]), np.array([0, 0])) == 0.0

    def test_no_positives_in_truth(self):
        assert recall(np.array([0, 0]), np.array([1, 0])) == 0.0

    def test_perfect(self):
        y = np.array([1, 0, 1])
        assert precision(y, y) == recall(y, y) == f1_score(y, y) == 1.0


class TestReport:
    def test_report_fields(self):
        rep = classification_report(Y_TRUE, Y_PRED)
        assert rep.support_positive == 4
        assert rep.support_negative == 4
        assert rep.precision == pytest.approx(2 / 3)
        assert "precision" in rep.row()


class TestConfidenceInterval:
    def test_known_value(self):
        # p=0.29, n=1000, 95% -> half-width ~ 1.96 * sqrt(.29*.71/1000) ~ 0.028
        p, half = proportion_confidence_interval(290, 1000)
        assert p == pytest.approx(0.29)
        assert half == pytest.approx(0.0281, abs=0.001)

    def test_paper_table3_brute_force(self):
        # 8% of 1000 sampled: ±1.7% at 95%, as Table III reports.
        _, half = proportion_confidence_interval(80, 1000)
        assert half == pytest.approx(0.017, abs=0.001)

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            proportion_confidence_interval(5, 0)
        with pytest.raises(ModelError):
            proportion_confidence_interval(11, 10)
        with pytest.raises(ModelError):
            proportion_confidence_interval(1, 10, confidence=1.5)

    @given(n=st.integers(1, 2000), frac=st.floats(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_half_width_shrinks_with_n(self, n, frac):
        k = int(n * frac)
        _, half_small = proportion_confidence_interval(k, n)
        _, half_big = proportion_confidence_interval(k * 4, n * 4)
        assert half_big <= half_small + 1e-9
