"""Tests for data splitting and SMOTE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.ml import bootstrap_indices, smote_oversample, stratified_kfold, train_test_split


class TestTrainTestSplit:
    def test_disjoint_and_complete(self):
        tr, te = train_test_split(100, 0.2, seed=0)
        assert len(set(tr) & set(te)) == 0
        assert sorted(list(tr) + list(te)) == list(range(100))

    def test_fraction_respected(self):
        tr, te = train_test_split(1000, 0.25, seed=1)
        assert len(te) == 250

    def test_stratified_preserves_ratio(self):
        y = np.array([1] * 100 + [0] * 300)
        tr, te = train_test_split(400, 0.2, y=y, stratify=True, seed=2)
        assert abs(np.mean(y[te]) - 0.25) < 0.05
        assert abs(np.mean(y[tr]) - 0.25) < 0.05

    def test_deterministic_with_seed(self):
        a = train_test_split(50, 0.3, seed=9)
        b = train_test_split(50, 0.3, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_bad_fraction(self):
        with pytest.raises(ModelError):
            train_test_split(10, 0.0)
        with pytest.raises(ModelError):
            train_test_split(10, 1.0)

    def test_stratify_needs_y(self):
        with pytest.raises(ModelError):
            train_test_split(10, 0.5, stratify=True)


class TestKFold:
    def test_folds_partition(self):
        y = np.array([0, 1] * 25)
        seen = []
        for tr, te in stratified_kfold(y, k=5, seed=0):
            assert len(set(tr) & set(te)) == 0
            seen.extend(te.tolist())
        assert sorted(seen) == list(range(50))

    def test_fold_class_balance(self):
        y = np.array([1] * 20 + [0] * 80)
        for _, te in stratified_kfold(y, k=4, seed=1):
            ratio = np.mean(y[te])
            assert 0.1 <= ratio <= 0.3

    def test_bad_k(self):
        with pytest.raises(ModelError):
            list(stratified_kfold(np.array([0, 1]), k=1))


class TestBootstrap:
    def test_size_and_range(self):
        idx = bootstrap_indices(50, rng=np.random.default_rng(0))
        assert idx.shape == (50,)
        assert idx.min() >= 0 and idx.max() < 50

    def test_with_replacement(self):
        idx = bootstrap_indices(100, size=1000, rng=np.random.default_rng(1))
        assert len(np.unique(idx)) < 1000


class TestSmote:
    @pytest.fixture()
    def imbalanced(self):
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(0, 1, (20, 4)), rng.normal(5, 1, (100, 4))])
        y = np.array([1] * 20 + [0] * 100)
        return X, y

    def test_counts(self, imbalanced):
        X, y = imbalanced
        Xa, ya = smote_oversample(X, y, 50, seed=0)
        assert Xa.shape == (170, 4)
        assert int(ya.sum()) == 70

    def test_synthetic_in_minority_region(self, imbalanced):
        X, y = imbalanced
        Xa, ya = smote_oversample(X, y, 200, seed=0)
        synth = Xa[len(X):]
        # Minority cluster is at 0; synthetic samples interpolate within it.
        assert np.all(np.abs(synth.mean(axis=0)) < 2.0)

    def test_interpolation_between_neighbors(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0], [10.0, 10.0], [11.0, 11.0]])
        y = np.array([1, 1, 0, 0])
        Xa, _ = smote_oversample(X, y, 20, k=1, seed=0)
        synth = Xa[4:]
        # All synthetic points lie on the segment between the two minority points.
        assert np.all(synth >= -1e-9) and np.all(synth <= 1 + 1e-9)
        assert np.allclose(synth[:, 0], synth[:, 1])

    def test_zero_new(self, imbalanced):
        X, y = imbalanced
        Xa, ya = smote_oversample(X, y, 0)
        assert Xa.shape == X.shape

    def test_too_few_minority_raises(self):
        X = np.ones((3, 2))
        y = np.array([1, 0, 0])
        with pytest.raises(ModelError):
            smote_oversample(X, y, 5)

    @given(n_new=st.integers(1, 60))
    @settings(max_examples=20, deadline=None)
    def test_label_invariant(self, n_new):
        rng = np.random.default_rng(n_new)
        X = rng.normal(size=(30, 3))
        y = np.array([1] * 10 + [0] * 20)
        _, ya = smote_oversample(X, y, n_new, seed=1)
        assert int(ya.sum()) == 10 + n_new
