"""Tests shared across all feature-vector classifiers."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import (
    DecisionTreeClassifier,
    DiscretizedNaiveBayes,
    GaussianNaiveBayes,
    KNeighborsClassifier,
    LinearSVM,
    LogisticRegression,
    REPTreeClassifier,
    RandomForestClassifier,
    SGDClassifier,
    SMOClassifier,
    TreeAugmentedNaiveBayes,
    VotedPerceptron,
    accuracy,
    weka_ensemble,
)

ALL_CLASSIFIERS = [
    lambda: DecisionTreeClassifier(max_depth=8, seed=0),
    lambda: RandomForestClassifier(n_estimators=15, max_depth=8, seed=0),
    lambda: REPTreeClassifier(seed=0),
    lambda: LogisticRegression(),
    lambda: SGDClassifier(seed=0),
    lambda: LinearSVM(seed=0),
    lambda: SMOClassifier(seed=0, max_iter=10),
    lambda: GaussianNaiveBayes(),
    lambda: DiscretizedNaiveBayes(),
    lambda: TreeAugmentedNaiveBayes(),
    lambda: VotedPerceptron(seed=0),
    lambda: KNeighborsClassifier(k=5),
]

IDS = [
    "tree", "forest", "reptree", "logistic", "sgd", "svm", "smo",
    "gnb", "dnb", "tan", "perceptron", "knn",
]


@pytest.fixture(scope="module")
def separable():
    rng = np.random.default_rng(7)
    n, d = 400, 12
    X = rng.standard_normal((n, d))
    w = rng.standard_normal(d)
    y = (X @ w > 0).astype(np.int64)
    return X, y


@pytest.fixture(scope="module")
def noisy():
    rng = np.random.default_rng(8)
    n, d = 500, 10
    X = rng.standard_normal((n, d))
    w = rng.standard_normal(d)
    y = ((X @ w + rng.standard_normal(n)) > 0).astype(np.int64)
    return X, y


@pytest.mark.parametrize("make", ALL_CLASSIFIERS, ids=IDS)
class TestProtocol:
    def test_learns_separable_data(self, make, separable):
        X, y = separable
        clf = make().fit(X[:300], y[:300])
        acc = accuracy(y[300:], clf.predict(X[300:]))
        assert acc >= 0.65, f"{type(clf).__name__} only reached {acc:.2f}"

    def test_proba_shape_and_range(self, make, separable):
        X, y = separable
        clf = make().fit(X[:100], y[:100])
        proba = clf.predict_proba(X[100:150])
        assert proba.shape == (50, 2)
        assert np.all(proba >= -1e-9) and np.all(proba <= 1 + 1e-9)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_predict_matches_proba_threshold(self, make, separable):
        X, y = separable
        clf = make().fit(X[:100], y[:100])
        pred = clf.predict(X[100:150])
        proba = clf.predict_proba(X[100:150])
        assert np.array_equal(pred, (proba[:, 1] >= 0.5).astype(np.int64))

    def test_unfitted_raises(self, make, separable):
        X, _ = separable
        with pytest.raises(NotFittedError):
            make().predict(X[:5])

    def test_wrong_feature_count_raises(self, make, separable):
        X, y = separable
        clf = make().fit(X[:100], y[:100])
        with pytest.raises(ModelError):
            clf.predict(np.ones((3, X.shape[1] + 2)))

    def test_nonbinary_labels_raise(self, make, separable):
        X, _ = separable
        with pytest.raises(ModelError):
            make().fit(X[:10], np.arange(10))

    def test_single_class_training(self, make, separable):
        X, _ = separable
        clf = make().fit(X[:30], np.zeros(30, dtype=np.int64))
        pred = clf.predict(X[30:40])
        assert np.all(pred == 0)

    def test_robust_to_noise(self, make, noisy):
        X, y = noisy
        clf = make().fit(X[:400], y[:400])
        acc = accuracy(y[400:], clf.predict(X[400:]))
        assert acc >= 0.55


class TestTreeSpecifics:
    def test_perfect_fit_on_training(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(seed=0).fit(X[:150], y[:150])
        assert accuracy(y[:150], tree.predict(X[:150])) == 1.0

    def test_max_depth_limits_tree(self, separable):
        X, y = separable
        shallow = DecisionTreeClassifier(max_depth=2, seed=0).fit(X, y)
        assert shallow.root.depth() <= 2

    def test_min_samples_leaf(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(min_samples_leaf=25, seed=0).fit(X, y)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.n_samples >= 25
            else:
                stack.extend([node.left, node.right])

    def test_bad_hyperparameters(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier(criterion="bogus")
        with pytest.raises(ModelError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_entropy_criterion_works(self, separable):
        X, y = separable
        clf = DecisionTreeClassifier(criterion="entropy", max_depth=6, seed=0).fit(X[:200], y[:200])
        assert accuracy(y[200:], clf.predict(X[200:])) >= 0.6

    def test_constant_features_yield_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert tree.root.is_leaf
        assert tree.root.prob_positive == pytest.approx(0.5)


class TestForestSpecifics:
    def test_more_trees_more_stable(self, noisy):
        X, y = noisy
        small = RandomForestClassifier(n_estimators=3, seed=0).fit(X[:400], y[:400])
        big = RandomForestClassifier(n_estimators=40, seed=0).fit(X[:400], y[:400])
        acc_small = accuracy(y[400:], small.predict(X[400:]))
        acc_big = accuracy(y[400:], big.predict(X[400:]))
        assert acc_big >= acc_small - 0.05

    def test_feature_importances_sum_to_one(self, separable):
        X, y = separable
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        imp = forest.feature_importances()
        assert imp.shape == (X.shape[1],)
        assert imp.sum() == pytest.approx(1.0)

    def test_bad_n_estimators(self):
        with pytest.raises(ModelError):
            RandomForestClassifier(n_estimators=0)


class TestREPTree:
    def test_pruning_reduces_leaves(self, noisy):
        X, y = noisy
        unpruned = DecisionTreeClassifier(seed=0).fit(X, y)
        pruned = REPTreeClassifier(prune_fraction=0.3, seed=0).fit(X, y)
        assert pruned.n_leaves <= unpruned.root.count_leaves()

    def test_bad_prune_fraction(self):
        with pytest.raises(ModelError):
            REPTreeClassifier(prune_fraction=1.5)


class TestEnsemble:
    def test_weka_ensemble_has_ten(self):
        assert len(weka_ensemble()) == 10

    def test_ensemble_types_distinct(self):
        names = [type(c).__name__ for c in weka_ensemble()]
        assert len(set(names)) == 10
