"""Tests for the persisted fitted-model cache and its training-set keying."""

import numpy as np
import pytest

from repro.ml import FittedModelCache, RandomForestClassifier, training_key
from repro.obs import ObsRegistry

SHAS = [f"{i:040x}" for i in range(8)]
LABELS = [i % 2 for i in range(8)]
CONFIG = {"estimator": "RandomForestClassifier", "n_estimators": 5, "max_depth": 4}


def _fit_model(seed=7):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(40, 6))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    model = RandomForestClassifier(n_estimators=5, max_depth=4, seed=seed)
    model.fit(X, y)
    return model, X


class TestTrainingKey:
    def test_deterministic(self):
        assert training_key(SHAS, LABELS, CONFIG) == training_key(SHAS, LABELS, CONFIG)

    def test_order_insensitive(self):
        pairs = list(zip(SHAS, LABELS))[::-1]
        shas, labels = zip(*pairs)
        assert training_key(shas, labels, CONFIG) == training_key(SHAS, LABELS, CONFIG)

    def test_label_change_changes_key(self):
        flipped = [1 - l for l in LABELS]
        assert training_key(SHAS, flipped, CONFIG) != training_key(SHAS, LABELS, CONFIG)

    def test_sha_change_changes_key(self):
        other = ["f" * 40] + SHAS[1:]
        assert training_key(other, LABELS, CONFIG) != training_key(SHAS, LABELS, CONFIG)

    def test_config_change_changes_key(self):
        deeper = dict(CONFIG, max_depth=9)
        assert training_key(SHAS, LABELS, deeper) != training_key(SHAS, LABELS, CONFIG)


class TestCacheLookup:
    def test_get_or_fit_fits_once(self):
        obs = ObsRegistry()
        cache = FittedModelCache(obs=obs)
        key = training_key(SHAS, LABELS, CONFIG)
        calls = []

        def fit():
            calls.append(1)
            return _fit_model()[0]

        first = cache.get_or_fit(key, fit)
        second = cache.get_or_fit(key, fit)
        assert first is second
        assert len(calls) == 1
        assert obs.counters["model_cache_misses"] == 1
        assert obs.counters["model_cache_hits"] == 1

    def test_get_counts_hits_and_misses(self):
        obs = ObsRegistry()
        cache = FittedModelCache(obs=obs)
        assert cache.get("absent") is None
        cache.put("present", object())
        assert cache.get("present") is not None
        assert obs.counters["model_cache_misses"] == 1
        assert obs.counters["model_cache_hits"] == 1
        assert "present" in cache
        assert len(cache) == 1


class TestPersistence:
    def test_round_trip_preserves_predictions(self, tmp_path):
        path = tmp_path / "models.pkl"
        model, X = _fit_model()
        key = training_key(SHAS, LABELS, CONFIG)
        cache = FittedModelCache(persist_path=path)
        cache.put(key, model)
        cache.save()

        reloaded = FittedModelCache(persist_path=path)
        assert len(reloaded) == 1
        back = reloaded.get(key)
        np.testing.assert_array_equal(back.decision_scores(X), model.decision_scores(X))

    def test_warm_restart_never_fits(self, tmp_path):
        path = tmp_path / "models.pkl"
        key = training_key(SHAS, LABELS, CONFIG)
        cold = FittedModelCache(persist_path=path)
        cold.get_or_fit(key, lambda: _fit_model()[0])
        cold.save()

        def boom():
            raise AssertionError("warm cache must not fit")

        warm = FittedModelCache(persist_path=path)
        assert warm.get_or_fit(key, boom) is not None

    def test_corrupt_pickle_degrades_to_cold(self, tmp_path):
        path = tmp_path / "models.pkl"
        path.write_bytes(b"\x80\x04 this is not a pickle")
        cache = FittedModelCache(persist_path=path)
        assert len(cache) == 0  # no exception, just cold

    def test_format_mismatch_degrades_to_cold(self, tmp_path):
        import pickle

        path = tmp_path / "models.pkl"
        path.write_bytes(pickle.dumps({"format": "other-v9", "models": {"k": 1}}))
        assert len(FittedModelCache(persist_path=path)) == 0

    def test_save_without_path_rejected(self):
        with pytest.raises(ValueError):
            FittedModelCache().save()
