"""Tests for git .patch / git show format parsing and rendering."""

import pytest

from repro.errors import PatchFormatError
from repro.patch import parse_patch, render_mbox_patch, render_patch


class TestLogStyle:
    def test_listing_1_parses(self, listing_1):
        p = parse_patch(listing_1)
        assert p.sha == "b84c2cab55948a5ee70860779b2640913e3ee1ed"
        assert p.author == "Dev One <d1@example.org>"
        assert "stack underflow" in p.message
        assert p.touched_paths() == ("src/bits.c",)
        hunk = p.hunks[0]
        assert hunk.removed == ("  if (byte[i] & 0x40)",)
        assert hunk.added == ("  if (byte[i] & 0x40 && i > 0)",)
        assert hunk.section == "bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)"

    def test_listing_2_parses(self, listing_2):
        p = parse_patch(listing_2)
        assert p.sha == "c3b3c274cf7911121f84746cd80a152455f7ec97"
        assert len(p.hunks[0].added) == 3

    def test_repo_recorded(self, listing_1):
        assert parse_patch(listing_1, repo="LibreDWG/libredwg").repo == "LibreDWG/libredwg"


class TestMboxStyle:
    MBOX = """From 1111111111111111111111111111111111111111 Mon Sep 17 00:00:00 2001
From: Jane Dev <jane@example.org>
Date: Tue, 5 Nov 2019 10:00:00 -0500
Subject: [PATCH] fix the thing
 across two lines

Body paragraph.
---
 a.c | 2 +-
 1 file changed, 1 insertion(+), 1 deletion(-)

diff --git a/a.c b/a.c
--- a/a.c
+++ b/a.c
@@ -1,1 +1,1 @@
-old line
+new line
--
2.25.1
"""

    def test_parses_headers(self):
        p = parse_patch(self.MBOX)
        assert p.sha == "1" * 40
        assert p.author == "Jane Dev <jane@example.org>"
        assert p.subject == "fix the thing across two lines"
        assert "Body paragraph." in p.message

    def test_diff_parsed(self):
        p = parse_patch(self.MBOX)
        assert p.hunks[0].removed == ("old line",)
        assert p.hunks[0].added == ("new line",)


class TestErrors:
    def test_empty_raises(self):
        with pytest.raises(PatchFormatError):
            parse_patch("")

    def test_garbage_header_raises(self):
        with pytest.raises(PatchFormatError):
            parse_patch("not a patch at all\nmore lines\n")


class TestRoundTrips:
    def test_log_round_trip(self, listing_1):
        p = parse_patch(listing_1)
        assert parse_patch(render_patch(p)) == p

    def test_mbox_round_trip(self, listing_1):
        p = parse_patch(listing_1)
        p2 = parse_patch(render_mbox_patch(p))
        assert p2.sha == p.sha
        assert p2.files == p.files
        assert p2.subject == p.subject

    def test_mbox_has_diffstat(self, listing_1):
        text = render_mbox_patch(parse_patch(listing_1))
        assert "1 file changed, 1 insertion(+), 1 deletion(-)" in text

    def test_nonsecurity_round_trip(self, listing_2):
        p = parse_patch(listing_2)
        assert parse_patch(render_patch(p)) == p
