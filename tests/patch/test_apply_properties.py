"""Property-based tests: diff/apply/invert interplay on arbitrary files."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffing import diff_texts
from repro.patch import apply_file_diff, invert_file_diff, reverse_file_diff

file_lines = st.lists(
    st.text(alphabet="abcxyz= +-();{}", min_size=0, max_size=10), min_size=0, max_size=20
)


def as_text(lines):
    return "\n".join(lines) + ("\n" if lines else "")


class TestApplyProperties:
    @given(old=file_lines, new=file_lines)
    @settings(max_examples=150, deadline=None)
    def test_apply_then_reverse_is_identity(self, old, new):
        old_text, new_text = as_text(old), as_text(new)
        if old_text == new_text:
            return
        d = diff_texts(old_text, new_text, "f.c")
        assert reverse_file_diff(apply_file_diff(old_text, d), d) == old_text

    @given(old=file_lines, new=file_lines)
    @settings(max_examples=150, deadline=None)
    def test_inverted_diff_applies_backwards(self, old, new):
        old_text, new_text = as_text(old), as_text(new)
        if old_text == new_text:
            return
        d = diff_texts(old_text, new_text, "f.c")
        assert apply_file_diff(new_text, invert_file_diff(d)) == old_text

    @given(a=file_lines, b=file_lines, c=file_lines)
    @settings(max_examples=80, deadline=None)
    def test_sequential_patches_compose(self, a, b, c):
        ta, tb, tc = as_text(a), as_text(b), as_text(c)
        if ta == tb or tb == tc:
            return
        d1 = diff_texts(ta, tb, "f.c")
        d2 = diff_texts(tb, tc, "f.c")
        assert apply_file_diff(apply_file_diff(ta, d1), d2) == tc

    @given(old=file_lines, new=file_lines)
    @settings(max_examples=100, deadline=None)
    def test_hunk_line_accounting(self, old, new):
        old_text, new_text = as_text(old), as_text(new)
        d = diff_texts(old_text, new_text, "f.c")
        added = sum(len(h.added) for h in d.hunks)
        removed = sum(len(h.removed) for h in d.hunks)
        # Net line change of the hunks equals the file-length delta.
        assert added - removed == len(new) - len(old)
