"""Tests for unified-diff parsing and rendering."""

import pytest

from repro.errors import PatchFormatError
from repro.patch import (
    LineKind,
    parse_file_diffs,
    parse_hunk_header,
    render_file_diff,
    render_file_diffs,
)

BASIC_DIFF = """diff --git a/src/a.c b/src/a.c
index 1234567..89abcde 100644
--- a/src/a.c
+++ b/src/a.c
@@ -1,2 +1,3 @@ int main()
 int a;
-a = 1;
+a = 2;
+b = 3;
"""


class TestHunkHeader:
    def test_full_header(self):
        assert parse_hunk_header("@@ -10,3 +12,4 @@ int f()") == (10, 3, 12, 4, "int f()")

    def test_no_section(self):
        assert parse_hunk_header("@@ -1,2 +3,4 @@") == (1, 2, 3, 4, "")

    def test_implicit_counts(self):
        assert parse_hunk_header("@@ -5 +7 @@") == (5, 1, 7, 1, "")

    def test_malformed_raises(self):
        with pytest.raises(PatchFormatError):
            parse_hunk_header("@@ bogus @@")


class TestParse:
    def test_basic_fields(self):
        diffs = parse_file_diffs(BASIC_DIFF)
        assert len(diffs) == 1
        d = diffs[0]
        assert d.old_path == "src/a.c"
        assert d.new_path == "src/a.c"
        assert d.old_blob == "1234567"
        assert d.new_blob == "89abcde"
        assert d.mode == "100644"

    def test_hunk_contents(self):
        hunk = parse_file_diffs(BASIC_DIFF)[0].hunks[0]
        assert hunk.section == "int main()"
        assert hunk.removed == ("a = 1;",)
        assert hunk.added == ("a = 2;", "b = 3;")
        kinds = [l.kind for l in hunk.lines]
        assert kinds == [LineKind.CONTEXT, LineKind.REMOVED, LineKind.ADDED, LineKind.ADDED]

    def test_multiple_files(self):
        text = BASIC_DIFF + BASIC_DIFF.replace("src/a.c", "src/b.c")
        diffs = parse_file_diffs(text)
        assert [d.path for d in diffs] == ["src/a.c", "src/b.c"]

    def test_new_file(self):
        text = (
            "diff --git a/new.c b/new.c\n"
            "new file mode 100644\n"
            "index 0000000..59cb371\n"
            "--- /dev/null\n"
            "+++ b/new.c\n"
            "@@ -0,0 +1,2 @@\n"
            "+int x;\n"
            "+int y;\n"
        )
        d = parse_file_diffs(text)[0]
        assert d.is_new_file
        assert d.path == "new.c"
        assert d.hunks[0].added == ("int x;", "int y;")

    def test_deleted_file(self):
        text = (
            "diff --git a/gone.c b/gone.c\n"
            "deleted file mode 100644\n"
            "index 59cb371..0000000\n"
            "--- a/gone.c\n"
            "+++ /dev/null\n"
            "@@ -1,1 +0,0 @@\n"
            "-int x;\n"
        )
        d = parse_file_diffs(text)[0]
        assert d.is_deleted_file
        assert d.hunks[0].removed == ("int x;",)

    def test_binary_file(self):
        text = (
            "diff --git a/logo.png b/logo.png\n"
            "index 1111111..2222222 100644\n"
            "Binary files a/logo.png and b/logo.png differ\n"
        )
        d = parse_file_diffs(text)[0]
        assert d.hunks == ()
        assert d.path == "logo.png"

    def test_no_newline_marker_skipped(self):
        text = (
            "diff --git a/a.c b/a.c\n"
            "--- a/a.c\n"
            "+++ b/a.c\n"
            "@@ -1,1 +1,1 @@\n"
            "-old\n"
            "\\ No newline at end of file\n"
            "+new\n"
            "\\ No newline at end of file\n"
        )
        hunk = parse_file_diffs(text)[0].hunks[0]
        assert hunk.removed == ("old",)
        assert hunk.added == ("new",)

    def test_prologue_noise_skipped(self):
        text = "some commit message line\nanother\n" + BASIC_DIFF
        assert len(parse_file_diffs(text)) == 1

    def test_truncated_hunk_raises(self):
        text = (
            "diff --git a/a.c b/a.c\n--- a/a.c\n+++ b/a.c\n@@ -1,5 +1,5 @@\n context\n"
        )
        with pytest.raises(PatchFormatError):
            parse_file_diffs(text)

    def test_garbage_in_hunk_raises(self):
        text = (
            "diff --git a/a.c b/a.c\n--- a/a.c\n+++ b/a.c\n@@ -1,2 +1,2 @@\n context\n"
            "@garbage\n"
        )
        with pytest.raises(PatchFormatError):
            parse_file_diffs(text)

    def test_empty_input(self):
        assert parse_file_diffs("") == ()


class TestRoundTrip:
    def test_basic_round_trip(self):
        diffs = parse_file_diffs(BASIC_DIFF)
        rendered = render_file_diffs(diffs)
        assert parse_file_diffs(rendered) == diffs

    def test_render_contains_headers(self):
        d = parse_file_diffs(BASIC_DIFF)[0]
        text = render_file_diff(d)
        assert text.startswith("diff --git a/src/a.c b/src/a.c")
        assert "--- a/src/a.c" in text
        assert "+++ b/src/a.c" in text
        assert "@@ -1,2 +1,3 @@ int main()" in text

    def test_new_file_round_trip(self):
        text = (
            "diff --git a/new.c b/new.c\n"
            "new file mode 100644\n"
            "--- /dev/null\n"
            "+++ b/new.c\n"
            "@@ -0,0 +1,1 @@\n"
            "+int x;\n"
        )
        diffs = parse_file_diffs(text)
        assert parse_file_diffs(render_file_diffs(diffs)) == diffs
