"""Tests for patch application and inversion."""

import pytest

from repro.diffing import diff_texts
from repro.errors import PatchApplyError
from repro.patch import apply_file_diff, invert_file_diff, invert_hunk, reverse_file_diff

OLD = "\n".join(f"line {i}" for i in range(20)) + "\n"
NEW = OLD.replace("line 4", "LINE FOUR").replace("line 15", "line 15\nline 15.5")


@pytest.fixture()
def fdiff():
    return diff_texts(OLD, NEW, "a.c")


class TestApply:
    def test_apply_produces_new(self, fdiff):
        assert apply_file_diff(OLD, fdiff) == NEW

    def test_reverse_produces_old(self, fdiff):
        assert reverse_file_diff(NEW, fdiff) == OLD

    def test_apply_to_empty_file(self):
        d = diff_texts("", "a\nb\n", "a.c")
        assert apply_file_diff("", d) == "a\nb\n"

    def test_apply_deletion_to_empty(self):
        d = diff_texts("a\nb\n", "", "a.c")
        assert apply_file_diff("a\nb\n", d) == ""

    def test_context_mismatch_raises(self, fdiff):
        corrupted = OLD.replace("line 3", "TAMPERED")
        with pytest.raises(PatchApplyError):
            apply_file_diff(corrupted, fdiff)

    def test_removed_mismatch_raises(self, fdiff):
        corrupted = OLD.replace("line 4", "TAMPERED")
        with pytest.raises(PatchApplyError):
            apply_file_diff(corrupted, fdiff)

    def test_hunk_past_eof_raises(self, fdiff):
        with pytest.raises(PatchApplyError):
            apply_file_diff("short\n", fdiff)


class TestInvert:
    def test_invert_hunk_swaps_sides(self, fdiff):
        hunk = fdiff.hunks[0]
        inv = invert_hunk(hunk)
        assert inv.added == hunk.removed
        assert inv.removed == hunk.added
        assert inv.old_start == hunk.new_start
        assert inv.new_start == hunk.old_start

    def test_double_invert_is_identity(self, fdiff):
        assert invert_file_diff(invert_file_diff(fdiff)) == fdiff

    def test_invert_swaps_paths_and_blobs(self):
        d = diff_texts("x\n", "y\n", "a.c")
        from dataclasses import replace

        d = replace(d, old_blob="aaa", new_blob="bbb")
        inv = invert_file_diff(d)
        assert inv.old_blob == "bbb"
        assert inv.new_blob == "aaa"

    def test_invert_then_apply_round_trip(self, fdiff):
        assert apply_file_diff(NEW, invert_file_diff(fdiff)) == OLD
