"""Tests for the patch data model."""

import pytest

from repro.patch import FileDiff, Hunk, Line, LineKind, Patch, is_c_cpp_path


def _hunk(lines, old_start=1, new_start=1, section=""):
    old = sum(1 for l in lines if l.kind is not LineKind.ADDED)
    new = sum(1 for l in lines if l.kind is not LineKind.REMOVED)
    return Hunk(old_start, old, new_start, new, tuple(lines), section)


SIMPLE_LINES = [
    Line(LineKind.CONTEXT, "int a;"),
    Line(LineKind.REMOVED, "a = 1;"),
    Line(LineKind.ADDED, "a = 2;"),
    Line(LineKind.ADDED, "b = 3;"),
    Line(LineKind.CONTEXT, "return a;"),
]


class TestLine:
    def test_render_context(self):
        assert Line(LineKind.CONTEXT, "x").render() == " x"

    def test_render_added(self):
        assert Line(LineKind.ADDED, "x").render() == "+x"

    def test_render_removed(self):
        assert Line(LineKind.REMOVED, "x").render() == "-x"

    def test_line_is_frozen(self):
        with pytest.raises(AttributeError):
            Line(LineKind.ADDED, "x").text = "y"


class TestHunk:
    def test_added_removed_context(self):
        hunk = _hunk(SIMPLE_LINES)
        assert hunk.added == ("a = 2;", "b = 3;")
        assert hunk.removed == ("a = 1;",)
        assert hunk.context == ("int a;", "return a;")

    def test_header_with_section(self):
        hunk = _hunk(SIMPLE_LINES, old_start=10, new_start=12, section="int main()")
        assert hunk.header() == "@@ -10,3 +12,4 @@ int main()"

    def test_header_without_section(self):
        hunk = _hunk(SIMPLE_LINES)
        assert hunk.header() == "@@ -1,3 +1,4 @@"

    def test_pure_addition(self):
        hunk = _hunk([Line(LineKind.ADDED, "x")])
        assert hunk.is_pure_addition
        assert not hunk.is_pure_removal

    def test_pure_removal(self):
        hunk = _hunk([Line(LineKind.REMOVED, "x")])
        assert hunk.is_pure_removal
        assert not hunk.is_pure_addition

    def test_validate_accepts_consistent(self):
        _hunk(SIMPLE_LINES).validate()

    def test_validate_rejects_bad_counts(self):
        hunk = Hunk(1, 99, 1, 99, tuple(SIMPLE_LINES))
        with pytest.raises(ValueError):
            hunk.validate()

    def test_old_lines_touched(self):
        hunk = _hunk(SIMPLE_LINES, old_start=10)
        # context(10), removed(11), added, added, context
        assert hunk.old_lines_touched() == (11,)

    def test_new_lines_touched(self):
        hunk = _hunk(SIMPLE_LINES, new_start=20)
        # context(20), removed, added(21), added(22), context(23)
        assert hunk.new_lines_touched() == (21, 22)


class TestFileDiff:
    def test_path_prefers_new(self):
        diff = FileDiff("old.c", "new.c", ())
        assert diff.path == "new.c"

    def test_path_falls_back_to_old(self):
        diff = FileDiff("gone.c", "", ())
        assert diff.path == "gone.c"

    def test_new_file_flags(self):
        diff = FileDiff("", "a.c", ())
        assert diff.is_new_file and not diff.is_deleted_file

    def test_deleted_file_flags(self):
        diff = FileDiff("a.c", "", ())
        assert diff.is_deleted_file and not diff.is_new_file

    def test_is_c_cpp(self):
        assert FileDiff("a.c", "a.c", ()).is_c_cpp
        assert not FileDiff("ChangeLog", "ChangeLog", ()).is_c_cpp

    def test_line_counts(self):
        diff = FileDiff("a.c", "a.c", (_hunk(SIMPLE_LINES),))
        assert diff.added_line_count() == 2
        assert diff.removed_line_count() == 1


class TestCFilter:
    @pytest.mark.parametrize(
        "path", ["a.c", "b.cpp", "x/y.h", "z.hpp", "m.cc", "n.cxx", "UP.C", "deep/dir/f.HH"]
    )
    def test_c_cpp_paths(self, path):
        assert is_c_cpp_path(path)

    @pytest.mark.parametrize(
        "path", ["ChangeLog", "run.sh", "conf.kconfig", "test.phpt", "README.md", "noext", "a.py"]
    )
    def test_non_c_paths(self, path):
        assert not is_c_cpp_path(path)


class TestPatch:
    def _patch(self):
        c_diff = FileDiff("a.c", "a.c", (_hunk(SIMPLE_LINES, section="int f()"),))
        doc_diff = FileDiff("ChangeLog", "ChangeLog", (_hunk([Line(LineKind.ADDED, "note")]),))
        return Patch(
            sha="a" * 40,
            message="fix bug\n\nlong description",
            files=(c_diff, doc_diff),
            repo="owner/repo",
        )

    def test_subject(self):
        assert self._patch().subject == "fix bug"

    def test_hunks_flattened(self):
        assert len(self._patch().hunks) == 2

    def test_added_removed_lines(self):
        patch = self._patch()
        assert "a = 2;" in patch.added_lines()
        assert "note" in patch.added_lines()
        assert patch.removed_lines() == ["a = 1;"]

    def test_touched_paths(self):
        assert self._patch().touched_paths() == ("a.c", "ChangeLog")

    def test_only_c_cpp_strips_docs(self):
        filtered = self._patch().only_c_cpp()
        assert filtered.touched_paths() == ("a.c",)
        assert filtered.sha == "a" * 40

    def test_only_c_cpp_can_empty(self):
        patch = Patch("b" * 40, "docs", (FileDiff("README.md", "README.md", ()),))
        assert patch.only_c_cpp().is_empty
