"""Shared serve-layer fixtures: one warmed service over the TINY world."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import build_patchdb
from repro.ml import FittedModelCache
from repro.serve import PatchDBService


@pytest.fixture(scope="session")
def served(experiment_world):
    """A warmed :class:`PatchDBService` over the session TINY world."""
    db = build_patchdb(experiment_world)
    service = PatchDBService(experiment_world, db, model_cache=FittedModelCache())
    warm = service.warm()
    yield service, warm
    service.close()


@pytest.fixture(scope="session")
def service(served):
    return served[0]


@pytest.fixture(scope="session")
def patch_text(service):
    """One natural record rendered back to git format-patch text."""
    from repro.core import PatchQuery, PatchRecord
    from repro.patch.gitformat import render_mbox_patch

    line = next(service.query_stream(PatchQuery(source="nvd", limit=1)))
    return render_mbox_patch(PatchRecord.from_json(line).patch)
