"""Tests for the framework-independent service core (no sockets)."""

import threading

import numpy as np
import pytest

from repro.core import PatchQuery
from repro.errors import ReproError
from repro.ml import FittedModelCache
from repro.serve import MODEL_CONFIG, ClassifyBatcher, PatchDBService


class TestWarm:
    def test_cold_fit_then_cache_hit(self, served):
        service, warm = served
        assert warm["cached"] is False
        assert warm["n_train"] > 0
        assert service.model_key == warm["model_key"]
        # Re-warming the same dataset must hit the cache, not re-fit.
        again = service.warm()
        assert again["cached"] is True
        assert again["model_key"] == warm["model_key"]

    def test_empty_dataset_rejected(self, experiment_world):
        from repro.core import PatchDB

        service = PatchDBService(experiment_world, PatchDB())
        with pytest.raises(ReproError):
            service.warm()

    def test_classify_before_warm_rejected(self, experiment_world, patch_text):
        from repro.analysis.experiments import build_patchdb

        service = PatchDBService(experiment_world, build_patchdb(experiment_world))
        with pytest.raises(ReproError, match="not warmed"):
            service.classify(patch_text)


class TestQuery:
    def test_counts_and_pagination(self, service):
        everything = service.query(PatchQuery())
        assert everything["total_matching"] == len(service.db)
        page = service.query(PatchQuery(limit=5, offset=2))
        assert page["count"] == 5
        assert page["total_matching"] == everything["total_matching"]
        assert page["records"] == everything["records"][2:7]

    def test_filters_restrict(self, service):
        sec = service.query(PatchQuery(is_security=True))
        assert 0 < sec["total_matching"] < len(service.db)
        assert all(r["is_security"] for r in sec["records"])

    def test_include_patch_adds_text(self, service):
        row = service.query(PatchQuery(limit=1), include_patch=True)["records"][0]
        assert "diff --git" in row["patch_text"]
        bare = service.query(PatchQuery(limit=1))["records"][0]
        assert "patch_text" not in bare

    def test_stream_parses_back(self, service):
        from repro.core import PatchRecord

        lines = list(service.query_stream(PatchQuery(source="wild", limit=3)))
        assert 0 < len(lines) <= 3
        for line in lines:
            assert PatchRecord.from_json(line).source == "wild"


class TestClassify:
    def test_shape(self, service, patch_text):
        result = service.classify(patch_text)
        assert 0.0 <= result["security_probability"] <= 1.0
        assert result["is_security"] == (result["security_probability"] >= 0.5)
        assert result["pattern_name"]
        assert result["model_key"] == service.model_key
        assert result["lint"]["n_findings"] >= 0
        assert result["features"]  # a real patch has nonzero features

    def test_batched_matches_serial_bit_identical(self, service, patch_text):
        serial = service.classify(patch_text, batched=False)
        batched = service.classify(patch_text, batched=True)
        assert serial["security_probability"] == batched["security_probability"]
        assert serial["is_security"] == batched["is_security"]

    def test_concurrent_classify_is_deterministic(self, service, patch_text):
        results = []
        lock = threading.Lock()

        def hit():
            out = service.classify(patch_text)
            with lock:
                results.append(out["security_probability"])

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 1
        assert results[0] == service.classify(patch_text, batched=False)["security_probability"]

    def test_unparsable_patch_rejected(self, service):
        with pytest.raises(ReproError):
            service.classify("this is not a patch")


class TestLint:
    def test_shape_and_stable_ids(self, service, patch_text):
        payload = service.lint(patch_text)
        assert payload["n_findings"] == len(payload["findings"])
        assert sum(payload["by_checker"].values()) == payload["n_findings"]
        for finding in payload["findings"]:
            assert len(finding["id"]) == 16

    def test_is_deterministic(self, service, patch_text):
        assert service.lint(patch_text) == service.lint(patch_text)

    def test_needs_no_warm_model(self, experiment_world, patch_text):
        from repro.analysis.experiments import build_patchdb

        cold = PatchDBService(experiment_world, build_patchdb(experiment_world))
        try:
            assert cold.lint(patch_text)["n_findings"] >= 0
        finally:
            cold.close()

    def test_unparsable_patch_rejected(self, service):
        with pytest.raises(ReproError):
            service.lint("this is not a patch")

    def test_counters(self, service, patch_text):
        # Per-request counters land in the caller's telemetry shard; the
        # merged view (what /statsz serves) is the consistent read.
        before = service.counter("lint.request")
        service.lint(patch_text)
        assert service.counter("lint.request") == before + 1


class TestBatcher:
    def test_batches_concurrent_rows(self):
        calls = []

        def predict(X):
            calls.append(X.shape[0])
            return X[:, 0]

        batcher = ClassifyBatcher(predict, max_batch=16, max_wait_s=0.05)
        rows = [np.array([float(i), 0.0]) for i in range(10)]
        futures = [batcher.submit(r) for r in rows]
        got = [f.result(timeout=5.0) for f in futures]
        batcher.close()
        assert got == [float(i) for i in range(10)]
        assert sum(calls) == 10
        assert max(calls) > 1  # at least one actual batch formed

    def test_predict_failure_propagates(self):
        def predict(X):
            raise RuntimeError("boom")

        batcher = ClassifyBatcher(predict, max_batch=4, max_wait_s=0.0)
        future = batcher.submit(np.zeros(3))
        with pytest.raises(RuntimeError, match="boom"):
            future.result(timeout=5.0)
        batcher.close()

    def test_submit_after_close_rejected(self):
        batcher = ClassifyBatcher(lambda X: X[:, 0])
        batcher.close()
        with pytest.raises(ReproError):
            batcher.submit(np.zeros(2))


class TestObservability:
    def test_healthz_and_manifest(self, service):
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["model_warm"] is True
        assert health["records"] == len(service.db)
        manifest = service.manifest()
        assert manifest["command"] == "serve"
        assert manifest["model_key"] == service.model_key

    def test_statsz_folds_requests(self, service):
        service.record_request("query", 200, 0.01)
        service.record_request("query", 503, 0.02)
        stats = service.statsz()
        assert stats["counters"]["http_requests"] >= 2
        assert stats["counters"]["http_5xx"] >= 1
        assert stats["service"]["status"] == "ok"

    def test_model_cache_key_uses_config(self, service):
        natural, labels = service._training_set()
        from repro.ml import training_key

        assert service.model_key == training_key(
            [r.patch.sha for r in natural], labels, MODEL_CONFIG
        )
