"""Tests for the HTTP layer: real sockets against the warmed TINY service."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import PatchQuery, PatchRecord
from repro.serve import make_server


@pytest.fixture(scope="session")
def base_url(service):
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _get(base_url, path):
    with urllib.request.urlopen(f"{base_url}{path}", timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post(base_url, path, body):
    req = urllib.request.Request(
        f"{base_url}{path}", data=body.encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestGetEndpoints:
    @pytest.mark.parametrize("path", ["/healthz", "/statsz", "/v1/manifest", "/v1/summary"])
    def test_round_trips(self, base_url, path):
        status, payload = _get(base_url, path)
        assert status == 200
        assert isinstance(payload, dict)

    def test_healthz_reports_warm_model(self, base_url):
        _, payload = _get(base_url, "/healthz")
        assert payload["status"] == "ok"
        assert payload["model_warm"] is True

    def test_query_matches_service_side(self, base_url, service):
        status, payload = _get(base_url, "/v1/patches?is_security=1&limit=5")
        assert status == 200
        expected = service.query(PatchQuery(is_security=True, limit=5))
        assert payload == json.loads(json.dumps(expected))

    def test_pagination_windows_are_disjoint(self, base_url):
        _, first = _get(base_url, "/v1/patches?limit=3")
        _, second = _get(base_url, "/v1/patches?limit=3&offset=3")
        rows = [json.dumps(r, sort_keys=True) for r in first["records"] + second["records"]]
        assert len(rows) == len(set(rows)) == 6

    def test_include_patch_param(self, base_url):
        _, payload = _get(base_url, "/v1/patches?limit=1&include_patch=1")
        assert "diff --git" in payload["records"][0]["patch_text"]

    def test_stream_jsonl_parses_and_respects_limit(self, base_url):
        url = f"{base_url}/v1/patches.jsonl?source=wild&limit=4"
        with urllib.request.urlopen(url, timeout=10) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            lines = [l for l in resp.read().decode("utf-8").splitlines() if l.strip()]
        assert 0 < len(lines) <= 4
        for line in lines:
            assert PatchRecord.from_json(line).source == "wild"

    def test_unknown_route_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base_url, "/v1/nope")
        assert exc.value.code == 404

    def test_bad_query_param_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base_url, "/v1/patches?flavour=spicy")
        assert exc.value.code == 400
        assert "unknown query parameter" in json.loads(exc.value.read())["error"]

    def test_bad_boolean_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base_url, "/v1/patches?is_security=maybe")
        assert exc.value.code == 400


class TestClassifyEndpoint:
    def test_round_trip(self, base_url, patch_text):
        status, payload = _post(base_url, "/v1/classify", patch_text)
        assert status == 200
        assert 0.0 <= payload["security_probability"] <= 1.0
        assert payload["model_key"]

    def test_matches_inline_service_call(self, base_url, service, patch_text):
        _, payload = _post(base_url, "/v1/classify", patch_text)
        inline = service.classify(patch_text, batched=False)
        assert payload["security_probability"] == inline["security_probability"]
        assert payload["pattern_type"] == inline["pattern_type"]

    def test_concurrent_posts_bit_identical(self, base_url, service, patch_text):
        results = []
        lock = threading.Lock()

        def hit():
            _, payload = _post(base_url, "/v1/classify", patch_text)
            with lock:
                results.append(payload)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        canonical = json.dumps(results[0], sort_keys=True)
        assert all(json.dumps(r, sort_keys=True) == canonical for r in results)
        inline = service.classify(patch_text, batched=False)
        assert results[0]["security_probability"] == inline["security_probability"]

    def test_empty_body_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/classify", "")
        assert exc.value.code == 400

    def test_unparsable_body_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/classify", "definitely not a patch")
        assert exc.value.code == 400

    def test_post_to_unknown_route_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/other", "x")
        assert exc.value.code == 404


class TestLintEndpoint:
    def test_round_trip_matches_service_side(self, base_url, service, patch_text):
        status, payload = _post(base_url, "/v1/lint", patch_text)
        assert status == 200
        inline = service.lint(patch_text)
        assert payload == json.loads(json.dumps(inline))
        assert payload["n_findings"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert set(finding) >= {"id", "checker", "severity", "path", "line", "message"}

    def test_empty_body_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/lint", "")
        assert exc.value.code == 400

    def test_unparsable_body_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/lint", "definitely not a patch")
        assert exc.value.code == 400

    def test_requests_counted_in_statsz(self, base_url, patch_text):
        _, before = _get(base_url, "/statsz")
        _post(base_url, "/v1/lint", patch_text)
        _post(base_url, "/v1/lint", patch_text)
        # http_lint is recorded after the response bytes go out, so poll
        # briefly rather than race the handler thread.
        deadline = time.monotonic() + 5.0
        while True:
            _, after = _get(base_url, "/statsz")
            gains = {
                name: after["counters"].get(name, 0) - before["counters"].get(name, 0)
                for name in ("http_lint", "lint.request")
            }
            if all(g >= 2 for g in gains.values()) or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        assert all(g >= 2 for g in gains.values()), gains


class TestPointLookups:
    def test_sha_query_returns_exactly_that_record(self, base_url, service):
        _, sample = _get(base_url, "/v1/patches?limit=1")
        sha = sample["records"][0]["sha"]
        status, payload = _get(base_url, f"/v1/patches?sha={sha}")
        assert status == 200
        assert payload["total_matching"] >= 1
        assert all(r["sha"] == sha for r in payload["records"])

    def test_cve_id_query_filters(self, base_url, service):
        with_cve = [r for r in service.db if r.cve_id]
        if not with_cve:
            pytest.skip("TINY dataset has no CVE-tagged records")
        cve = with_cve[0].cve_id
        _, payload = _get(base_url, f"/v1/patches?cve_id={cve}")
        assert payload["total_matching"] == sum(1 for r in with_cve if r.cve_id == cve)


class TestStatsAccounting:
    def test_requests_are_counted(self, base_url):
        _, before = _get(base_url, "/statsz")
        _get(base_url, "/healthz")
        _get(base_url, "/healthz")
        _, after = _get(base_url, "/statsz")
        gained = after["counters"]["http_healthz"] - before["counters"].get("http_healthz", 0)
        assert gained >= 2
        assert after["counters"].get("http_5xx", 0) == before["counters"].get("http_5xx", 0)

    def test_index_and_render_counters_surface(self, base_url):
        _, before = _get(base_url, "/statsz")
        _get(base_url, "/v1/patches?source=wild&limit=3")
        with urllib.request.urlopen(f"{base_url}/v1/patches.jsonl?limit=2", timeout=10) as resp:
            resp.read()
        _, mid = _get(base_url, "/statsz")
        with urllib.request.urlopen(f"{base_url}/v1/patches.jsonl?limit=2", timeout=10) as resp:
            resp.read()
        _, after = _get(base_url, "/statsz")

        def gained(snap_a, snap_b, name):
            return snap_b["counters"].get(name, 0) - snap_a["counters"].get(name, 0)

        # count + page of the filtered query, plus the stream pages.
        assert gained(before, mid, "index.hit") >= 3
        # The repeat stream serves both of its lines from the render cache.
        assert gained(mid, after, "render_cache.hit") >= 2
        assert gained(mid, after, "render_cache.miss") == 0
