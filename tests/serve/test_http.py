"""Tests for the HTTP layer: real sockets against the warmed TINY service."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import PatchQuery, PatchRecord
from repro.serve import TRACE_HEADER, make_server, parse_exposition
from repro.trace import parse_trace


@pytest.fixture(scope="session")
def base_url(service):
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _get(base_url, path):
    with urllib.request.urlopen(f"{base_url}{path}", timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post(base_url, path, body):
    req = urllib.request.Request(
        f"{base_url}{path}", data=body.encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestGetEndpoints:
    @pytest.mark.parametrize("path", ["/healthz", "/statsz", "/v1/manifest", "/v1/summary"])
    def test_round_trips(self, base_url, path):
        status, payload = _get(base_url, path)
        assert status == 200
        assert isinstance(payload, dict)

    def test_healthz_reports_warm_model(self, base_url):
        _, payload = _get(base_url, "/healthz")
        assert payload["status"] == "ok"
        assert payload["model_warm"] is True

    def test_query_matches_service_side(self, base_url, service):
        status, payload = _get(base_url, "/v1/patches?is_security=1&limit=5")
        assert status == 200
        expected = service.query(PatchQuery(is_security=True, limit=5))
        assert payload == json.loads(json.dumps(expected))

    def test_pagination_windows_are_disjoint(self, base_url):
        _, first = _get(base_url, "/v1/patches?limit=3")
        _, second = _get(base_url, "/v1/patches?limit=3&offset=3")
        rows = [json.dumps(r, sort_keys=True) for r in first["records"] + second["records"]]
        assert len(rows) == len(set(rows)) == 6

    def test_include_patch_param(self, base_url):
        _, payload = _get(base_url, "/v1/patches?limit=1&include_patch=1")
        assert "diff --git" in payload["records"][0]["patch_text"]

    def test_stream_jsonl_parses_and_respects_limit(self, base_url):
        url = f"{base_url}/v1/patches.jsonl?source=wild&limit=4"
        with urllib.request.urlopen(url, timeout=10) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            lines = [l for l in resp.read().decode("utf-8").splitlines() if l.strip()]
        assert 0 < len(lines) <= 4
        for line in lines:
            assert PatchRecord.from_json(line).source == "wild"

    def test_unknown_route_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base_url, "/v1/nope")
        assert exc.value.code == 404

    def test_bad_query_param_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base_url, "/v1/patches?flavour=spicy")
        assert exc.value.code == 400
        assert "unknown query parameter" in json.loads(exc.value.read())["error"]

    def test_bad_boolean_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base_url, "/v1/patches?is_security=maybe")
        assert exc.value.code == 400


class TestClassifyEndpoint:
    def test_round_trip(self, base_url, patch_text):
        status, payload = _post(base_url, "/v1/classify", patch_text)
        assert status == 200
        assert 0.0 <= payload["security_probability"] <= 1.0
        assert payload["model_key"]

    def test_matches_inline_service_call(self, base_url, service, patch_text):
        _, payload = _post(base_url, "/v1/classify", patch_text)
        inline = service.classify(patch_text, batched=False)
        assert payload["security_probability"] == inline["security_probability"]
        assert payload["pattern_type"] == inline["pattern_type"]

    def test_concurrent_posts_bit_identical(self, base_url, service, patch_text):
        results = []
        lock = threading.Lock()

        def hit():
            _, payload = _post(base_url, "/v1/classify", patch_text)
            with lock:
                results.append(payload)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        canonical = json.dumps(results[0], sort_keys=True)
        assert all(json.dumps(r, sort_keys=True) == canonical for r in results)
        inline = service.classify(patch_text, batched=False)
        assert results[0]["security_probability"] == inline["security_probability"]

    def test_empty_body_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/classify", "")
        assert exc.value.code == 400

    def test_unparsable_body_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/classify", "definitely not a patch")
        assert exc.value.code == 400

    def test_post_to_unknown_route_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/other", "x")
        assert exc.value.code == 404


class TestLintEndpoint:
    def test_round_trip_matches_service_side(self, base_url, service, patch_text):
        status, payload = _post(base_url, "/v1/lint", patch_text)
        assert status == 200
        inline = service.lint(patch_text)
        assert payload == json.loads(json.dumps(inline))
        assert payload["n_findings"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert set(finding) >= {"id", "checker", "severity", "path", "line", "message"}

    def test_empty_body_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/lint", "")
        assert exc.value.code == 400

    def test_unparsable_body_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base_url, "/v1/lint", "definitely not a patch")
        assert exc.value.code == 400

    def test_requests_counted_in_statsz(self, base_url, patch_text):
        _, before = _get(base_url, "/statsz")
        _post(base_url, "/v1/lint", patch_text)
        _post(base_url, "/v1/lint", patch_text)
        # http_lint is recorded after the response bytes go out, so poll
        # briefly rather than race the handler thread.
        deadline = time.monotonic() + 5.0
        while True:
            _, after = _get(base_url, "/statsz")
            gains = {
                name: after["counters"].get(name, 0) - before["counters"].get(name, 0)
                for name in ("http_lint", "lint.request")
            }
            if all(g >= 2 for g in gains.values()) or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        assert all(g >= 2 for g in gains.values()), gains


class TestPointLookups:
    def test_sha_query_returns_exactly_that_record(self, base_url, service):
        _, sample = _get(base_url, "/v1/patches?limit=1")
        sha = sample["records"][0]["sha"]
        status, payload = _get(base_url, f"/v1/patches?sha={sha}")
        assert status == 200
        assert payload["total_matching"] >= 1
        assert all(r["sha"] == sha for r in payload["records"])

    def test_cve_id_query_filters(self, base_url, service):
        with_cve = [r for r in service.db if r.cve_id]
        if not with_cve:
            pytest.skip("TINY dataset has no CVE-tagged records")
        cve = with_cve[0].cve_id
        _, payload = _get(base_url, f"/v1/patches?cve_id={cve}")
        assert payload["total_matching"] == sum(1 for r in with_cve if r.cve_id == cve)


class TestStatsAccounting:
    def test_requests_are_counted(self, base_url):
        _, before = _get(base_url, "/statsz")
        _get(base_url, "/healthz")
        _get(base_url, "/healthz")
        _, after = _get(base_url, "/statsz")
        gained = after["counters"]["http_healthz"] - before["counters"].get("http_healthz", 0)
        assert gained >= 2
        assert after["counters"].get("http_5xx", 0) == before["counters"].get("http_5xx", 0)

    def test_index_and_render_counters_surface(self, base_url):
        _, before = _get(base_url, "/statsz")
        _get(base_url, "/v1/patches?source=wild&limit=3")
        with urllib.request.urlopen(f"{base_url}/v1/patches.jsonl?limit=2", timeout=10) as resp:
            resp.read()
        _, mid = _get(base_url, "/statsz")
        with urllib.request.urlopen(f"{base_url}/v1/patches.jsonl?limit=2", timeout=10) as resp:
            resp.read()
        _, after = _get(base_url, "/statsz")

        def gained(snap_a, snap_b, name):
            return snap_b["counters"].get(name, 0) - snap_a["counters"].get(name, 0)

        # count + page of the filtered query, plus the stream pages.
        assert gained(before, mid, "index.hit") >= 3
        # The repeat stream serves both of its lines from the render cache.
        assert gained(mid, after, "render_cache.hit") >= 2
        assert gained(mid, after, "render_cache.miss") == 0


class TestTraceHeader:
    @pytest.mark.parametrize(
        "path", ["/healthz", "/statsz", "/metrics", "/v1/manifest", "/v1/patches?limit=1"]
    )
    def test_every_response_carries_a_trace_id(self, base_url, path):
        with urllib.request.urlopen(f"{base_url}{path}", timeout=10) as resp:
            trace_id = resp.headers[TRACE_HEADER]
        assert trace_id and len(trace_id) == 32

    def test_provided_trace_id_is_echoed(self, base_url):
        req = urllib.request.Request(f"{base_url}/healthz")
        req.add_header(TRACE_HEADER, "CAFEBABE-0000-1111-2222-333344445555")
        with urllib.request.urlopen(req, timeout=10) as resp:
            echoed = resp.headers[TRACE_HEADER]
        assert echoed == "cafebabe-0000-1111-2222-333344445555"

    def test_malformed_trace_id_replaced(self, base_url):
        req = urllib.request.Request(f"{base_url}/healthz")
        req.add_header(TRACE_HEADER, "not a trace id!!")
        with urllib.request.urlopen(req, timeout=10) as resp:
            echoed = resp.headers[TRACE_HEADER]
        assert echoed != "not a trace id!!"
        assert len(echoed) == 32

    def test_error_responses_carry_trace_ids_too(self, base_url, patch_text):
        with pytest.raises(urllib.error.HTTPError) as exc404:
            _get(base_url, "/v1/nope")
        assert exc404.value.headers[TRACE_HEADER]
        with pytest.raises(urllib.error.HTTPError) as exc400:
            _post(base_url, "/v1/classify", "definitely not a patch")
        assert exc400.value.headers[TRACE_HEADER]

    def test_stream_responses_carry_trace_ids(self, base_url):
        with urllib.request.urlopen(f"{base_url}/v1/patches.jsonl?limit=1", timeout=10) as resp:
            assert resp.headers[TRACE_HEADER]


class TestMetricsEndpoint:
    def test_parses_and_matches_statsz(self, base_url):
        _get(base_url, "/healthz")
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode("utf-8")
        samples = parse_exposition(text)
        _, stats = _get(base_url, "/statsz")
        by_name = {l["name"]: v for l, v in samples["repro_counter_total"]}
        # The scrape and /statsz read racing shards at different instants;
        # counters only grow, and the later /statsz read must be >= the
        # scrape for everything the scrape saw (minus its own request).
        for name in ("http_requests", "http_healthz"):
            assert stats["counters"][name] >= by_name[name] > 0
        total = sum(v for _, v in samples["repro_http_requests_total"])
        assert total == by_name["http_requests"]
        gauges = {n: s[0][1] for n, s in samples.items() if not n.startswith("repro_http")}
        assert gauges["repro_model_warm"] == 1.0
        assert gauges["repro_records"] == stats["service"]["records"]
        assert gauges["repro_uptime_seconds"] >= 0

    def test_histogram_buckets_well_formed(self, base_url):
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=10) as resp:
            samples = parse_exposition(resp.read().decode("utf-8"))
        series: dict[str, list[float]] = {}
        for labels, value in samples["repro_http_request_duration_seconds_bucket"]:
            series.setdefault(labels["endpoint"], []).append(value)
        counts = {
            l["endpoint"]: v
            for l, v in samples["repro_http_request_duration_seconds_count"]
        }
        assert series, "no latency histograms exposed"
        for endpoint, values in series.items():
            assert values == sorted(values)
            assert values[-1] == counts[endpoint]


class TestTracesEndpoint:
    def test_classify_trace_shows_nested_pipeline(self, base_url, patch_text):
        req = urllib.request.Request(
            f"{base_url}/v1/classify", data=patch_text.encode("utf-8"), method="POST"
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            trace_id = resp.headers[TRACE_HEADER]
        with urllib.request.urlopen(
            f"{base_url}/v1/traces?trace_id={trace_id}", timeout=10
        ) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            text = resp.read().decode("utf-8")
        parsed = parse_trace(text, origin="serve")
        assert parsed.manifest["format"] == "repro-run-manifest-v1"
        assert len(parsed.roots) == 1
        root = parsed.roots[0]
        assert root.name == "http.classify"
        assert root.attributes["status"] == 200

        def names(node, acc):
            acc.add(node.name)
            for child in node.children:
                names(child, acc)
            return acc

        seen = names(root, set())
        for expected in (
            "service.classify",
            "patch.parse",
            "features.extract",
            "classify.batch",
            "model.predict",
            "categorize",
            "lint.patch",
        ):
            assert expected in seen, f"missing span {expected}: {sorted(seen)}"

    def test_query_trace_shows_index_spans(self, base_url):
        with urllib.request.urlopen(
            f"{base_url}/v1/patches?source=wild&limit=2&include_patch=1", timeout=10
        ) as resp:
            trace_id = resp.headers[TRACE_HEADER]
        with urllib.request.urlopen(
            f"{base_url}/v1/traces?trace_id={trace_id}", timeout=10
        ) as resp:
            parsed = parse_trace(resp.read().decode("utf-8"), origin="serve")
        assert len(parsed.roots) == 1

        def names(node, acc):
            acc.add(node.name)
            for child in node.children:
                names(child, acc)
            return acc

        seen = names(parsed.roots[0], set())
        assert {"http.query", "service.query", "query.count", "query.page"} <= seen

    def test_full_dump_renders(self, base_url):
        _get(base_url, "/healthz")
        with urllib.request.urlopen(f"{base_url}/v1/traces", timeout=10) as resp:
            parsed = parse_trace(resp.read().decode("utf-8"), origin="serve")
        assert parsed.manifest["traces"] >= 1
        assert parsed.n_spans >= 1
        from repro.trace import render_span_tree

        rendered = render_span_tree(parsed)
        assert "http." in rendered
